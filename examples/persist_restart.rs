//! Durability demo: serve a Zipf stream, shut the server down gracefully
//! (drain captures, checkpoint catalog + snapshot, truncate the WAL), then
//! reopen the same directory — the sketch catalog is warm from query one,
//! so the restarted server never re-pays capture cost for its workload.
//!
//! Run with: `cargo run --release --example persist_restart`

use pbds_core::storage::{Database, Value};
use pbds_core::{Action, Mutation, PbdsServer, ServerConfig};
use pbds_workloads::{sof, sof_pools, zipf_stream, StreamSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/persist_restart_demo");
    let _ = std::fs::remove_dir_all(&dir);

    let db: Arc<Database> = Arc::new(sof::generate(&sof::SofConfig {
        users: 2_000,
        posts: 12_000,
        comments: 16_000,
        badges: 6_000,
        ..Default::default()
    }));
    let stream = zipf_stream(
        &sof_pools(10, 7),
        &StreamSpec {
            queries: 60,
            skew: 1.1,
            seed: 21,
        },
    );
    let config = ServerConfig {
        capture_workers: 2,
        ..ServerConfig::default()
    };

    // --- Phase 1: cold start over a fresh durability directory -------------
    let server = PbdsServer::create(&dir, Arc::clone(&db), config)?;
    let start = Instant::now();
    let served = server.serve_stream(&stream, 2)?;
    server.drain();
    let cold_hits = served
        .iter()
        .filter(|s| s.record.action == Action::UseSketch)
        .count();
    let (cold_captures, capture_time) = server.capture_totals();
    println!(
        "cold : {} queries in {:>7.1?} | catalog hits {:>2}/{} | captures {} ({:.1?})",
        served.len(),
        start.elapsed(),
        cold_hits,
        served.len(),
        cold_captures,
        capture_time,
    );

    // A couple of mutations land in the WAL before shutdown, to show the
    // whole durable state (snapshot + catalog + log) survives the bounce.
    server.apply_mutation(
        "posts",
        Mutation::Append(vec![vec![
            Value::Int(999_999),
            Value::Int(7),
            Value::Int(3),
            Value::Int(50),
        ]]),
    )?;
    println!("     : applied 1 append; graceful shutdown (drain, checkpoint, truncate WAL)");
    server.shutdown()?;

    // --- Phase 2: reopen from disk — warm from query one -------------------
    let start = Instant::now();
    let server = PbdsServer::open(&dir, config)?;
    let recovery = server.recovery_report().expect("opened from disk");
    println!(
        "open : recovered in {:>7.1?} | {} catalog entries imported ({} dropped), {} WAL records replayed",
        start.elapsed(),
        recovery.catalog_imported,
        recovery.catalog_dropped,
        recovery.wal_replayed,
    );

    let start = Instant::now();
    let served = server.serve_stream(&stream, 2)?;
    server.drain();
    let warm_hits = served
        .iter()
        .filter(|s| s.record.action == Action::UseSketch)
        .count();
    let first = &served[0];
    let (warm_captures, _) = server.capture_totals();
    println!(
        "warm : {} queries in {:>7.1?} | catalog hits {:>2}/{} | captures {} | first query: {:?}",
        served.len(),
        start.elapsed(),
        warm_hits,
        served.len(),
        warm_captures,
        first.record.action,
    );
    assert!(
        warm_hits >= cold_hits,
        "the persisted catalog should hit at least as often as the cold run"
    );
    assert_eq!(warm_captures, 0, "warm start must not re-pay capture");
    println!(
        "     : restart kept the tuning — {} hits vs {} cold, zero recapture",
        warm_hits, cold_hits
    );
    Ok(())
}
