//! Data skipping for the paper's real-world-style workloads: run the
//! MovieLens-like M-Q1/M-Q2/M-Q3 and Stack-Overflow-like S-Q1..S-Q5 queries
//! with and without provenance sketches and report the improvement
//! (the scenario behind Fig. 10 of the paper).
//!
//! Run with: `cargo run -p pbds-core --release --example topk_data_skipping`

use pbds_core::{Pbds, UsePredicateStyle};
use pbds_workloads::{movies, sof, BenchQuery, SketchSpec};

fn run_set(label: &str, pbds: &Pbds, queries: &[BenchQuery], fragments: usize) {
    println!("== {label} ==");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>12}",
        "query", "No-PS (ms)", "PS (ms)", "speed-up", "selectivity"
    );
    for query in queries {
        let plan = query.default_plan();
        let partition = match &query.sketch {
            SketchSpec::Range { table, attr } => pbds.range_partition(table, attr, fragments),
            SketchSpec::Composite { table, attrs } => {
                let attrs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
                pbds.composite_partition(table, &attrs)
            }
        }
        .expect("partition");

        let captured = pbds.capture(&plan, &[partition]).expect("capture");
        let plain = pbds.execute(&plan).expect("plain");
        let fast = pbds
            .execute_with_sketches_styled(
                &plan,
                &captured.sketches,
                UsePredicateStyle::BinarySearch,
            )
            .expect("sketch use");
        assert!(plain.relation.bag_eq(&fast.relation));
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>9.1}x {:>11.1}%",
            query.name,
            plain.stats.elapsed.as_secs_f64() * 1e3,
            fast.stats.elapsed.as_secs_f64() * 1e3,
            plain.stats.elapsed.as_secs_f64() / fast.stats.elapsed.as_secs_f64().max(1e-9),
            captured.sketches[0].selectivity(pbds.db()).unwrap() * 100.0,
        );
    }
    println!();
}

fn main() {
    let movies_db = movies::generate(&movies::MoviesConfig {
        movies: 3_000,
        ratings: 150_000,
        ..Default::default()
    });
    run_set(
        "MovieLens-like (M-Q1..M-Q3, PS1000)",
        &Pbds::new(movies_db),
        &movies::queries(),
        1_000,
    );

    let sof_db = sof::generate(&sof::SofConfig {
        users: 8_000,
        posts: 60_000,
        comments: 80_000,
        badges: 30_000,
        ..Default::default()
    });
    run_set(
        "Stack-Overflow-like (S-Q1..S-Q5, PS1000)",
        &Pbds::new(sof_db),
        &sof::queries(),
        1_000,
    );
}
