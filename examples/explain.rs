//! EXPLAIN-style inspection of physical plans: `Engine::plan` lowers a
//! logical plan to its physical operator tree, and `PhysicalPlan` implements
//! `Display` as an indented tree — showing exactly which access path each
//! scan got, before and after sketch instrumentation. The EXPLAIN ANALYZE
//! section at the end actually *runs* the tree and annotates every operator
//! with observed rows, batches and wall time.
//!
//! Run with: `cargo run --release --example explain`

use pbds_core::algebra::{col, lit, AggExpr, AggFunc, LogicalPlan, SortKey};
use pbds_core::exec::estimate_scan_selectivity;
use pbds_core::storage::{DataType, Database, Schema, TableBuilder, Value};
use pbds_core::{Engine, EngineProfile, Pbds};

fn build_db() -> Database {
    let schema = Schema::from_pairs(&[("grp", DataType::Int), ("v", DataType::Int)]);
    let mut b = TableBuilder::new("t", schema);
    b.block_size(64).index("grp");
    for i in 0..2_000i64 {
        b.push(vec![Value::Int(i % 40), Value::Int((i * 13) % 997)]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pbds = Pbds::new(build_db());
    let engine = Engine::new(EngineProfile::Indexed);

    // A top-1 query: which group has the largest total?
    let query = LogicalPlan::scan("t")
        .aggregate(
            vec!["grp"],
            vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
        )
        .top_k(vec![SortKey::desc("total")], 1);

    println!("plain physical plan (full scan — relevance is data-dependent):\n");
    println!("{}", engine.plan(pbds.db(), &query)?);

    // Capture a provenance sketch on the safe `grp` attribute …
    let partition = pbds.range_partition("t", "grp", 8)?;
    let captured = pbds.capture(&query, &[partition])?;
    println!(
        "captured {} ({} of {} fragments relevant)\n",
        captured.sketches[0],
        captured.sketches[0].num_selected(),
        captured.sketches[0].num_fragments()
    );

    // … and show how the instrumented query's scan turns into an
    // index-range scan over just the relevant fragments.
    let instrumented = pbds_core::apply_sketches(
        &query,
        &captured.sketches,
        pbds_core::UsePredicateStyle::BinarySearch,
    );
    println!("sketch-instrumented physical plan (index-range scan):\n");
    println!("{}", engine.plan(pbds.db(), &instrumented)?);

    // The narrowed plan produces identical results while scanning less.
    let plain = pbds.execute(&query)?;
    let fast = pbds.execute_with_sketches(&query, &captured.sketches)?;
    assert!(fast.relation.bag_eq(&plain.relation));
    println!(
        "rows scanned: {} plain vs {} with the sketch",
        plain.stats.rows_scanned, fast.stats.rows_scanned
    );

    // Which scans took the vectorized columnar path? Under the scan-only
    // columnar profile the sketch predicate cannot use the index, so the
    // filter runs vectorized over the table's columnar chunks instead —
    // `ExecStats` records both the scan count and the blocks it evaluated
    // into selection bitmaps.
    let columnar = Engine::new(EngineProfile::ColumnarScan);
    let out = columnar.execute(pbds.db(), &instrumented)?;
    println!(
        "\ncolumnar profile: {} scan(s) took the vectorized path \
         ({} chunk(s) -> selection bitmaps, {} rows scanned)",
        out.stats.vectorized_scans, out.stats.vectorized_blocks, out.stats.rows_scanned
    );
    let row_path = columnar
        .with_vectorization(false)
        .execute(pbds.db(), &instrumented)?;
    assert_eq!(out.relation, row_path.relation);
    println!(
        "row-interpreter oracle agrees: {} identical rows (vectorized_scans = {})",
        row_path.relation.len(),
        row_path.stats.vectorized_scans
    );

    // What do those columnar chunks actually hold? The build picks an
    // encoding per chunk-column from cheap stats: run-length for runny ints
    // (`grp` repeats each value 40 ways but in i%40 order — no runs, so it
    // bit-packs), frame-of-reference packing for small-domain ints, plain
    // vectors otherwise. The kernels above evaluated directly on these.
    let table = pbds.db().table("t")?;
    let chunks = table.columnar_chunks();
    println!("\nper-column chunk encodings:");
    for (i, c) in table.schema().columns().iter().enumerate() {
        println!("  {:<8} {:?}", c.name, chunks.column_encoding_counts(i));
    }

    // A global aggregate directly above the scan never materializes rows at
    // all: the scan→aggregate pushdown folds each selection bitmap straight
    // into the accumulators (`agg_pushdown_blocks` counts the blocks).
    let agg = LogicalPlan::scan("t")
        .filter(col("v").lt(lit(500)))
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("v"), "total")]);
    let pushed = columnar.execute(pbds.db(), &agg)?;
    println!(
        "\nscan+aggregate pushdown: total = {:?}, {} block(s) aggregated \
         bitmap-driven, 0 rows materialized",
        pushed.relation.value(0, "total").unwrap(),
        pushed.stats.agg_pushdown_blocks
    );

    // Adaptive lowering: the engine predicts each filter's selectivity from
    // table stats (and any observed stats fed back) and only takes the
    // bitmap path when enough rows get filtered out to pay for the
    // late-materialization pass. A filter that keeps every row is lowered
    // back to the compiled row loop automatically.
    let pred_all = col("v").ge(lit(0));
    let pred_few = col("v").lt(lit(20));
    for (name, pred) in [("keeps every row", pred_all), ("keeps ~2%", pred_few)] {
        let est = estimate_scan_selectivity(table, &pred);
        let out = columnar.execute(pbds.db(), &LogicalPlan::scan("t").filter(pred))?;
        println!(
            "adaptive lowering ({name}): estimated selectivity {:?} -> {}",
            est,
            if out.stats.vectorized_scans > 0 {
                "vectorized bitmap scan"
            } else {
                "compiled row loop"
            }
        );
    }

    // EXPLAIN ANALYZE: execute the plan with per-operator instrumentation.
    // Each node reports the rows it produced, how many batches it was
    // drained in and its cumulative wall time; scans add rows actually
    // scanned, and fused subtrees (scan→aggregate pushdown) are marked.
    let analyzed = engine.explain_analyze(pbds.db(), &query)?;
    println!(
        "\nEXPLAIN ANALYZE (plain, {} rows out, {:?} total):\n{}",
        analyzed.output.stats.rows_output,
        analyzed.output.stats.elapsed,
        analyzed.render()
    );
    let analyzed_fast = engine.explain_analyze(pbds.db(), &instrumented)?;
    println!(
        "EXPLAIN ANALYZE (sketch-instrumented — same answer, fewer rows \
         scanned at the leaf):\n{}",
        analyzed_fast.render()
    );
    assert!(analyzed_fast
        .output
        .relation
        .bag_eq(&analyzed.output.relation));
    Ok(())
}
