//! Serving a Zipf query stream through the concurrent sketch-serving
//! middleware: a `PbdsServer` shares one `SketchCatalog` across session
//! threads, captures sketches off the critical path on misses, and reuses
//! them for the popular parameter values that dominate the stream.
//!
//! Run with: `cargo run --release --example serve_workload`

use pbds_core::storage::Database;
use pbds_core::telemetry::clock;
use pbds_core::{Action, MetricsSnapshot, PbdsServer, ServerConfig, Strategy};
use pbds_workloads::{sof, sof_pools, zipf_stream, StreamSpec};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small Stack-Overflow-like database and a skewed stream of HAVING
    // query instances (popular parameter values repeat Zipf-style).
    let db: Arc<Database> = Arc::new(sof::generate(&sof::SofConfig {
        users: 2_000,
        posts: 12_000,
        comments: 16_000,
        badges: 6_000,
        ..Default::default()
    }));
    let stream = zipf_stream(
        &sof_pools(10, 7),
        &StreamSpec {
            queries: 80,
            skew: 1.1,
            seed: 21,
        },
    );

    let mut exposition: Option<MetricsSnapshot> = None;
    for (label, strategy) in [
        ("No-PS ", Strategy::NoPbds),
        (
            "eager ",
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
        ),
    ] {
        let server = PbdsServer::new(
            Arc::clone(&db),
            ServerConfig {
                strategy,
                fragments: 400,
                ..ServerConfig::default()
            },
        );
        let start = clock::Stopwatch::start();
        let served = server.serve_stream(&stream, 4)?;
        let elapsed = start.elapsed();
        server.drain(); // let background captures finish before reading stats

        let hits = served
            .iter()
            .filter(|s| s.record.action == Action::UseSketch)
            .count();
        let rows: u64 = served.iter().map(|s| s.record.stats.rows_scanned).sum();
        let (captures, capture_time) = server.capture_totals();
        let stats = server.catalog().stats();
        println!(
            "{label} {:>4} queries in {elapsed:>8.1?} ({:>5.0} q/s) | \
             rows scanned {rows:>8} | hits {hits:>3} | \
             background captures {captures} ({capture_time:.1?}) | {stats:?}",
            served.len(),
            served.len() as f64 / elapsed.as_secs_f64(),
        );
        exposition = Some(server.metrics_snapshot());
    }

    // Every stats struct above is a view over the metrics registry; the
    // same numbers (plus latency histograms and health) are exported as
    // Prometheus-style text exposition for scraping.
    if let Some(snap) = exposition {
        let q = &snap.histograms["pbds_query_seconds"];
        println!(
            "\nquery latency (eager): p50 {:>9.1?} p95 {:>9.1?} p99 {:>9.1?}",
            std::time::Duration::from_secs_f64(q.quantile_scaled(0.50)),
            std::time::Duration::from_secs_f64(q.quantile_scaled(0.95)),
            std::time::Duration::from_secs_f64(q.quantile_scaled(0.99)),
        );
        println!(
            "\nmetrics exposition (eager server):\n{}",
            snap.render_text()
        );
    }
    Ok(())
}
