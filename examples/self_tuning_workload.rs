//! Self-tuning PBDS over a parameterized workload (the scenario of Fig. 13):
//! hundreds of instances of a few `HAVING` templates are executed while the
//! framework decides when to capture and when to reuse provenance sketches.
//!
//! Run with: `cargo run -p pbds-core --release --example self_tuning_workload`

use pbds_algebra::QueryTemplate;
use pbds_core::{cumulative_elapsed, Action, EngineProfile, SelfTuningExecutor, Strategy};
use pbds_storage::Value;
use pbds_workloads::{normal, sof};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let db = sof::generate(&sof::SofConfig {
        users: 5_000,
        posts: 30_000,
        comments: 40_000,
        badges: 15_000,
        ..Default::default()
    });
    let templates = sof::end_to_end_templates();

    // Generate 150 query instances: template chosen uniformly, HAVING
    // threshold drawn from a normal distribution (as in Sec. 9.5).
    let mut rng = StdRng::seed_from_u64(2024);
    let workload: Vec<(QueryTemplate, Vec<Value>)> = (0..150)
        .map(|_| {
            let t = templates[rng.gen_range(0..templates.len())].clone();
            let threshold = normal(&mut rng, 40.0, 6.0).max(1.0) as i64;
            (t, vec![Value::Int(threshold)])
        })
        .collect();

    for (label, strategy) in [
        ("No-PS   ", Strategy::NoPbds),
        (
            "eager   ",
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
        ),
        (
            "adaptive",
            Strategy::Adaptive {
                selectivity_threshold: 0.75,
                evidence_threshold: 3,
            },
        ),
    ] {
        let mut exec = SelfTuningExecutor::new(&db, EngineProfile::Indexed, strategy, 500);
        let records = exec.run_workload(&workload).expect("workload");
        let cumulative = cumulative_elapsed(&records);
        let captures = records
            .iter()
            .filter(|r| r.action == Action::Capture)
            .count();
        let reuses = records
            .iter()
            .filter(|r| r.action == Action::UseSketch)
            .count();
        println!(
            "{label}  total {:>9.2} ms   (captured {captures:>3} sketches, reused {reuses:>4} times)",
            cumulative.last().unwrap().as_secs_f64() * 1e3,
        );
        // Show the cumulative-runtime curve at a few checkpoints, as in
        // Fig. 13 of the paper.
        let n = cumulative.len();
        let points: Vec<String> = [n / 4, n / 2, 3 * n / 4, n]
            .iter()
            .map(|&c| format!("@{c}: {:.1} ms", cumulative[c - 1].as_secs_f64() * 1e3))
            .collect();
        println!("          {}", points.join("   "));
    }
}
