//! Fault-injection demo: the durability stack behind a seeded fault
//! injector. A failed WAL fsync (fsyncgate semantics: retrying the same
//! descriptor lies) refuses the write and flips the server read-only; the
//! janitor repairs on a fresh descriptor and writes resume. A corrupted
//! on-disk catalog is quarantined at the next open and the server comes up
//! cold — degraded, never wrong.
//!
//! Run with: `cargo run --release --example fault_drill`

use pbds_core::persist::{FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass, CATALOG_FILE};
use pbds_core::storage::{Database, Value};
use pbds_core::{Action, HealthState, Mutation, PbdsServer, ServerConfig};
use pbds_workloads::{sof, sof_pools, zipf_stream, StreamSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn post(postid: i64) -> Mutation {
    Mutation::Append(vec![vec![
        Value::Int(postid),
        Value::Int(7),
        Value::Int(3),
        Value::Int(50),
    ]])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/fault_drill_demo");
    let _ = std::fs::remove_dir_all(&dir);

    let db: Arc<Database> = Arc::new(sof::generate(&sof::SofConfig {
        users: 1_000,
        posts: 6_000,
        comments: 8_000,
        badges: 3_000,
        ..Default::default()
    }));
    let stream = zipf_stream(
        &sof_pools(8, 5),
        &StreamSpec {
            queries: 30,
            skew: 1.1,
            seed: 3,
        },
    );
    let config = ServerConfig {
        capture_workers: 2,
        ..ServerConfig::default()
    };

    // --- Phase 1: a write hits a failed fsync; the janitor heals ----------
    let injector = FaultInjector::new(42);
    let server = PbdsServer::create_with_io(
        &dir,
        Arc::clone(&db),
        config,
        Arc::new(FaultIo::new(Arc::clone(&injector))),
    )?;
    server.serve_stream(&stream, 2)?;
    server.drain();
    println!(
        "serve: {} sketches captured, health {:?}",
        server.catalog().stored_sketches(),
        server.health()
    );

    injector.inject(FaultSpec {
        kind: FaultKind::FsyncFail,
        class: FileClass::Wal,
        skip: 0,
    });
    let refused = server.apply_mutation("posts", post(900_000));
    println!(
        "fault: WAL fsync failed -> write refused ({}), health {:?}",
        refused.expect_err("an un-durable write must not be acked"),
        server.health()
    );

    let start = Instant::now();
    while server.health() != HealthState::Healthy && start.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let events = server.robustness_events();
    assert_eq!(
        server.health(),
        HealthState::Healthy,
        "janitor did not heal"
    );
    println!(
        "heal : janitor repaired in {:?} ({} attempt(s), {} succeeded) -> health {:?}",
        start.elapsed(),
        events.repair_attempts,
        events.repairs_succeeded,
        server.health()
    );
    server.apply_mutation("posts", post(900_001))?;
    println!("write: post-repair append acked and durable");
    server.shutdown()?;

    // --- Phase 2: a corrupted catalog is quarantined, not trusted ---------
    let path = dir.join(CATALOG_FILE);
    let mut bytes = std::fs::read(&path)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, bytes)?;

    let server = PbdsServer::open(&dir, config)?;
    let recovery = server.recovery_report().expect("opened from disk");
    assert!(recovery.catalog_quarantined);
    println!(
        "open : corrupt catalog quarantined ({} entries imported), server is up cold",
        recovery.catalog_imported
    );

    // Cold but correct: the stream still serves, and capture re-warms it.
    let served = server.serve_stream(&stream, 2)?;
    server.drain();
    let hits = served
        .iter()
        .filter(|s| s.record.action == Action::UseSketch)
        .count();
    println!(
        "serve: {} queries, {} catalog hits, {} sketches re-captured — degraded, never wrong",
        served.len(),
        hits,
        server.catalog().stored_sketches()
    );
    Ok(())
}
