//! Quickstart: capture a provenance sketch for a top-k query and use it to
//! skip data on the next execution.
//!
//! Run with: `cargo run -p pbds-core --release --example quickstart`

use pbds_algebra::{col, AggExpr, AggFunc, LogicalPlan, SortKey};
use pbds_core::{PartitionAttr, Pbds};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};

fn main() {
    // 1. Build a small sales table with an ordered index on the group column
    //    (the physical design PBDS will exploit).
    let schema = Schema::from_pairs(&[
        ("customer", DataType::Int),
        ("amount", DataType::Int),
        ("region", DataType::Int),
    ]);
    let mut builder = TableBuilder::new("sales", schema);
    builder.block_size(512).index("customer");
    for i in 0..200_000i64 {
        builder.push(vec![
            Value::Int(i % 5_000),            // 5 000 customers
            Value::Int((i * 7919) % 997 + 1), // purchase amount
            Value::Int(i % 7),
        ]);
    }
    let mut db = Database::new();
    db.add_table(builder.build());
    let pbds = Pbds::new(db);

    // 2. A top-10 query: the ten customers with the highest total spend.
    //    Which rows are relevant cannot be determined statically — this is
    //    exactly the class of queries PBDS targets.
    let query = LogicalPlan::scan("sales")
        .aggregate(
            vec!["customer"],
            vec![AggExpr::new(AggFunc::Sum, col("amount"), "total")],
        )
        .top_k(vec![SortKey::desc("total")], 10);

    // 3. Check statically that sketches over `customer` are safe (Sec. 5).
    let safety = pbds.check_safety(&query, &[PartitionAttr::new("sales", "customer")]);
    println!("sketches on sales.customer are safe: {}", safety.safe);

    // 4. Capture a provenance sketch over a 100-fragment range partition.
    let partition = pbds
        .range_partition("sales", "customer", 100)
        .expect("partition");
    let captured = pbds.capture(&query, &[partition]).expect("capture");
    let sketch = &captured.sketches[0];
    println!(
        "captured sketch: {} of {} fragments ({} bytes), selectivity {:.1}%",
        sketch.num_selected(),
        sketch.num_fragments(),
        sketch.size_bytes(),
        sketch.selectivity(pbds.db()).unwrap() * 100.0
    );

    // 5. Re-run the query with and without the sketch and compare. One
    //    untimed warm-up of each path first: derived artifacts (the ordered
    //    index, the columnar chunk projection) build lazily on first touch,
    //    and that one-time cost would otherwise drown the steady-state
    //    comparison.
    pbds.execute(&query).expect("warm-up");
    pbds.execute_with_sketches(&query, &captured.sketches)
        .expect("warm-up");
    let plain = pbds.execute(&query).expect("plain execution");
    let skipped = pbds
        .execute_with_sketches(&query, &captured.sketches)
        .expect("sketch execution");
    assert!(
        plain.relation.bag_eq(&skipped.relation),
        "results must match"
    );
    println!(
        "plain:  {:>8.2} ms, {:>8} rows scanned",
        plain.stats.elapsed.as_secs_f64() * 1e3,
        plain.stats.rows_scanned
    );
    println!(
        "sketch: {:>8.2} ms, {:>8} rows scanned  ({:.1}x speed-up)",
        skipped.stats.elapsed.as_secs_f64() * 1e3,
        skipped.stats.rows_scanned,
        plain.stats.elapsed.as_secs_f64() / skipped.stats.elapsed.as_secs_f64().max(1e-9)
    );
    println!("\ntop customer row: {:?}", skipped.relation.rows()[0]);
}
