//! Walks through the paper's safety and reuse machinery on its running
//! example (Fig. 1 and Fig. 5): which partition attributes are safe for Q2,
//! and when can a sketch captured for one instance of a parameterized query
//! answer another instance.
//!
//! Run with: `cargo run -p pbds-core --release --example safety_and_reuse`

use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_core::{PartitionAttr, Pbds};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};

fn cities_db() -> Database {
    let schema = Schema::from_pairs(&[
        ("popden", DataType::Int),
        ("city", DataType::Str),
        ("state", DataType::Str),
    ]);
    let mut b = TableBuilder::new("cities", schema);
    for (popden, city, state) in [
        (4200, "Anchorage", "AK"),
        (6000, "San Diego", "CA"),
        (5000, "Sacramento", "CA"),
        (7000, "New York", "NY"),
        (2000, "Buffalo", "NY"),
        (3700, "Austin", "TX"),
        (2500, "Houston", "TX"),
    ] {
        b.push(vec![
            Value::Int(popden),
            Value::from(city),
            Value::from(state),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn main() {
    let pbds = Pbds::new(cities_db());

    // Q2 from Fig. 1a: the state with the highest average population density.
    let q2 = LogicalPlan::scan("cities")
        .aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
        )
        .top_k(vec![SortKey::desc("avgden")], 1);

    println!("== Sketch safety (Sec. 5) for Q2 ==");
    for attr in ["state", "popden", "city"] {
        let result = pbds.check_safety(&q2, &[PartitionAttr::new("cities", attr)]);
        println!(
            "  partition on cities.{attr:<7}  safe = {}{}",
            result.safe,
            if result.requires_topk_revalidation {
                "  (top-k: re-validate at runtime)"
            } else {
                ""
            }
        );
        for d in &result.details {
            println!("      {d}");
        }
    }
    // Capture the sketch on the safe attribute and show the Ex. 3 result.
    let partition = pbds.range_partition("cities", "state", 4).unwrap();
    let captured = pbds.capture(&q2, &[partition]).unwrap();
    println!(
        "  captured sketch on state: fragments {:?} (Ex. 3 expects {{f1}})\n",
        captured.sketches[0].selected_fragments()
    );

    // The parameterized query of Fig. 5: states with more than $1 cities of
    // at least $0 inhabitants per square mile.
    println!("== Sketch reuse (Sec. 6) for the Fig. 5 template ==");
    let template = QueryTemplate::new(
        "fig5",
        LogicalPlan::scan("cities")
            .filter(col("popden").gt(param(0)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cntcity")],
            )
            .filter(col("cntcity").gt(param(1))),
    );
    let captured_binding = vec![Value::Int(100), Value::Int(10)];
    for (label, new_binding) in [
        (
            "same popden, higher count threshold (Ex. 7)",
            vec![Value::Int(100), Value::Int(15)],
        ),
        (
            "lower count threshold",
            vec![Value::Int(100), Value::Int(5)],
        ),
        ("weaker popden filter", vec![Value::Int(50), Value::Int(10)]),
        (
            "stronger popden filter",
            vec![Value::Int(500), Value::Int(10)],
        ),
    ] {
        let result = pbds.check_reuse(&template, &captured_binding, &new_binding);
        println!(
            "  captured ($1=100, $2=10), new ({}): reusable = {}",
            label, result.reusable
        );
    }
}
