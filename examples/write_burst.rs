//! Group-commit demo: fire a burst of concurrent mutations at a durable
//! server and watch the write path batch them — one WAL append + fsync, one
//! copy-on-write fork and one snapshot swap per *batch* instead of per
//! mutation — then crash (no shutdown) and reopen to show the batched WAL
//! replays every acknowledged write.
//!
//! Run with: `cargo run --release --example write_burst`

use pbds_core::storage::{DataType, Database, Row, Schema, TableBuilder, Value};
use pbds_core::{Mutation, MutationTicket, PbdsServer, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

const WRITERS: usize = 8;
const MUTATIONS_PER_WRITER: usize = 100;

fn events_db() -> Database {
    let schema = Schema::from_pairs(&[("grp", DataType::Int), ("v", DataType::Int)]);
    let mut b = TableBuilder::new("events", schema);
    for g in 0..20i64 {
        b.push(vec![Value::Int(g), Value::Int(1)]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/write_burst_demo");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        checkpoint_every: None, // keep the whole burst in the WAL for replay
        ..ServerConfig::default()
    };
    let server = Arc::new(PbdsServer::create(&dir, Arc::new(events_db()), config)?);

    // --- Concurrent writers: every apply_mutation rides a commit batch -----
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WRITERS as i64 {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for i in 0..MUTATIONS_PER_WRITER as i64 {
                    let rows: Vec<Row> = (0..4)
                        .map(|_| vec![Value::Int((w * 31 + i) % 20), Value::Int(1)])
                        .collect();
                    server
                        .apply_mutation("events", Mutation::Append(rows))
                        .expect("append");
                }
            });
        }
    });
    let concurrent = start.elapsed();
    let stats = server.commit_stats();
    let total = (WRITERS * MUTATIONS_PER_WRITER) as u64;
    println!(
        "burst: {total} mutations from {WRITERS} writers in {concurrent:>7.1?} \
         ({:.0} mutations/s)",
        total as f64 / concurrent.as_secs_f64()
    );
    println!(
        "     : {} commit batches, {} fsyncs (vs {total} unbatched), max batch {}",
        stats.batched_commits, stats.fsyncs, stats.max_batch
    );
    println!(
        "     : catalog maintenance ran {} coalesced deltas for those {total} mutations",
        server.catalog().stats().maintenance_deltas
    );

    // --- Pipelined submission: submit first, wait later --------------------
    let start = Instant::now();
    let tickets: Vec<MutationTicket> = (0..200i64)
        .map(|i| {
            server.submit_mutation(
                "events",
                Mutation::Append(vec![vec![Value::Int(i % 20), Value::Int(1)]]),
            )
        })
        .collect();
    let outcomes: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("commit"))
        .collect();
    let pipelined = start.elapsed();
    let widest = outcomes.iter().map(|o| o.batch_len).max().unwrap_or(0);
    println!(
        "queue: 200 pipelined submissions acknowledged in {pipelined:>7.1?}; \
         widest batch carried {widest} mutations, last wal_seq {:?}",
        outcomes.last().and_then(|o| o.wal_seq)
    );

    // --- Crash and replay ---------------------------------------------------
    let acked = server.db().table("events")?.len();
    drop(server); // no shutdown, no checkpoint: recovery must use the WAL
    let start = Instant::now();
    let reopened = PbdsServer::open(&dir, config)?;
    let report = reopened.recovery_report().expect("opened from disk");
    let recovered = reopened.db().table("events")?.len();
    println!(
        "crash: reopened in {:>7.1?}; replayed {} batched WAL records -> {recovered} rows",
        start.elapsed(),
        report.wal_replayed,
    );
    assert_eq!(recovered, acked, "every acknowledged mutation must survive");
    println!("     : recovered state matches every acknowledged write");
    Ok(())
}
