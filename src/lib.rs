//! # pbds — workspace meta crate
//!
//! Re-exports the public surface of the PBDS reproduction so the
//! repository-level integration tests and examples can depend on a single
//! crate. See `pbds-core` for the full architecture documentation.

#![warn(missing_docs)]

pub use pbds_algebra as algebra;
pub use pbds_core as core;
pub use pbds_exec as exec;
pub use pbds_persist as persist;
pub use pbds_provenance as provenance;
pub use pbds_solver as solver;
pub use pbds_storage as storage;
pub use pbds_sync as sync;
pub use pbds_telemetry as telemetry;
pub use pbds_workloads as workloads;

pub use pbds_core::{Pbds, PbdsError};
