//! Fragment bitsets: the compact encoding of provenance sketches (Sec. 7).
//!
//! A partition with `n` fragments is encoded as a vector of `n` bits; the
//! sketch of an (intermediate) result is the bitwise OR of the sketches of
//! the rows that produced it. The paper describes two capture optimizations
//! for this encoding (Sec. 7.3): *delay* (propagate the single set bit as an
//! integer until a merge forces materialization) and *no-copy* (merge bitsets
//! word-at-a-time in place instead of allocating intermediates); both are
//! modelled here and compared in the Fig. 12b benchmark.

use std::fmt;

/// A fixed-width bitset over partition fragments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FragmentBitset {
    nbits: usize,
    words: Vec<u64>,
}

impl FragmentBitset {
    /// An empty bitset for a partition with `nbits` fragments.
    pub fn new(nbits: usize) -> Self {
        FragmentBitset {
            nbits,
            words: vec![0; nbits.div_ceil(64)],
        }
    }

    /// A bitset with a single fragment set.
    pub fn singleton(nbits: usize, fragment: usize) -> Self {
        let mut b = FragmentBitset::new(nbits);
        b.set(fragment);
        b
    }

    /// Reconstruct a bitset from its durable state (`nbits` plus the raw
    /// `u64` words, as exposed by [`FragmentBitset::words`]). Returns `None`
    /// when the word count does not match `nbits` or a bit beyond `nbits` is
    /// set — either indicates a corrupt image.
    pub fn from_words(nbits: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != nbits.div_ceil(64) {
            return None;
        }
        if !nbits.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last >> (nbits % 64) != 0 {
                    return None;
                }
            }
        }
        Some(FragmentBitset { nbits, words })
    }

    /// The raw backing words (64 fragments per word, low bit first). The
    /// durable counterpart of [`FragmentBitset::from_words`].
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of fragments this bitset ranges over.
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when no fragment is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Set a fragment bit.
    pub fn set(&mut self, fragment: usize) {
        assert!(
            fragment < self.nbits,
            "fragment {fragment} out of range {}",
            self.nbits
        );
        self.words[fragment / 64] |= 1u64 << (fragment % 64);
    }

    /// Test a fragment bit.
    pub fn get(&self, fragment: usize) -> bool {
        if fragment >= self.nbits {
            return false;
        }
        self.words[fragment / 64] & (1u64 << (fragment % 64)) != 0
    }

    /// Number of fragments set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the set fragments, ascending.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, w) in self.words.iter().enumerate() {
            let mut word = *w;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                word &= word - 1;
            }
        }
        out
    }

    /// In-place OR with another bitset — the "no-copy" merge of Sec. 7.3,
    /// operating one machine word at a time.
    pub fn or_assign(&mut self, other: &FragmentBitset) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Copying OR — models the naive `bit_or` aggregate that allocates a new
    /// bitset per merged pair (the baseline in Fig. 12b). One word-wise pass
    /// over `u64` words; the byte-at-a-time variant the paper's Postgres
    /// baseline used (`or_bytewise`) is gone — allocation per merge is what
    /// distinguishes this from [`FragmentBitset::or_assign`], not the word
    /// width.
    pub fn or(&self, other: &FragmentBitset) -> FragmentBitset {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// True when every fragment set in `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &FragmentBitset) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }
}

impl fmt::Display for FragmentBitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.nbits {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// A per-row sketch annotation during capture.
///
/// The *delay* optimization keeps single-fragment annotations as a plain
/// integer instead of a full bitset until a merge (aggregation / final BITOR)
/// forces materialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Annotation {
    /// No fragment (row of an un-partitioned relation).
    Empty,
    /// A single fragment, not yet materialized into a bitset.
    Single(u32),
    /// A materialized set of fragments.
    Bits(FragmentBitset),
}

impl Annotation {
    /// Materialize into a bitset over `nbits` fragments.
    pub fn to_bitset(&self, nbits: usize) -> FragmentBitset {
        match self {
            Annotation::Empty => FragmentBitset::new(nbits),
            Annotation::Single(i) => FragmentBitset::singleton(nbits, *i as usize),
            Annotation::Bits(b) => b.clone(),
        }
    }

    /// Merge another annotation into this one using the given strategy.
    pub fn merge(&mut self, other: &Annotation, nbits: usize, strategy: MergeStrategy) {
        match strategy {
            MergeStrategy::Bitor | MergeStrategy::BytewiseBitor => {
                let a = self.to_bitset(nbits);
                let b = other.to_bitset(nbits);
                *self = Annotation::Bits(a.or(&b));
            }
            MergeStrategy::Delay => {
                // Materialize lazily, but still use copying OR for the merge.
                let merged = match (&*self, other) {
                    (Annotation::Empty, o) => o.clone(),
                    (s, Annotation::Empty) => s.clone(),
                    (a, b) => Annotation::Bits(a.to_bitset(nbits).or(&b.to_bitset(nbits))),
                };
                *self = merged;
            }
            MergeStrategy::DelayNoCopy => match (&mut *self, other) {
                (_, Annotation::Empty) => {}
                (Annotation::Empty, o) => *self = o.clone(),
                (Annotation::Bits(a), Annotation::Single(i)) => a.set(*i as usize),
                (Annotation::Bits(a), Annotation::Bits(b)) => a.or_assign(b),
                (slf, o) => {
                    let mut bits = slf.to_bitset(nbits);
                    bits.or_assign(&o.to_bitset(nbits));
                    *slf = Annotation::Bits(bits);
                }
            },
        }
    }
}

/// How per-row sketch annotations are merged during capture (Fig. 12b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Materialize every annotation as a bitset immediately and merge with a
    /// copying OR (the unoptimized baseline). Historically this modelled
    /// Postgres's byte-at-a-time `bit_or`; the internals are now word-wise
    /// `u64` like every other strategy, so it differs from
    /// [`MergeStrategy::Delay`]/[`MergeStrategy::DelayNoCopy`] only in its
    /// eager materialization and per-merge allocation.
    BytewiseBitor,
    /// Materialize eagerly, merge with a word-wise copying OR.
    Bitor,
    /// Keep singleton annotations as integers until a merge point
    /// (the paper's *delay* method).
    Delay,
    /// Delay plus in-place word-wise merging (the paper's *no-copy* method);
    /// this is the default used outside the optimization benchmark.
    #[default]
    DelayNoCopy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count_ones() {
        let mut b = FragmentBitset::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
        assert_eq!(b.ones(), vec![0, 64, 129]);
    }

    #[test]
    fn singleton_and_display_match_paper_encoding() {
        // Fragment f1 of a 4-fragment partition is encoded 1000 (Sec. 7).
        let b = FragmentBitset::singleton(4, 0);
        assert_eq!(b.to_string(), "1000");
        let b3 = FragmentBitset::singleton(4, 2);
        assert_eq!(b3.to_string(), "0010");
        assert_eq!(b.or(&b3).to_string(), "1010");
    }

    #[test]
    fn or_variants_agree() {
        let mut a = FragmentBitset::new(200);
        let mut b = FragmentBitset::new(200);
        for i in (0..200).step_by(3) {
            a.set(i);
        }
        for i in (0..200).step_by(7) {
            b.set(i);
        }
        let copying = a.or(&b);
        let mut inplace = a.clone();
        inplace.or_assign(&b);
        assert_eq!(copying, inplace);
        assert_eq!(copying.count(), copying.ones().len());
    }

    #[test]
    fn subset_relation() {
        let small = FragmentBitset::singleton(10, 3);
        let mut big = FragmentBitset::singleton(10, 3);
        big.set(7);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(FragmentBitset::new(10).is_subset_of(&small));
    }

    #[test]
    fn out_of_range_get_is_false() {
        let b = FragmentBitset::new(5);
        assert!(!b.get(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        FragmentBitset::new(5).set(5);
    }

    #[test]
    fn annotation_merge_strategies_agree_on_result() {
        let nbits = 96;
        for strategy in [
            MergeStrategy::BytewiseBitor,
            MergeStrategy::Bitor,
            MergeStrategy::Delay,
            MergeStrategy::DelayNoCopy,
        ] {
            let mut acc = Annotation::Empty;
            for i in [3u32, 7, 3, 90, 41] {
                acc.merge(&Annotation::Single(i), nbits, strategy);
            }
            let bits = acc.to_bitset(nbits);
            assert_eq!(bits.ones(), vec![3, 7, 41, 90], "strategy {strategy:?}");
        }
    }

    #[test]
    fn delay_keeps_single_until_merge() {
        let mut acc = Annotation::Empty;
        acc.merge(&Annotation::Single(5), 64, MergeStrategy::DelayNoCopy);
        assert_eq!(acc, Annotation::Single(5));
        acc.merge(&Annotation::Single(6), 64, MergeStrategy::DelayNoCopy);
        assert!(matches!(acc, Annotation::Bits(_)));
        assert_eq!(acc.to_bitset(64).ones(), vec![5, 6]);
    }

    #[test]
    fn empty_annotation_is_identity_for_merge() {
        let mut acc = Annotation::Single(2);
        acc.merge(&Annotation::Empty, 8, MergeStrategy::DelayNoCopy);
        assert_eq!(acc.to_bitset(8).ones(), vec![2]);
    }
}
