//! Provenance sketches (Sec. 4 of the paper).
//!
//! A provenance sketch for a query `Q`, database `D` and partition `F` of a
//! relation `R` is a set of fragments of `F` that covers `Q`'s provenance
//! within `R`. It is *accurate* when it contains only fragments that actually
//! hold provenance, and *safe* when evaluating `Q` over the data described by
//! the sketch returns `Q(D)`.

use crate::bitset::FragmentBitset;
use pbds_storage::{
    Database, Partition, PartitionRef, Row, Schema, StorageError, Table, Value, ValueRange,
};
use std::fmt;
use std::sync::Arc;

/// A provenance sketch: a partition plus the set of selected fragments.
#[derive(Debug, Clone)]
pub struct ProvenanceSketch {
    partition: PartitionRef,
    fragments: FragmentBitset,
}

impl ProvenanceSketch {
    /// Create a sketch from a partition and fragment bitset.
    pub fn new(partition: PartitionRef, fragments: FragmentBitset) -> Self {
        assert_eq!(partition.num_fragments(), fragments.len());
        ProvenanceSketch {
            partition,
            fragments,
        }
    }

    /// An empty sketch (no fragments selected) over a partition.
    pub fn empty(partition: PartitionRef) -> Self {
        let n = partition.num_fragments();
        ProvenanceSketch {
            partition,
            fragments: FragmentBitset::new(n),
        }
    }

    /// Build the *accurate* sketch for an explicit set of provenance rows of
    /// the partitioned table (used by tests and by ground-truth comparisons).
    pub fn from_rows(
        partition: PartitionRef,
        schema: &Schema,
        rows: impl IntoIterator<Item = Row>,
    ) -> Self {
        let mut bits = FragmentBitset::new(partition.num_fragments());
        // Resolve the partitioning attributes once, not per row.
        if let Some(idxs) = partition.resolve_attrs(schema) {
            for row in rows {
                if let Some(f) = partition.fragment_of_row_at(&idxs, &row) {
                    bits.set(f);
                }
            }
        }
        ProvenanceSketch::new(partition, bits)
    }

    /// The partition this sketch is defined over.
    pub fn partition(&self) -> &PartitionRef {
        &self.partition
    }

    /// The partitioned table.
    pub fn table(&self) -> &str {
        self.partition.table()
    }

    /// The partitioning attributes.
    pub fn attrs(&self) -> Vec<String> {
        self.partition.attrs()
    }

    /// Total number of fragments of the partition.
    pub fn num_fragments(&self) -> usize {
        self.partition.num_fragments()
    }

    /// Number of fragments selected by the sketch.
    pub fn num_selected(&self) -> usize {
        self.fragments.count()
    }

    /// The selected fragment ids.
    pub fn selected_fragments(&self) -> Vec<usize> {
        self.fragments.ones()
    }

    /// The underlying bitset.
    pub fn bitset(&self) -> &FragmentBitset {
        &self.fragments
    }

    /// Add a fragment to the sketch (sketches remain sketches when fragments
    /// are added — Lemma 5).
    pub fn add_fragment(&mut self, fragment: usize) {
        self.fragments.set(fragment);
    }

    /// Maintain the sketch across an append to the partitioned table: add
    /// the fragment of every appended row, so the sketch stays a superset of
    /// the accurate sketch over the grown data (fragments that received no
    /// new rows keep their membership; fragments that did are now fully
    /// included, covering any group whose aggregate the append changed).
    ///
    /// Returns `false` when some new row has **no** fragment under this
    /// partition (a novel composite key, or a NULL partitioning value): the
    /// partition's shape cannot describe the new data, so the sketch cannot
    /// be maintained and the caller must force a recapture. Fragments set
    /// before the failing row stay set — the sketch only ever grows, which
    /// is harmless for a sketch about to be discarded.
    pub fn extend_for_append(&mut self, schema: &Schema, new_rows: &[Row]) -> bool {
        let Some(idxs) = self.partition.resolve_attrs(schema) else {
            return false;
        };
        for row in new_rows {
            match self.partition.fragment_of_row_at(&idxs, row) {
                Some(f) => self.fragments.set(f),
                None => return false,
            }
        }
        true
    }

    /// Union with another sketch over the same partition.
    pub fn union(&self, other: &ProvenanceSketch) -> ProvenanceSketch {
        assert!(Arc::ptr_eq(&self.partition, &other.partition) || self.compatible_with(other));
        ProvenanceSketch {
            partition: self.partition.clone(),
            fragments: self.fragments.or(&other.fragments),
        }
    }

    /// True if both sketches are over the same table, attributes and number
    /// of fragments (so unioning / containment checks are meaningful).
    pub fn compatible_with(&self, other: &ProvenanceSketch) -> bool {
        self.table() == other.table()
            && self.attrs() == other.attrs()
            && self.num_fragments() == other.num_fragments()
    }

    /// True when this sketch covers every fragment of `other`.
    pub fn is_superset_of(&self, other: &ProvenanceSketch) -> bool {
        self.compatible_with(other) && other.fragments.is_subset_of(&self.fragments)
    }

    /// Does a row of the partitioned table fall into the sketch?
    pub fn covers_row(&self, schema: &Schema, row: &Row) -> bool {
        self.partition
            .fragment_of_row(schema, row)
            .map(|f| self.fragments.get(f))
            .unwrap_or(false)
    }

    /// Row ids of the sketch instance `R_P` (all rows of the table that
    /// belong to a selected fragment).
    pub fn instance_row_ids(&self, table: &Table) -> Vec<u32> {
        let Some(idxs) = self.partition.resolve_attrs(table.schema()) else {
            return Vec::new();
        };
        table
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                self.partition
                    .fragment_of_row_at(&idxs, r)
                    .map(|f| self.fragments.get(f))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Fraction of the table's rows covered by the sketch — the *selectivity*
    /// reported in Fig. 9 of the paper (lower is better).
    pub fn selectivity(&self, db: &Database) -> Result<f64, StorageError> {
        let table = db.table(self.table())?;
        if table.is_empty() {
            return Ok(0.0);
        }
        let covered = self.instance_row_ids(table).len();
        Ok(covered as f64 / table.len() as f64)
    }

    /// For range-partition sketches: the (adjacent-merged) value ranges
    /// covering the selected fragments, used to build the filter predicate of
    /// `Q[P]` (Sec. 8).
    pub fn to_ranges(&self) -> Option<Vec<ValueRange>> {
        match self.partition.as_ref() {
            Partition::Range(p) => Some(p.merged_ranges(&self.fragments.ones())),
            Partition::Composite(_) => None,
        }
    }

    /// For composite sketches: the composite keys covering the selected
    /// fragments.
    pub fn to_keys(&self) -> Option<Vec<Vec<Value>>> {
        match self.partition.as_ref() {
            Partition::Range(_) => None,
            Partition::Composite(p) => Some(p.keys_of(&self.fragments.ones())),
        }
    }

    /// Approximate size of the sketch in bytes (the paper emphasises sketches
    /// are 10s–100s of bytes, Sec. 2).
    pub fn size_bytes(&self) -> usize {
        self.num_fragments().div_ceil(8)
    }
}

impl fmt::Display for ProvenanceSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sketch[{}.{:?}: {}/{} fragments]",
            self.table(),
            self.attrs(),
            self.num_selected(),
            self.num_fragments()
        )
    }
}

/// A set of sketches, at most one per relation (the paper's `PS`).
pub type SketchSet = Vec<ProvenanceSketch>;

/// Build the database `D_PS`: every sketched relation restricted to its
/// sketch instance, all other relations unchanged (Sec. 4.2).
pub fn restrict_database(
    db: &Database,
    sketches: &[ProvenanceSketch],
) -> Result<Database, StorageError> {
    let mut out = db.clone();
    for sketch in sketches {
        let table = db.table(sketch.table())?;
        let rows: Vec<Row> = sketch
            .instance_row_ids(table)
            .into_iter()
            .map(|rid| table.rows()[rid as usize].clone())
            .collect();
        let mut replacement = Table::new(sketch.table(), table.schema().clone(), rows);
        // Preserve the physical design of the original table.
        if table.zone_map().is_some() {
            replacement.build_zone_map(table.block_size());
        }
        for col in table.indexed_columns() {
            replacement.create_index(col);
        }
        out.add_table(replacement);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_storage::{DataType, RangePartition, TableBuilder};

    fn cities_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        b.build()
    }

    fn state_partition() -> PartitionRef {
        Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
        )))
    }

    #[test]
    fn accurate_sketch_for_q2_is_fragment_f1() {
        // Ex. 3: P(Q2) = {t2, t3}, both in fragment f1 (index 0).
        let table = cities_table();
        let prov_rows: Vec<Row> = vec![table.rows()[1].clone(), table.rows()[2].clone()];
        let sketch = ProvenanceSketch::from_rows(state_partition(), table.schema(), prov_rows);
        assert_eq!(sketch.selected_fragments(), vec![0]);
        assert_eq!(sketch.num_fragments(), 4);
        assert_eq!(sketch.size_bytes(), 1);
    }

    #[test]
    fn sketch_instance_and_selectivity() {
        let table = cities_table();
        let mut db = Database::new();
        db.add_table(table.clone());
        let sketch = ProvenanceSketch::from_rows(
            state_partition(),
            table.schema(),
            vec![table.rows()[1].clone()],
        );
        // Fragment f1 = [AL, DE] contains AK + 2×CA rows.
        assert_eq!(sketch.instance_row_ids(&table), vec![0, 1, 2]);
        let sel = sketch.selectivity(&db).unwrap();
        assert!((sel - 3.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn restrict_database_builds_sketch_instance() {
        let table = cities_table();
        let mut db = Database::new();
        db.add_table(table.clone());
        let sketch = ProvenanceSketch::from_rows(
            state_partition(),
            table.schema(),
            vec![table.rows()[1].clone()],
        );
        let restricted = restrict_database(&db, &[sketch]).unwrap();
        assert_eq!(restricted.table("cities").unwrap().len(), 3);
        // Original is untouched.
        assert_eq!(db.table("cities").unwrap().len(), 7);
    }

    #[test]
    fn superset_and_union() {
        let table = cities_table();
        let part = state_partition();
        let small = ProvenanceSketch::from_rows(
            part.clone(),
            table.schema(),
            vec![table.rows()[1].clone()],
        );
        let big = ProvenanceSketch::from_rows(
            part.clone(),
            table.schema(),
            vec![table.rows()[1].clone(), table.rows()[3].clone()],
        );
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        let union = small.union(&big);
        assert_eq!(union.selected_fragments(), big.selected_fragments());
    }

    #[test]
    fn ranges_of_selected_fragments() {
        let table = cities_table();
        let sketch = ProvenanceSketch::from_rows(
            state_partition(),
            table.schema(),
            vec![table.rows()[1].clone(), table.rows()[3].clone()],
        );
        // Fragments 0 ([..DE]) and 2 ((MI..OK]) — not adjacent, two ranges.
        let ranges = sketch.to_ranges().unwrap();
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].hi, Some(Value::from("DE")));
        assert_eq!(ranges[1].lo, Some(Value::from("MI")));
        assert!(sketch.to_keys().is_none());
    }

    #[test]
    fn extend_for_append_adds_new_row_fragments() {
        let table = cities_table();
        let mut sketch = ProvenanceSketch::from_rows(
            state_partition(),
            table.schema(),
            vec![table.rows()[1].clone()], // CA -> fragment 0
        );
        assert_eq!(sketch.selected_fragments(), vec![0]);
        // Appending an NY row (fragment 2) extends the sketch.
        let new_rows = vec![vec![
            Value::Int(1234),
            Value::from("Albany"),
            Value::from("NY"),
        ]];
        assert!(sketch.extend_for_append(table.schema(), &new_rows));
        assert_eq!(sketch.selected_fragments(), vec![0, 2]);
        // A NULL partitioning value has no fragment: maintenance fails.
        let null_row = vec![vec![Value::Int(1), Value::from("x"), Value::Null]];
        assert!(!sketch.extend_for_append(table.schema(), &null_row));
    }

    #[test]
    fn covers_row_respects_selected_fragments() {
        let table = cities_table();
        let sketch = ProvenanceSketch::from_rows(
            state_partition(),
            table.schema(),
            vec![table.rows()[1].clone()],
        );
        assert!(sketch.covers_row(table.schema(), &table.rows()[0])); // AK in f1
        assert!(!sketch.covers_row(table.schema(), &table.rows()[3])); // NY in f3
    }

    #[test]
    fn empty_sketch_has_zero_selectivity() {
        let table = cities_table();
        let mut db = Database::new();
        db.add_table(table);
        let sketch = ProvenanceSketch::empty(state_partition());
        assert_eq!(sketch.num_selected(), 0);
        assert_eq!(sketch.selectivity(&db).unwrap(), 0.0);
    }
}
