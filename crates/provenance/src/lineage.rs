//! Lineage capture: the ground-truth provenance model (Sec. 3.2).
//!
//! Lineage annotates every query result tuple with the set of input tuples
//! used to derive it. PBDS never needs full lineage at runtime — that is the
//! whole point of sketches — but this module provides it as a reference
//! implementation: tests use it to verify that captured sketches really are
//! supersets of the provenance and to build *accurate* sketches.
//!
//! Like sketch capture, lineage is just a [`TagPolicy`] over the shared
//! physical operator pipeline: scans seed singleton `(table, row id)` sets,
//! merge points take set unions, and min/max narrowing stays off because
//! Lineage keeps the full witness set of every group.

use pbds_algebra::{AggFunc, LogicalPlan};
use pbds_exec::{execute_logical, EngineProfile, ExecError, ExecStats, TagPolicy};
use pbds_storage::{Database, Relation, Row, Schema, Value};
use std::collections::BTreeSet;

/// A set of base-table tuples identified by `(table name, row id)`.
pub type TupleSet = BTreeSet<(String, u32)>;

/// Result of a lineage-instrumented execution.
#[derive(Debug, Clone)]
pub struct LineageResult {
    /// The ordinary query result.
    pub relation: Relation,
    /// Lineage of each output row (aligned with `relation.rows()`).
    pub per_row: Vec<TupleSet>,
    /// Union of all per-row lineages: `P(Q, D)` in the paper's notation.
    pub provenance: TupleSet,
}

impl LineageResult {
    /// Provenance restricted to one table, as row ids.
    pub fn rows_of(&self, table: &str) -> Vec<u32> {
        self.provenance
            .iter()
            .filter(|(t, _)| t == table)
            .map(|(_, rid)| *rid)
            .collect()
    }
}

/// The pipeline tag policy computing Lineage: tags are base-tuple sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineageTagPolicy;

impl TagPolicy for LineageTagPolicy {
    type Tag = TupleSet;

    fn seed_tag(&self, table: &str, _schema: &Schema, _row: &Row, row_id: u32) -> TupleSet {
        let mut set = TupleSet::new();
        set.insert((table.to_string(), row_id));
        set
    }

    fn empty_tag(&self) -> TupleSet {
        TupleSet::new()
    }

    fn merge_tags(&self, into: &mut TupleSet, from: &TupleSet) {
        into.extend(from.iter().cloned());
    }
}

/// Compute the query result together with Lineage provenance.
pub fn capture_lineage(db: &Database, plan: &LogicalPlan) -> Result<LineageResult, ExecError> {
    let mut stats = ExecStats::default();
    let (relation, per_row) = execute_logical(
        db,
        plan,
        EngineProfile::default(),
        &LineageTagPolicy,
        &mut stats,
    )?;
    let mut provenance = TupleSet::new();
    for lin in &per_row {
        provenance.extend(lin.iter().cloned());
    }
    Ok(LineageResult {
        relation,
        per_row,
        provenance,
    })
}

/// Evaluate one aggregation function over the values of a group.
pub fn aggregate_value(func: AggFunc, values: &[Value]) -> Value {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Min => non_null
            .iter()
            .min()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Max => non_null
            .iter()
            .max()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Sum => {
            if non_null.is_empty() {
                Value::Null
            } else if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(non_null.iter().filter_map(|v| v.as_i64()).sum())
            } else {
                Value::Float(non_null.iter().filter_map(|v| v.as_f64()).sum())
            }
        }
        AggFunc::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let sum: f64 = non_null.iter().filter_map(|v| v.as_f64()).sum();
                Value::Float(sum / non_null.len() as f64)
            }
        }
    }
}

/// Also expose a plain (un-annotated) reference check: does the query return
/// the same result over `db` and over a database where `table` is restricted
/// to `row_ids`? Used by tests to validate sufficiency (Def. 1).
pub fn is_sufficient_subset(
    db: &Database,
    plan: &LogicalPlan,
    table: &str,
    row_ids: &[u32],
    engine: &pbds_exec::Engine,
) -> Result<bool, ExecError> {
    let full = engine.execute(db, plan)?.relation;
    let t = db.table(table)?;
    let subset_rows: Vec<Row> = row_ids
        .iter()
        .map(|&rid| t.rows()[rid as usize].clone())
        .collect();
    let replacement = pbds_storage::Table::new(table, t.schema().clone(), subset_rows);
    let restricted_db = db.with_replaced_table(replacement);
    let restricted = engine.execute(&restricted_db, plan)?.relation;
    Ok(full.bag_eq(&restricted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, AggExpr, SortKey};
    use pbds_exec::Engine;
    use pbds_storage::{DataType, TableBuilder};

    /// The running-example `cities` relation (Fig. 1b).
    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    #[test]
    fn q2_lineage_is_the_two_california_rows() {
        // Ex. 3: the provenance of Q2 is {t2, t3} (row ids 1 and 2).
        let result = capture_lineage(&cities_db(), &q2()).unwrap();
        assert_eq!(result.relation.len(), 1);
        assert_eq!(result.rows_of("cities"), vec![1, 2]);
    }

    #[test]
    fn q1_selection_lineage_matches_matching_rows() {
        let plan = LogicalPlan::scan("cities").filter(col("state").eq(lit("CA")));
        let result = capture_lineage(&cities_db(), &plan).unwrap();
        assert_eq!(result.rows_of("cities"), vec![1, 2]);
        assert_eq!(result.per_row.len(), 2);
    }

    #[test]
    fn lineage_result_matches_plain_execution() {
        let engine = Engine::new(EngineProfile::Indexed);
        let db = cities_db();
        for plan in [
            q2(),
            LogicalPlan::scan("cities")
                .filter(col("popden").gt(lit(3000)))
                .aggregate(
                    vec!["state"],
                    vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
                ),
            LogicalPlan::scan("cities")
                .project(vec![(col("state"), "state")])
                .distinct(),
        ] {
            let plain = engine.execute(&db, &plan).unwrap().relation;
            let lin = capture_lineage(&db, &plan).unwrap().relation;
            assert!(plain.bag_eq(&lin), "mismatch for {}", plan.display_tree());
        }
    }

    #[test]
    fn lineage_is_sufficient_for_the_query() {
        // Def. 1: evaluating the query over its provenance gives the same
        // answer as over the full database.
        let db = cities_db();
        let engine = Engine::new(EngineProfile::Indexed);
        let plan = q2();
        let lineage = capture_lineage(&db, &plan).unwrap();
        let rows = lineage.rows_of("cities");
        assert!(is_sufficient_subset(&db, &plan, "cities", &rows, &engine).unwrap());
    }

    #[test]
    fn join_lineage_includes_both_sides() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities")
            .join(LogicalPlan::scan("regions"), "state", "st")
            .filter(col("region").eq(lit("West")));
        let result = capture_lineage(&db, &plan).unwrap();
        assert_eq!(result.rows_of("cities"), vec![1, 2]);
        assert_eq!(result.rows_of("regions"), vec![0]);
    }

    #[test]
    fn distinct_lineage_unions_duplicates() {
        let plan = LogicalPlan::scan("cities")
            .project(vec![(col("state"), "state")])
            .distinct()
            .filter(col("state").eq(lit("TX")));
        let result = capture_lineage(&cities_db(), &plan).unwrap();
        // Both Texas rows contribute to the single distinct output.
        assert_eq!(result.rows_of("cities"), vec![5, 6]);
    }

    #[test]
    fn aggregate_value_helper_matches_expectations() {
        let vals = vec![Value::Int(1), Value::Int(2), Value::Null, Value::Int(3)];
        assert_eq!(aggregate_value(AggFunc::Count, &vals), Value::Int(4));
        assert_eq!(aggregate_value(AggFunc::Sum, &vals), Value::Int(6));
        assert_eq!(aggregate_value(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(aggregate_value(AggFunc::Max, &vals), Value::Int(3));
        assert_eq!(aggregate_value(AggFunc::Avg, &vals), Value::Float(2.0));
    }
}
