//! Lineage capture: the ground-truth provenance model (Sec. 3.2).
//!
//! Lineage annotates every query result tuple with the set of input tuples
//! used to derive it. PBDS never needs full lineage at runtime — that is the
//! whole point of sketches — but this module provides it as a reference
//! implementation: tests use it to verify that captured sketches really are
//! supersets of the provenance and to build *accurate* sketches.

use pbds_exec::{eval_expr, eval_predicate, ExecError};
use pbds_algebra::{AggFunc, LogicalPlan, SortKey};
use pbds_storage::{Database, Relation, Row, Schema, Value};
use std::collections::{BTreeSet, HashMap};

/// A set of base-table tuples identified by `(table name, row id)`.
pub type TupleSet = BTreeSet<(String, u32)>;

/// Result of a lineage-instrumented execution.
#[derive(Debug, Clone)]
pub struct LineageResult {
    /// The ordinary query result.
    pub relation: Relation,
    /// Lineage of each output row (aligned with `relation.rows()`).
    pub per_row: Vec<TupleSet>,
    /// Union of all per-row lineages: `P(Q, D)` in the paper's notation.
    pub provenance: TupleSet,
}

impl LineageResult {
    /// Provenance restricted to one table, as row ids.
    pub fn rows_of(&self, table: &str) -> Vec<u32> {
        self.provenance
            .iter()
            .filter(|(t, _)| t == table)
            .map(|(_, rid)| *rid)
            .collect()
    }
}

/// Compute the query result together with Lineage provenance.
pub fn capture_lineage(db: &Database, plan: &LogicalPlan) -> Result<LineageResult, ExecError> {
    let (schema, rows) = eval(db, plan)?;
    let mut relation = Relation::empty(schema);
    let mut per_row = Vec::with_capacity(rows.len());
    let mut provenance = TupleSet::new();
    for (row, lin) in rows {
        provenance.extend(lin.iter().cloned());
        relation.push(row);
        per_row.push(lin);
    }
    Ok(LineageResult {
        relation,
        per_row,
        provenance,
    })
}

type AnnRow = (Row, TupleSet);

fn eval(db: &Database, plan: &LogicalPlan) -> Result<(Schema, Vec<AnnRow>), ExecError> {
    match plan {
        LogicalPlan::TableScan { table } => {
            let t = db.table(table)?;
            let rows = t
                .rows()
                .iter()
                .enumerate()
                .map(|(rid, r)| {
                    let mut set = TupleSet::new();
                    set.insert((table.clone(), rid as u32));
                    (r.clone(), set)
                })
                .collect();
            Ok((t.schema().clone(), rows))
        }
        LogicalPlan::Selection { predicate, input } => {
            let (schema, rows) = eval(db, input)?;
            let mut out = Vec::new();
            for (row, lin) in rows {
                if eval_predicate(predicate, &schema, &row)? {
                    out.push((row, lin));
                }
            }
            Ok((schema, out))
        }
        LogicalPlan::Projection { exprs, input } => {
            let (schema, rows) = eval(db, input)?;
            let out_schema = plan.schema(db)?;
            let mut out = Vec::with_capacity(rows.len());
            for (row, lin) in rows {
                let mut new_row = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    new_row.push(eval_expr(e, &schema, &row)?);
                }
                out.push((new_row, lin));
            }
            Ok((out_schema, out))
        }
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => {
            let (schema, rows) = eval(db, input)?;
            let out_schema = plan.schema(db)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| {
                    schema
                        .index_of(g)
                        .ok_or_else(|| ExecError::UnknownColumn(g.clone()))
                })
                .collect::<Result<_, _>>()?;
            let mut groups: HashMap<Vec<Value>, (Vec<AnnRow>, usize)> = HashMap::new();
            let mut order = Vec::new();
            for (row, lin) in rows {
                let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key.clone());
                    (Vec::new(), 0)
                });
                entry.0.push((row, lin));
            }
            let mut out = Vec::new();
            for key in order {
                let (members, _) = &groups[&key];
                let mut row = key.clone();
                let mut lineage = TupleSet::new();
                for (_, lin) in members {
                    lineage.extend(lin.iter().cloned());
                }
                for agg in aggregates {
                    let vals: Vec<Value> = members
                        .iter()
                        .map(|(r, _)| eval_expr(&agg.input, &schema, r))
                        .collect::<Result<_, _>>()?;
                    row.push(aggregate_value(agg.func, &vals));
                }
                out.push((row, lineage));
            }
            // SQL-style global aggregate over an empty input.
            if out.is_empty() && group_by.is_empty() {
                let mut row = Vec::new();
                for agg in aggregates {
                    row.push(match agg.func {
                        AggFunc::Count => Value::Int(0),
                        _ => Value::Null,
                    });
                }
                out.push((row, TupleSet::new()));
            }
            Ok((out_schema, out))
        }
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let (ls, lrows) = eval(db, left)?;
            let (rs, rrows) = eval(db, right)?;
            let li = ls
                .index_of(left_col)
                .ok_or_else(|| ExecError::UnknownColumn(left_col.clone()))?;
            let ri = rs
                .index_of(right_col)
                .ok_or_else(|| ExecError::UnknownColumn(right_col.clone()))?;
            let mut build: HashMap<Value, Vec<&AnnRow>> = HashMap::new();
            for ar in &rrows {
                if !ar.0[ri].is_null() {
                    build.entry(ar.0[ri].clone()).or_default().push(ar);
                }
            }
            let mut out = Vec::new();
            for (lrow, llin) in &lrows {
                if lrow[li].is_null() {
                    continue;
                }
                if let Some(matches) = build.get(&lrow[li]) {
                    for (rrow, rlin) in matches {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        let mut lin = llin.clone();
                        lin.extend(rlin.iter().cloned());
                        out.push((row, lin));
                    }
                }
            }
            Ok((ls.concat(&rs), out))
        }
        LogicalPlan::CrossProduct { left, right } => {
            let (ls, lrows) = eval(db, left)?;
            let (rs, rrows) = eval(db, right)?;
            let mut out = Vec::new();
            for (lrow, llin) in &lrows {
                for (rrow, rlin) in &rrows {
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    let mut lin = llin.clone();
                    lin.extend(rlin.iter().cloned());
                    out.push((row, lin));
                }
            }
            Ok((ls.concat(&rs), out))
        }
        LogicalPlan::Distinct { input } => {
            let (schema, rows) = eval(db, input)?;
            let mut by_row: Vec<AnnRow> = Vec::new();
            for (row, lin) in rows {
                if let Some(existing) = by_row.iter_mut().find(|(r, _)| *r == row) {
                    existing.1.extend(lin);
                } else {
                    by_row.push((row, lin));
                }
            }
            Ok((schema, by_row))
        }
        LogicalPlan::TopK {
            order_by,
            limit,
            input,
        } => {
            let (schema, mut rows) = eval(db, input)?;
            sort_rows(&schema, &mut rows, order_by)?;
            rows.truncate(*limit);
            Ok((schema, rows))
        }
        LogicalPlan::Union { left, right } => {
            let (ls, mut lrows) = eval(db, left)?;
            let (_, rrows) = eval(db, right)?;
            lrows.extend(rrows);
            Ok((ls, lrows))
        }
    }
}

fn sort_rows(schema: &Schema, rows: &mut [AnnRow], order_by: &[SortKey]) -> Result<(), ExecError> {
    let key_idx: Vec<(usize, bool)> = order_by
        .iter()
        .map(|k| {
            schema
                .index_of(&k.column)
                .map(|i| (i, k.descending))
                .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))
        })
        .collect::<Result<_, _>>()?;
    rows.sort_by(|(a, _), (b, _)| {
        for &(idx, desc) in &key_idx {
            let ord = a[idx].cmp(&b[idx]);
            let ord = if desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        a.cmp(b)
    });
    Ok(())
}

/// Evaluate one aggregation function over the values of a group.
pub fn aggregate_value(func: AggFunc, values: &[Value]) -> Value {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Min => non_null.iter().min().map(|v| (*v).clone()).unwrap_or(Value::Null),
        AggFunc::Max => non_null.iter().max().map(|v| (*v).clone()).unwrap_or(Value::Null),
        AggFunc::Sum => {
            if non_null.is_empty() {
                Value::Null
            } else if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(non_null.iter().filter_map(|v| v.as_i64()).sum())
            } else {
                Value::Float(non_null.iter().filter_map(|v| v.as_f64()).sum())
            }
        }
        AggFunc::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let sum: f64 = non_null.iter().filter_map(|v| v.as_f64()).sum();
                Value::Float(sum / non_null.len() as f64)
            }
        }
    }
}

/// Also expose a plain (un-annotated) reference check: does the query return
/// the same result over `db` and over a database where `table` is restricted
/// to `row_ids`? Used by tests to validate sufficiency (Def. 1).
pub fn is_sufficient_subset(
    db: &Database,
    plan: &LogicalPlan,
    table: &str,
    row_ids: &[u32],
    engine: &pbds_exec::Engine,
) -> Result<bool, ExecError> {
    let full = engine.execute(db, plan)?.relation;
    let t = db.table(table)?;
    let subset_rows: Vec<Row> = row_ids
        .iter()
        .map(|&rid| t.rows()[rid as usize].clone())
        .collect();
    let replacement = pbds_storage::Table::new(table, t.schema().clone(), subset_rows);
    let restricted_db = db.with_replaced_table(replacement);
    let restricted = engine.execute(&restricted_db, plan)?.relation;
    Ok(full.bag_eq(&restricted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, AggExpr};
    use pbds_exec::{Engine, EngineProfile};
    use pbds_storage::{DataType, TableBuilder};

    /// The running-example `cities` relation (Fig. 1b).
    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![Value::Int(popden), Value::from(city), Value::from(state)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    #[test]
    fn q2_lineage_is_the_two_california_rows() {
        // Ex. 3: the provenance of Q2 is {t2, t3} (row ids 1 and 2).
        let result = capture_lineage(&cities_db(), &q2()).unwrap();
        assert_eq!(result.relation.len(), 1);
        assert_eq!(result.rows_of("cities"), vec![1, 2]);
    }

    #[test]
    fn q1_selection_lineage_matches_matching_rows() {
        let plan = LogicalPlan::scan("cities").filter(col("state").eq(lit("CA")));
        let result = capture_lineage(&cities_db(), &plan).unwrap();
        assert_eq!(result.rows_of("cities"), vec![1, 2]);
        assert_eq!(result.per_row.len(), 2);
    }

    #[test]
    fn lineage_result_matches_plain_execution() {
        let engine = Engine::new(EngineProfile::Indexed);
        let db = cities_db();
        for plan in [
            q2(),
            LogicalPlan::scan("cities")
                .filter(col("popden").gt(lit(3000)))
                .aggregate(vec!["state"], vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")]),
            LogicalPlan::scan("cities").project(vec![(col("state"), "state")]).distinct(),
        ] {
            let plain = engine.execute(&db, &plan).unwrap().relation;
            let lin = capture_lineage(&db, &plan).unwrap().relation;
            assert!(plain.bag_eq(&lin), "mismatch for {}", plan.display_tree());
        }
    }

    #[test]
    fn lineage_is_sufficient_for_the_query() {
        // Def. 1: evaluating the query over its provenance gives the same
        // answer as over the full database.
        let db = cities_db();
        let engine = Engine::new(EngineProfile::Indexed);
        let plan = q2();
        let lineage = capture_lineage(&db, &plan).unwrap();
        let rows = lineage.rows_of("cities");
        assert!(is_sufficient_subset(&db, &plan, "cities", &rows, &engine).unwrap());
    }

    #[test]
    fn join_lineage_includes_both_sides() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities")
            .join(LogicalPlan::scan("regions"), "state", "st")
            .filter(col("region").eq(lit("West")));
        let result = capture_lineage(&db, &plan).unwrap();
        assert_eq!(result.rows_of("cities"), vec![1, 2]);
        assert_eq!(result.rows_of("regions"), vec![0]);
    }

    #[test]
    fn distinct_lineage_unions_duplicates() {
        let plan = LogicalPlan::scan("cities")
            .project(vec![(col("state"), "state")])
            .distinct()
            .filter(col("state").eq(lit("TX")));
        let result = capture_lineage(&cities_db(), &plan).unwrap();
        // Both Texas rows contribute to the single distinct output.
        assert_eq!(result.rows_of("cities"), vec![5, 6]);
    }

    #[test]
    fn aggregate_value_helper_matches_expectations() {
        let vals = vec![Value::Int(1), Value::Int(2), Value::Null, Value::Int(3)];
        assert_eq!(aggregate_value(AggFunc::Count, &vals), Value::Int(4));
        assert_eq!(aggregate_value(AggFunc::Sum, &vals), Value::Int(6));
        assert_eq!(aggregate_value(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(aggregate_value(AggFunc::Max, &vals), Value::Int(3));
        assert_eq!(aggregate_value(AggFunc::Avg, &vals), Value::Float(2.0));
    }
}
