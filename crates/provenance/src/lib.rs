//! # pbds-provenance
//!
//! Provenance substrate for the PBDS reproduction:
//!
//! * [`lineage`] — Lineage capture (the ground-truth provenance model of
//!   Sec. 3.2), used as a reference implementation and for accuracy checks;
//! * [`bitset`] — fragment bitsets and the merge strategies compared by the
//!   capture-optimization experiment (Fig. 12);
//! * [`sketch`] — provenance sketches (Sec. 4): fragments selected from a
//!   range or composite partition, selectivity, sketch instances `D_P`;
//! * [`capture`] — sketch capture by query instrumentation (Sec. 7, rules
//!   r0–r7), including the binary-search / delay / no-copy optimizations.

#![warn(missing_docs)]

pub mod bitset;
pub mod capture;
pub mod lineage;
pub mod sketch;

pub use bitset::{Annotation, FragmentBitset, MergeStrategy};
pub use capture::{
    capture_sketches, capture_sketches_with_profile, CaptureConfig, CaptureResult,
    FragmentAssigner, LookupMethod, SketchTagPolicy,
};
pub use lineage::{
    capture_lineage, is_sufficient_subset, LineageResult, LineageTagPolicy, TupleSet,
};
pub use sketch::{restrict_database, ProvenanceSketch, SketchSet};

// Concurrency audit: sketches are stored in the shared `SketchCatalog` and
// cloned across serving threads; capture results cross the capture-worker
// channel. Both must stay `Send + Sync` (sketches hold only `Arc`s to
// immutable partitions and plain bitsets).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProvenanceSketch>();
    assert_send_sync::<FragmentBitset>();
    assert_send_sync::<CaptureResult>();
};
