//! Provenance sketch capture by query instrumentation (Sec. 7, rules r0–r7).
//!
//! Capture runs the query once while propagating, for every intermediate row,
//! one sketch annotation per partitioned input relation:
//!
//! * `r0` — every row of a partitioned base table is annotated with the
//!   singleton fragment it belongs to ([`FragmentAssigner`]);
//! * `r1`/`r2`/`r5` — projection, selection and top-k simply keep the
//!   annotations of their input rows;
//! * `r3` — aggregation merges (bitwise-ORs) the annotations of each group;
//!   for `min`/`max` only the extremal rows are merged;
//! * `r4`/`r6` — cross product / join merge the annotations of the joined
//!   rows, union keeps them;
//! * `r7` — a final BITOR over the annotations of the result rows yields the
//!   provenance sketch.

use crate::bitset::{Annotation, FragmentBitset, MergeStrategy};
use crate::sketch::ProvenanceSketch;
use pbds_algebra::{AggFunc, LogicalPlan, SortKey};
use pbds_exec::{eval_expr, eval_predicate, ExecError};
use pbds_storage::{Database, Partition, PartitionRef, Relation, Row, Schema, Value};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How a tuple's fragment is computed when seeding annotations (Fig. 12a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMethod {
    /// Linear list of `CASE WHEN` range tests (`O(#fragments)` per row).
    CaseLinear,
    /// Binary search over the partition's ranges (`O(log #fragments)`).
    #[default]
    BinarySearch,
}

/// Assigns rows of a partitioned table to fragments.
#[derive(Debug, Clone)]
pub struct FragmentAssigner {
    partition: PartitionRef,
    lookup: LookupMethod,
}

impl FragmentAssigner {
    /// Create an assigner for a partition.
    pub fn new(partition: PartitionRef, lookup: LookupMethod) -> Self {
        FragmentAssigner { partition, lookup }
    }

    /// The partition.
    pub fn partition(&self) -> &PartitionRef {
        &self.partition
    }

    /// Fragment of a row (None for rows whose partitioning value is NULL).
    pub fn assign(&self, schema: &Schema, row: &Row) -> Option<usize> {
        match (self.partition.as_ref(), self.lookup) {
            (Partition::Range(p), LookupMethod::CaseLinear) => {
                let idx = schema.index_of(p.attr())?;
                p.fragment_of_linear(&row[idx])
            }
            _ => self.partition.fragment_of_row(schema, row),
        }
    }
}

/// Configuration of a capture run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureConfig {
    /// Fragment lookup method (Fig. 12a).
    pub lookup: LookupMethod,
    /// Annotation merge strategy (Fig. 12b).
    pub merge: MergeStrategy,
    /// Apply the min/max narrowing of rule r3 (only the extremal rows of a
    /// group contribute their fragments).
    pub minmax_narrowing: bool,
}

impl CaptureConfig {
    /// The configuration with all optimizations enabled (binary search,
    /// delay + no-copy merging, min/max narrowing). This is what the paper
    /// uses for all experiments after Sec. 9.2.
    pub fn optimized() -> Self {
        CaptureConfig {
            lookup: LookupMethod::BinarySearch,
            merge: MergeStrategy::DelayNoCopy,
            minmax_narrowing: true,
        }
    }

    /// The unoptimized baseline (CASE lookup, byte-wise copying BITOR).
    pub fn naive() -> Self {
        CaptureConfig {
            lookup: LookupMethod::CaseLinear,
            merge: MergeStrategy::BytewiseBitor,
            minmax_narrowing: false,
        }
    }
}

/// Result of capturing sketches for one query execution.
#[derive(Debug, Clone)]
pub struct CaptureResult {
    /// One sketch per requested partition (same order as the request).
    pub sketches: Vec<ProvenanceSketch>,
    /// The ordinary query result (capture computes it as a by-product).
    pub result: Relation,
    /// Wall-clock time of the instrumented execution.
    pub elapsed: Duration,
}

/// Capture provenance sketches for `plan` over `db` according to the given
/// partitions (rule `INSTR` of Fig. 6).
pub fn capture_sketches(
    db: &Database,
    plan: &LogicalPlan,
    partitions: &[PartitionRef],
    config: &CaptureConfig,
) -> Result<CaptureResult, ExecError> {
    let start = Instant::now();
    let assigners: Vec<FragmentAssigner> = partitions
        .iter()
        .map(|p| FragmentAssigner::new(p.clone(), config.lookup))
        .collect();
    let ctx = CaptureCtx {
        db,
        assigners: &assigners,
        config,
    };
    let (schema, rows) = ctx.eval(plan)?;

    // Rule r7: final BITOR over the annotations of the result rows.
    let mut final_bits: Vec<Annotation> = vec![Annotation::Empty; partitions.len()];
    let mut relation = Relation::empty(schema);
    for (row, anns) in rows {
        for (i, ann) in anns.iter().enumerate() {
            final_bits[i].merge(ann, partitions[i].num_fragments(), config.merge);
        }
        relation.push(row);
    }
    let sketches = partitions
        .iter()
        .zip(final_bits)
        .map(|(p, ann)| {
            let bits: FragmentBitset = ann.to_bitset(p.num_fragments());
            ProvenanceSketch::new(p.clone(), bits)
        })
        .collect();
    Ok(CaptureResult {
        sketches,
        result: relation,
        elapsed: start.elapsed(),
    })
}

type AnnRow = (Row, Vec<Annotation>);

struct CaptureCtx<'a> {
    db: &'a Database,
    assigners: &'a [FragmentAssigner],
    config: &'a CaptureConfig,
}

impl CaptureCtx<'_> {
    fn merge_anns(&self, into: &mut Vec<Annotation>, from: &[Annotation]) {
        for (i, ann) in from.iter().enumerate() {
            let nbits = self.assigners[i].partition().num_fragments();
            into[i].merge(ann, nbits, self.config.merge);
        }
    }

    fn eval(&self, plan: &LogicalPlan) -> Result<(Schema, Vec<AnnRow>), ExecError> {
        match plan {
            LogicalPlan::TableScan { table } => {
                // Rule r0: seed singleton annotations for partitioned tables.
                let t = self.db.table(table)?;
                let schema = t.schema().clone();
                let mut rows = Vec::with_capacity(t.len());
                for row in t.rows() {
                    let anns: Vec<Annotation> = self
                        .assigners
                        .iter()
                        .map(|a| {
                            if a.partition().table() == table {
                                match a.assign(&schema, row) {
                                    Some(f) => Annotation::Single(f as u32),
                                    None => Annotation::Empty,
                                }
                            } else {
                                Annotation::Empty
                            }
                        })
                        .collect();
                    rows.push((row.clone(), anns));
                }
                Ok((schema, rows))
            }
            LogicalPlan::Selection { predicate, input } => {
                // Rule r2.
                let (schema, rows) = self.eval(input)?;
                let mut out = Vec::new();
                for (row, anns) in rows {
                    if eval_predicate(predicate, &schema, &row)? {
                        out.push((row, anns));
                    }
                }
                Ok((schema, out))
            }
            LogicalPlan::Projection { exprs, input } => {
                // Rule r1.
                let (schema, rows) = self.eval(input)?;
                let out_schema = plan.schema(self.db)?;
                let mut out = Vec::with_capacity(rows.len());
                for (row, anns) in rows {
                    let mut new_row = Vec::with_capacity(exprs.len());
                    for (e, _) in exprs {
                        new_row.push(eval_expr(e, &schema, &row)?);
                    }
                    out.push((new_row, anns));
                }
                Ok((out_schema, out))
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => {
                // Rule r3.
                let (schema, rows) = self.eval(input)?;
                let out_schema = plan.schema(self.db)?;
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|g| {
                        schema
                            .index_of(g)
                            .ok_or_else(|| ExecError::UnknownColumn(g.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let mut groups: HashMap<Vec<Value>, Vec<AnnRow>> = HashMap::new();
                let mut order = Vec::new();
                for (row, anns) in rows {
                    let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| {
                            order.push(key.clone());
                            Vec::new()
                        })
                        .push((row, anns));
                }
                // The min/max narrowing of r3 applies when the aggregation
                // computes a single min or max.
                let narrow_minmax = self.config.minmax_narrowing
                    && aggregates.len() == 1
                    && matches!(aggregates[0].func, AggFunc::Min | AggFunc::Max);

                let mut out = Vec::new();
                for key in order {
                    let members = &groups[&key];
                    let mut row = key.clone();
                    let mut agg_values: Vec<Vec<Value>> = Vec::with_capacity(aggregates.len());
                    for agg in aggregates {
                        let vals: Vec<Value> = members
                            .iter()
                            .map(|(r, _)| eval_expr(&agg.input, &schema, r))
                            .collect::<Result<_, _>>()?;
                        agg_values.push(vals);
                    }
                    for (agg, vals) in aggregates.iter().zip(agg_values.iter()) {
                        row.push(crate::lineage::aggregate_value(agg.func, vals));
                    }
                    // Merge group annotations.
                    let mut merged: Vec<Annotation> =
                        vec![Annotation::Empty; self.assigners.len()];
                    if narrow_minmax {
                        let vals = &agg_values[0];
                        let target: Option<&Value> = match aggregates[0].func {
                            AggFunc::Min => vals.iter().filter(|v| !v.is_null()).min(),
                            _ => vals.iter().filter(|v| !v.is_null()).max(),
                        };
                        if let Some(target) = target {
                            // Only one witness tuple is needed.
                            if let Some(pos) = vals.iter().position(|v| v == target) {
                                self.merge_anns(&mut merged, &members[pos].1);
                            }
                        }
                    } else {
                        for (_, anns) in members {
                            self.merge_anns(&mut merged, anns);
                        }
                    }
                    out.push((row, merged));
                }
                if out.is_empty() && group_by.is_empty() {
                    let mut row = Vec::new();
                    for agg in aggregates {
                        row.push(match agg.func {
                            AggFunc::Count => Value::Int(0),
                            _ => Value::Null,
                        });
                    }
                    out.push((row, vec![Annotation::Empty; self.assigners.len()]));
                }
                Ok((out_schema, out))
            }
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let (ls, lrows) = self.eval(left)?;
                let (rs, rrows) = self.eval(right)?;
                let li = ls
                    .index_of(left_col)
                    .ok_or_else(|| ExecError::UnknownColumn(left_col.clone()))?;
                let ri = rs
                    .index_of(right_col)
                    .ok_or_else(|| ExecError::UnknownColumn(right_col.clone()))?;
                let mut build: HashMap<Value, Vec<&AnnRow>> = HashMap::new();
                for ar in &rrows {
                    if !ar.0[ri].is_null() {
                        build.entry(ar.0[ri].clone()).or_default().push(ar);
                    }
                }
                let mut out = Vec::new();
                for (lrow, lanns) in &lrows {
                    if lrow[li].is_null() {
                        continue;
                    }
                    if let Some(matches) = build.get(&lrow[li]) {
                        for (rrow, ranns) in matches {
                            let mut row = lrow.clone();
                            row.extend(rrow.iter().cloned());
                            let mut anns = lanns.clone();
                            self.merge_anns(&mut anns, ranns);
                            out.push((row, anns));
                        }
                    }
                }
                Ok((ls.concat(&rs), out))
            }
            LogicalPlan::CrossProduct { left, right } => {
                // Rule r4.
                let (ls, lrows) = self.eval(left)?;
                let (rs, rrows) = self.eval(right)?;
                let mut out = Vec::new();
                for (lrow, lanns) in &lrows {
                    for (rrow, ranns) in &rrows {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        let mut anns = lanns.clone();
                        self.merge_anns(&mut anns, ranns);
                        out.push((row, anns));
                    }
                }
                Ok((ls.concat(&rs), out))
            }
            LogicalPlan::Distinct { input } => {
                let (schema, rows) = self.eval(input)?;
                let mut out: Vec<AnnRow> = Vec::new();
                for (row, anns) in rows {
                    if let Some(existing) = out.iter_mut().find(|(r, _)| *r == row) {
                        self.merge_anns(&mut existing.1, &anns);
                    } else {
                        out.push((row, anns));
                    }
                }
                Ok((schema, out))
            }
            LogicalPlan::TopK {
                order_by,
                limit,
                input,
            } => {
                // Rule r5.
                let (schema, mut rows) = self.eval(input)?;
                sort_annotated(&schema, &mut rows, order_by)?;
                rows.truncate(*limit);
                Ok((schema, rows))
            }
            LogicalPlan::Union { left, right } => {
                // Rule r6.
                let (ls, mut lrows) = self.eval(left)?;
                let (_, rrows) = self.eval(right)?;
                lrows.extend(rrows);
                Ok((ls, lrows))
            }
        }
    }
}

fn sort_annotated(
    schema: &Schema,
    rows: &mut [AnnRow],
    order_by: &[SortKey],
) -> Result<(), ExecError> {
    let key_idx: Vec<(usize, bool)> = order_by
        .iter()
        .map(|k| {
            schema
                .index_of(&k.column)
                .map(|i| (i, k.descending))
                .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))
        })
        .collect::<Result<_, _>>()?;
    rows.sort_by(|(a, _), (b, _)| {
        for &(idx, desc) in &key_idx {
            let ord = a[idx].cmp(&b[idx]);
            let ord = if desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        a.cmp(b)
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::capture_lineage;
    use pbds_algebra::{col, lit, AggExpr};
    use pbds_storage::{DataType, RangePartition, TableBuilder};
    use std::sync::Arc;

    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![Value::Int(popden), Value::from(city), Value::from(state)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn state_partition() -> PartitionRef {
        Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
        )))
    }

    fn popden_partition() -> PartitionRef {
        // Fig. 1e bottom: g1 = [1000, 4000], g2 = [4001, 9000].
        Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "popden",
            vec![Value::Int(4000)],
        )))
    }

    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    #[test]
    fn q2_capture_matches_paper_example_3() {
        // The sketch of Q2 on the state partition is {f1}.
        let db = cities_db();
        let res =
            capture_sketches(&db, &q2(), &[state_partition()], &CaptureConfig::optimized()).unwrap();
        assert_eq!(res.sketches.len(), 1);
        assert_eq!(res.sketches[0].selected_fragments(), vec![0]);
        assert_eq!(res.sketches[0].bitset().to_string(), "1000");
        // Capture also produces the ordinary query answer (Fig. 7b/7d).
        assert_eq!(res.result.value(0, "state"), Some(&Value::from("CA")));
    }

    #[test]
    fn q2_capture_on_popden_partition_selects_g2() {
        // Ex. 5: the popden-partition sketch of Q2 is {g2} (fragment index 1).
        let db = cities_db();
        let res = capture_sketches(
            &db,
            &q2(),
            &[popden_partition()],
            &CaptureConfig::optimized(),
        )
        .unwrap();
        assert_eq!(res.sketches[0].selected_fragments(), vec![1]);
    }

    #[test]
    fn all_capture_configs_produce_the_same_sketch() {
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(2400)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .filter(col("cnt").gt(lit(1)));
        let configs = [
            CaptureConfig::naive(),
            CaptureConfig::optimized(),
            CaptureConfig {
                lookup: LookupMethod::BinarySearch,
                merge: MergeStrategy::Delay,
                minmax_narrowing: false,
            },
            CaptureConfig {
                lookup: LookupMethod::CaseLinear,
                merge: MergeStrategy::Bitor,
                minmax_narrowing: true,
            },
        ];
        let reference = capture_sketches(&db, &plan, &[state_partition()], &configs[0]).unwrap();
        for cfg in &configs[1..] {
            let res = capture_sketches(&db, &plan, &[state_partition()], cfg).unwrap();
            assert_eq!(
                res.sketches[0].selected_fragments(),
                reference.sketches[0].selected_fragments(),
                "config {cfg:?}"
            );
        }
    }

    #[test]
    fn captured_sketch_covers_lineage() {
        // Every fragment containing a provenance row must be in the sketch.
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Sum, col("popden"), "total")],
            )
            .filter(col("total").gt(lit(8000)));
        let part = state_partition();
        let res = capture_sketches(&db, &plan, &[part.clone()], &CaptureConfig::optimized()).unwrap();
        let lineage = capture_lineage(&db, &plan).unwrap();
        let table = db.table("cities").unwrap();
        let accurate = ProvenanceSketch::from_rows(
            part,
            table.schema(),
            lineage
                .rows_of("cities")
                .into_iter()
                .map(|rid| table.rows()[rid as usize].clone()),
        );
        assert!(res.sketches[0].is_superset_of(&accurate));
    }

    #[test]
    fn minmax_narrowing_keeps_only_the_witness_fragment() {
        let db = cities_db();
        // max(popden) per state, then keep the global max states via HAVING.
        let plan = LogicalPlan::scan("cities").aggregate(
            vec![],
            vec![AggExpr::new(AggFunc::Max, col("popden"), "m")],
        );
        let narrowed = capture_sketches(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig {
                minmax_narrowing: true,
                ..CaptureConfig::optimized()
            },
        )
        .unwrap();
        let full = capture_sketches(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig {
                minmax_narrowing: false,
                ..CaptureConfig::optimized()
            },
        )
        .unwrap();
        // The max row (New York, 7000) is in fragment f3 (index 2).
        assert_eq!(narrowed.sketches[0].selected_fragments(), vec![2]);
        // Without narrowing every fragment that holds rows is selected
        // (f1 = AK/CA, f3 = NY, f4 = TX; no state falls into f2).
        assert_eq!(full.sketches[0].num_selected(), 3);
    }

    #[test]
    fn capture_for_multiple_partitions_at_once() {
        let db = cities_db();
        let res = capture_sketches(
            &db,
            &q2(),
            &[state_partition(), popden_partition()],
            &CaptureConfig::optimized(),
        )
        .unwrap();
        assert_eq!(res.sketches.len(), 2);
        assert_eq!(res.sketches[0].selected_fragments(), vec![0]);
        assert_eq!(res.sketches[1].selected_fragments(), vec![1]);
    }

    #[test]
    fn capture_over_join_merges_annotations_of_both_sides() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities")
            .join(LogicalPlan::scan("regions"), "state", "st")
            .aggregate(
                vec!["region"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1);
        let res = capture_sketches(&db, &plan, &[state_partition()], &CaptureConfig::optimized())
            .unwrap();
        // The winning region is West (CA rows, fragment f1).
        assert_eq!(res.sketches[0].selected_fragments(), vec![0]);
    }

    #[test]
    fn fragment_assigner_case_and_binary_agree() {
        let db = cities_db();
        let table = db.table("cities").unwrap();
        let part = state_partition();
        let a1 = FragmentAssigner::new(part.clone(), LookupMethod::CaseLinear);
        let a2 = FragmentAssigner::new(part, LookupMethod::BinarySearch);
        for row in table.rows() {
            assert_eq!(a1.assign(table.schema(), row), a2.assign(table.schema(), row));
        }
    }
}
