//! Provenance sketch capture by query instrumentation (Sec. 7, rules r0–r7).
//!
//! Capture runs the query once through the **same physical operator
//! pipeline as plain execution** (`pbds-exec`'s [`pbds_exec::physical`]),
//! with a [`TagPolicy`] that makes every row carry one sketch annotation per
//! partitioned input relation:
//!
//! * `r0` — every row of a partitioned base table is annotated with the
//!   singleton fragment it belongs to ([`FragmentAssigner`], the policy's
//!   `seed_tag`);
//! * `r1`/`r2`/`r5` — projection, selection and top-k simply keep the
//!   annotations of their input rows (tags ride along in the batch);
//! * `r3` — aggregation merges (bitwise-ORs) the annotations of each group;
//!   for `min`/`max` only the extremal rows are merged (the pipeline's
//!   min/max narrowing, enabled by the policy);
//! * `r4`/`r6` — cross product / join merge the annotations of the joined
//!   rows, union keeps them;
//! * `r7` — a final BITOR over the annotations of the result rows yields the
//!   provenance sketch ([`capture_sketches`]'s assembly step, the only part
//!   left in this module).
//!
//! There is deliberately **no plan interpreter here** any more: capture is a
//! pipeline *mode*, so execution and capture cannot drift apart.

use crate::bitset::{Annotation, FragmentBitset, MergeStrategy};
use crate::sketch::ProvenanceSketch;
use pbds_algebra::LogicalPlan;
use pbds_exec::{execute_logical, EngineProfile, ExecError, ExecStats, TagPolicy};
use pbds_storage::{Database, Partition, PartitionRef, Relation, Row, Schema};
use pbds_telemetry::clock;
use std::time::Duration;

/// How a tuple's fragment is computed when seeding annotations (Fig. 12a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMethod {
    /// Linear list of `CASE WHEN` range tests (`O(#fragments)` per row).
    CaseLinear,
    /// Binary search over the partition's ranges (`O(log #fragments)`).
    #[default]
    BinarySearch,
}

/// Assigns rows of a partitioned table to fragments.
///
/// The partitioning attributes are resolved against the table schema **once**
/// on first use and cached; the per-row hot path (`seed_tag` calls this for
/// every scanned row of the partitioned table) is then pure index access —
/// the same bind-once discipline the execution pipeline's compiled
/// predicates follow.
#[derive(Debug, Clone)]
pub struct FragmentAssigner {
    partition: PartitionRef,
    lookup: LookupMethod,
    /// Resolved attribute indexes (`None` inside = some attribute missing
    /// from the schema). Seeded lazily because the schema only becomes
    /// available per row batch.
    attr_idx: std::sync::OnceLock<Option<Vec<usize>>>,
}

impl FragmentAssigner {
    /// Create an assigner for a partition.
    pub fn new(partition: PartitionRef, lookup: LookupMethod) -> Self {
        FragmentAssigner {
            partition,
            lookup,
            attr_idx: std::sync::OnceLock::new(),
        }
    }

    /// The partition.
    pub fn partition(&self) -> &PartitionRef {
        &self.partition
    }

    /// Fragment of a row (None for rows whose partitioning value is NULL).
    pub fn assign(&self, schema: &Schema, row: &Row) -> Option<usize> {
        let cached = self
            .attr_idx
            .get_or_init(|| self.partition.resolve_attrs(schema));
        match cached {
            // The cached binding is only trusted after re-checking it against
            // *this* schema (a fixed-position name comparison per attribute —
            // cheap next to the per-row `index_of` scans it replaces). A
            // caller reusing one assigner across schemas with different
            // column orders falls through to per-call resolution.
            Some(idxs) if self.cache_matches(idxs, schema) => {
                match (self.partition.as_ref(), self.lookup) {
                    (Partition::Range(p), LookupMethod::CaseLinear) => {
                        p.fragment_of_linear(&row[*idxs.first()?])
                    }
                    _ => self.partition.fragment_of_row_at(idxs, row),
                }
            }
            _ => match (self.partition.as_ref(), self.lookup) {
                (Partition::Range(p), LookupMethod::CaseLinear) => {
                    let idx = schema.index_of(p.attr())?;
                    p.fragment_of_linear(&row[idx])
                }
                _ => self.partition.fragment_of_row(schema, row),
            },
        }
    }

    /// True when the cached attribute indexes still name the partitioning
    /// attributes under `schema`.
    fn cache_matches(&self, idxs: &[usize], schema: &Schema) -> bool {
        match self.partition.as_ref() {
            Partition::Range(p) => {
                idxs.len() == 1
                    && schema
                        .column_at(idxs[0])
                        .is_some_and(|c| c.name == p.attr())
            }
            Partition::Composite(p) => {
                idxs.len() == p.attrs().len()
                    && idxs
                        .iter()
                        .zip(p.attrs())
                        .all(|(&i, a)| schema.column_at(i).is_some_and(|c| c.name == *a))
            }
        }
    }
}

/// Configuration of a capture run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureConfig {
    /// Fragment lookup method (Fig. 12a).
    pub lookup: LookupMethod,
    /// Annotation merge strategy (Fig. 12b).
    pub merge: MergeStrategy,
    /// Apply the min/max narrowing of rule r3 (only the extremal rows of a
    /// group contribute their fragments).
    pub minmax_narrowing: bool,
}

impl CaptureConfig {
    /// The configuration with all optimizations enabled (binary search,
    /// delay + no-copy merging, min/max narrowing). This is what the paper
    /// uses for all experiments after Sec. 9.2.
    pub fn optimized() -> Self {
        CaptureConfig {
            lookup: LookupMethod::BinarySearch,
            merge: MergeStrategy::DelayNoCopy,
            minmax_narrowing: true,
        }
    }

    /// The unoptimized baseline (CASE lookup, byte-wise copying BITOR).
    pub fn naive() -> Self {
        CaptureConfig {
            lookup: LookupMethod::CaseLinear,
            merge: MergeStrategy::BytewiseBitor,
            minmax_narrowing: false,
        }
    }
}

/// Result of capturing sketches for one query execution.
#[derive(Debug, Clone)]
pub struct CaptureResult {
    /// One sketch per requested partition (same order as the request).
    pub sketches: Vec<ProvenanceSketch>,
    /// The ordinary query result (capture computes it as a by-product).
    pub result: Relation,
    /// Wall-clock time of the instrumented execution.
    pub elapsed: Duration,
}

/// The pipeline tag policy that turns execution into sketch capture: tags
/// are one [`Annotation`] per requested partition.
#[derive(Debug)]
pub struct SketchTagPolicy<'a> {
    assigners: &'a [FragmentAssigner],
    config: &'a CaptureConfig,
}

impl<'a> SketchTagPolicy<'a> {
    /// Create the policy for a set of fragment assigners.
    pub fn new(assigners: &'a [FragmentAssigner], config: &'a CaptureConfig) -> Self {
        SketchTagPolicy { assigners, config }
    }
}

impl TagPolicy for SketchTagPolicy<'_> {
    type Tag = Vec<Annotation>;

    fn seed_tag(&self, table: &str, schema: &Schema, row: &Row, _row_id: u32) -> Vec<Annotation> {
        // Rule r0: singleton annotations for rows of partitioned tables.
        self.assigners
            .iter()
            .map(|a| {
                if a.partition().table() == table {
                    match a.assign(schema, row) {
                        Some(f) => Annotation::Single(f as u32),
                        None => Annotation::Empty,
                    }
                } else {
                    Annotation::Empty
                }
            })
            .collect()
    }

    fn empty_tag(&self) -> Vec<Annotation> {
        vec![Annotation::Empty; self.assigners.len()]
    }

    fn merge_tags(&self, into: &mut Vec<Annotation>, from: &Vec<Annotation>) {
        for (i, ann) in from.iter().enumerate() {
            let nbits = self.assigners[i].partition().num_fragments();
            into[i].merge(ann, nbits, self.config.merge);
        }
    }

    fn minmax_narrowing(&self) -> bool {
        self.config.minmax_narrowing
    }
}

/// Capture provenance sketches for `plan` over `db` according to the given
/// partitions (rule `INSTR` of Fig. 6), using the default indexed engine
/// profile.
pub fn capture_sketches(
    db: &Database,
    plan: &LogicalPlan,
    partitions: &[PartitionRef],
    config: &CaptureConfig,
) -> Result<CaptureResult, ExecError> {
    capture_sketches_with_profile(db, plan, partitions, config, EngineProfile::default())
}

/// Capture provenance sketches using an explicit engine profile: the
/// instrumented run goes through the same lowering and physical operators as
/// plain execution on that profile.
pub fn capture_sketches_with_profile(
    db: &Database,
    plan: &LogicalPlan,
    partitions: &[PartitionRef],
    config: &CaptureConfig,
    profile: EngineProfile,
) -> Result<CaptureResult, ExecError> {
    let start = clock::Stopwatch::start();
    let assigners: Vec<FragmentAssigner> = partitions
        .iter()
        .map(|p| FragmentAssigner::new(p.clone(), config.lookup))
        .collect();
    let policy = SketchTagPolicy::new(&assigners, config);
    let mut stats = ExecStats::default();
    let (relation, tags) = execute_logical(db, plan, profile, &policy, &mut stats)?;

    // Rule r7: final BITOR over the annotations of the result rows.
    let mut final_bits: Vec<Annotation> = vec![Annotation::Empty; partitions.len()];
    for anns in &tags {
        for (i, ann) in anns.iter().enumerate() {
            final_bits[i].merge(ann, partitions[i].num_fragments(), config.merge);
        }
    }
    let sketches = partitions
        .iter()
        .zip(final_bits)
        .map(|(p, ann)| {
            let bits: FragmentBitset = ann.to_bitset(p.num_fragments());
            ProvenanceSketch::new(p.clone(), bits)
        })
        .collect();
    Ok(CaptureResult {
        sketches,
        result: relation,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::capture_lineage;
    use pbds_algebra::{col, lit, AggExpr, AggFunc, SortKey};
    use pbds_storage::{DataType, RangePartition, TableBuilder, Value};
    use std::sync::Arc;

    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn state_partition() -> PartitionRef {
        Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
        )))
    }

    fn popden_partition() -> PartitionRef {
        // Fig. 1e bottom: g1 = [1000, 4000], g2 = [4001, 9000].
        Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "popden",
            vec![Value::Int(4000)],
        )))
    }

    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    #[test]
    fn q2_capture_matches_paper_example_3() {
        // The sketch of Q2 on the state partition is {f1}.
        let db = cities_db();
        let res = capture_sketches(
            &db,
            &q2(),
            &[state_partition()],
            &CaptureConfig::optimized(),
        )
        .unwrap();
        assert_eq!(res.sketches.len(), 1);
        assert_eq!(res.sketches[0].selected_fragments(), vec![0]);
        assert_eq!(res.sketches[0].bitset().to_string(), "1000");
        // Capture also produces the ordinary query answer (Fig. 7b/7d).
        assert_eq!(res.result.value(0, "state"), Some(&Value::from("CA")));
    }

    #[test]
    fn q2_capture_on_popden_partition_selects_g2() {
        // Ex. 5: the popden-partition sketch of Q2 is {g2} (fragment index 1).
        let db = cities_db();
        let res = capture_sketches(
            &db,
            &q2(),
            &[popden_partition()],
            &CaptureConfig::optimized(),
        )
        .unwrap();
        assert_eq!(res.sketches[0].selected_fragments(), vec![1]);
    }

    #[test]
    fn all_capture_configs_produce_the_same_sketch() {
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(2400)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .filter(col("cnt").gt(lit(1)));
        let configs = [
            CaptureConfig::naive(),
            CaptureConfig::optimized(),
            CaptureConfig {
                lookup: LookupMethod::BinarySearch,
                merge: MergeStrategy::Delay,
                minmax_narrowing: false,
            },
            CaptureConfig {
                lookup: LookupMethod::CaseLinear,
                merge: MergeStrategy::Bitor,
                minmax_narrowing: true,
            },
        ];
        let reference = capture_sketches(&db, &plan, &[state_partition()], &configs[0]).unwrap();
        for cfg in &configs[1..] {
            let res = capture_sketches(&db, &plan, &[state_partition()], cfg).unwrap();
            assert_eq!(
                res.sketches[0].selected_fragments(),
                reference.sketches[0].selected_fragments(),
                "config {cfg:?}"
            );
        }
    }

    #[test]
    fn captured_sketch_covers_lineage() {
        // Every fragment containing a provenance row must be in the sketch.
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Sum, col("popden"), "total")],
            )
            .filter(col("total").gt(lit(8000)));
        let part = state_partition();
        let res = capture_sketches(
            &db,
            &plan,
            std::slice::from_ref(&part),
            &CaptureConfig::optimized(),
        )
        .unwrap();
        let lineage = capture_lineage(&db, &plan).unwrap();
        let table = db.table("cities").unwrap();
        let accurate = ProvenanceSketch::from_rows(
            part,
            table.schema(),
            lineage
                .rows_of("cities")
                .into_iter()
                .map(|rid| table.rows()[rid as usize].clone()),
        );
        assert!(res.sketches[0].is_superset_of(&accurate));
    }

    #[test]
    fn minmax_narrowing_keeps_all_null_groups_in_the_sketch() {
        // A group whose aggregate inputs are all NULL has no extremal
        // witness, but it still produces a `(key, NULL)` output row — its
        // provenance must not vanish from the sketch, or re-executing over
        // the sketch instance would drop the row.
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push(vec![Value::Int(1), Value::Null]);
        b.push(vec![Value::Int(1), Value::Null]);
        b.push(vec![Value::Int(2), Value::Int(10)]);
        b.push(vec![Value::Int(2), Value::Int(20)]);
        let mut db = Database::new();
        db.add_table(b.build());
        let part: PartitionRef = Arc::new(Partition::Range(RangePartition::from_uppers(
            "t",
            "g",
            vec![Value::Int(1)],
        )));
        let plan = LogicalPlan::scan("t").aggregate(
            vec!["g"],
            vec![AggExpr::new(pbds_algebra::AggFunc::Min, col("v"), "m")],
        );
        let res = capture_sketches(
            &db,
            &plan,
            std::slice::from_ref(&part),
            &CaptureConfig::optimized(),
        )
        .unwrap();
        // Both fragments: group 1 (all NULL) via its fallback member, group
        // 2 via the min witness.
        assert_eq!(res.sketches[0].selected_fragments(), vec![0, 1]);
        // Re-executing over the sketch instance reproduces the full answer,
        // including the (1, NULL) row.
        let restricted = crate::sketch::restrict_database(&db, &res.sketches).unwrap();
        let engine = pbds_exec::Engine::new(EngineProfile::Indexed);
        let replay = engine.execute(&restricted, &plan).unwrap().relation;
        assert!(replay.bag_eq(&res.result));
        assert_eq!(res.result.len(), 2);
    }

    #[test]
    fn minmax_narrowing_keeps_only_the_witness_fragment() {
        let db = cities_db();
        // max(popden) per state, then keep the global max states via HAVING.
        let plan = LogicalPlan::scan("cities")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Max, col("popden"), "m")]);
        let narrowed = capture_sketches(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig {
                minmax_narrowing: true,
                ..CaptureConfig::optimized()
            },
        )
        .unwrap();
        let full = capture_sketches(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig {
                minmax_narrowing: false,
                ..CaptureConfig::optimized()
            },
        )
        .unwrap();
        // The max row (New York, 7000) is in fragment f3 (index 2).
        assert_eq!(narrowed.sketches[0].selected_fragments(), vec![2]);
        // Without narrowing every fragment that holds rows is selected
        // (f1 = AK/CA, f3 = NY, f4 = TX; no state falls into f2).
        assert_eq!(full.sketches[0].num_selected(), 3);
    }

    #[test]
    fn capture_for_multiple_partitions_at_once() {
        let db = cities_db();
        let res = capture_sketches(
            &db,
            &q2(),
            &[state_partition(), popden_partition()],
            &CaptureConfig::optimized(),
        )
        .unwrap();
        assert_eq!(res.sketches.len(), 2);
        assert_eq!(res.sketches[0].selected_fragments(), vec![0]);
        assert_eq!(res.sketches[1].selected_fragments(), vec![1]);
    }

    #[test]
    fn capture_over_join_merges_annotations_of_both_sides() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities")
            .join(LogicalPlan::scan("regions"), "state", "st")
            .aggregate(
                vec!["region"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1);
        let res = capture_sketches(
            &db,
            &plan,
            &[state_partition()],
            &CaptureConfig::optimized(),
        )
        .unwrap();
        // The winning region is West (CA rows, fragment f1).
        assert_eq!(res.sketches[0].selected_fragments(), vec![0]);
    }

    #[test]
    fn fragment_assigner_survives_schema_reordering() {
        // One assigner used across two schemas that place the partitioning
        // attribute at different positions: the index cache must not leak
        // the first schema's binding into the second.
        let part = state_partition();
        let a = FragmentAssigner::new(part, LookupMethod::BinarySearch);
        let schema1 = Schema::from_pairs(&[
            ("popden", pbds_storage::DataType::Int),
            ("city", pbds_storage::DataType::Str),
            ("state", pbds_storage::DataType::Str),
        ]);
        let row1 = vec![Value::Int(1), Value::from("San Diego"), Value::from("CA")];
        assert_eq!(a.assign(&schema1, &row1), Some(0)); // CA → f1, seeds the cache
        let schema2 = Schema::from_pairs(&[
            ("state", pbds_storage::DataType::Str),
            ("popden", pbds_storage::DataType::Int),
        ]);
        let row2 = vec![Value::from("NY"), Value::Int(2)];
        assert_eq!(a.assign(&schema2, &row2), Some(2)); // NY → f3, not row2[2] (OOB)
                                                        // And a schema missing the attribute yields None, not a stale index.
        let schema3 = Schema::from_pairs(&[("x", pbds_storage::DataType::Int)]);
        assert_eq!(a.assign(&schema3, &vec![Value::Int(9)]), None);
    }

    #[test]
    fn fragment_assigner_case_and_binary_agree() {
        let db = cities_db();
        let table = db.table("cities").unwrap();
        let part = state_partition();
        let a1 = FragmentAssigner::new(part.clone(), LookupMethod::CaseLinear);
        let a2 = FragmentAssigner::new(part, LookupMethod::BinarySearch);
        for row in table.rows() {
            assert_eq!(
                a1.assign(table.schema(), row),
                a2.assign(table.schema(), row)
            );
        }
    }
}
