//! Fig. 11 / Fig. 9 — TPC-H-like capture and use: plain execution vs
//! sketch-instrumented execution vs capture, for representative queries on
//! both engine profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_bench::{datasets, harness};
use pbds_core::{EngineProfile, Pbds, UsePredicateStyle};
use pbds_provenance::CaptureConfig;
use pbds_workloads::tpch;
use std::time::Duration;

fn bench_tpch(c: &mut Criterion) {
    let db = datasets::tpch(datasets::TpchScale::Small);
    for (profile, label) in [
        (EngineProfile::Indexed, "indexed"),
        (EngineProfile::ColumnarScan, "columnar"),
    ] {
        let pbds = Pbds::with_profile(db.clone(), profile);
        let mut group = c.benchmark_group(format!("fig11_tpch_{label}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        for name in ["Q3", "Q10", "Q15", "Q18"] {
            let query = tpch::queries()
                .into_iter()
                .find(|q| q.name == name)
                .unwrap();
            let plan = query.default_plan();
            let partition = harness::build_partition(&pbds, &query.sketch, 400).unwrap();
            let captured = pbds
                .capture(&plan, std::slice::from_ref(&partition))
                .unwrap();
            group.bench_with_input(BenchmarkId::new("no_ps", name), &plan, |b, plan| {
                b.iter(|| pbds.execute(plan).unwrap().relation.len())
            });
            group.bench_with_input(BenchmarkId::new("ps_use", name), &plan, |b, plan| {
                b.iter(|| {
                    pbds.execute_with_sketches_styled(
                        plan,
                        &captured.sketches,
                        UsePredicateStyle::BinarySearch,
                    )
                    .unwrap()
                    .relation
                    .len()
                })
            });
            group.bench_with_input(BenchmarkId::new("ps_capture", name), &plan, |b, plan| {
                b.iter(|| {
                    pbds.capture_with_config(
                        plan,
                        std::slice::from_ref(&partition),
                        &CaptureConfig::optimized(),
                    )
                    .unwrap()
                    .sketches[0]
                        .num_selected()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_tpch);
criterion_main!(benches);
