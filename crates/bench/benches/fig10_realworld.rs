//! Fig. 10 — real-world-style workloads (Crimes, Movies, Stack Overflow):
//! plain vs sketch-instrumented execution for each query of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_bench::{datasets, harness};
use pbds_core::Pbds;
use pbds_workloads::{crimes, movies, sof, BenchQuery};
use std::time::Duration;

fn bench_set(
    c: &mut Criterion,
    label: &str,
    pbds: &Pbds,
    queries: &[BenchQuery],
    fragments: usize,
) {
    let mut group = c.benchmark_group(format!("fig10_{label}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for query in queries {
        let plan = query.default_plan();
        let partition = harness::build_partition(pbds, &query.sketch, fragments).unwrap();
        let captured = pbds.capture(&plan, &[partition]).unwrap();
        group.bench_with_input(BenchmarkId::new("no_ps", &query.name), &plan, |b, plan| {
            b.iter(|| pbds.execute(plan).unwrap().relation.len())
        });
        group.bench_with_input(BenchmarkId::new("ps_use", &query.name), &plan, |b, plan| {
            b.iter(|| {
                pbds.execute_with_sketches(plan, &captured.sketches)
                    .unwrap()
                    .relation
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_realworld(c: &mut Criterion) {
    bench_set(
        c,
        "crimes",
        &Pbds::new(datasets::crimes_small_db()),
        &crimes::queries(),
        1,
    );
    bench_set(
        c,
        "movies",
        &Pbds::new(pbds_workloads::movies::generate(&movies::MoviesConfig {
            movies: 2_000,
            ratings: 60_000,
            ..Default::default()
        })),
        &movies::queries(),
        1_000,
    );
    bench_set(
        c,
        "sof",
        &Pbds::new(datasets::sof_small_db()),
        &sof::queries(),
        1_000,
    );
}

criterion_group!(benches, bench_realworld);
criterion_main!(benches);
