//! Fig. 12 — capture optimizations: singleton-annotation creation
//! (CASE list vs binary search) and sketch merging (byte-wise BITOR vs
//! delay vs delay + no-copy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_bench::datasets;
use pbds_provenance::{Annotation, MergeStrategy};
use pbds_storage::RangePartition;
use std::time::Duration;

fn bench_fig12a_singleton_creation(c: &mut Criterion) {
    let db = datasets::crimes_small_db();
    let values = db.table("crimes").unwrap().column_values("id").unwrap();
    let mut group = c.benchmark_group("fig12a_singleton_creation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for &fragments in &[64usize, 1_000, 10_000] {
        let partition = RangePartition::equi_depth("crimes", "id", &values, fragments).unwrap();
        group.bench_with_input(
            BenchmarkId::new("case_linear", fragments),
            &partition,
            |b, p| {
                b.iter(|| {
                    values
                        .iter()
                        .filter_map(|v| p.fragment_of_linear(v))
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("binary_search", fragments),
            &partition,
            |b, p| {
                b.iter(|| {
                    values
                        .iter()
                        .filter_map(|v| p.fragment_of(v))
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

fn bench_fig12b_sketch_merging(c: &mut Criterion) {
    let db = datasets::movies_db();
    let values = db
        .table("ratings")
        .unwrap()
        .column_values("movieid")
        .unwrap();
    let fragments = 4_000usize;
    let partition = RangePartition::equi_depth("ratings", "movieid", &values, fragments).unwrap();
    let nbits = partition.num_fragments();
    let singles: Vec<u32> = values
        .iter()
        .filter_map(|v| partition.fragment_of(v))
        .map(|f| f as u32)
        .collect();
    let mut group = c.benchmark_group("fig12b_sketch_merging");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for (name, strategy) in [
        ("bytewise_bitor", MergeStrategy::BytewiseBitor),
        ("delay", MergeStrategy::Delay),
        ("delay_no_copy", MergeStrategy::DelayNoCopy),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = Annotation::Empty;
                for &f in &singles {
                    acc.merge(&Annotation::Single(f), nbits, strategy);
                }
                acc.to_bitset(nbits).count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig12a_singleton_creation,
    bench_fig12b_sketch_merging
);
criterion_main!(benches);
