//! Sec. 9.5 — overhead of the static safety check (Sec. 5) and the sketch
//! reuse check (Sec. 6). The paper reports ~20 ms per check using Z3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_bench::datasets;
use pbds_core::{ReuseChecker, SafetyChecker};
use pbds_storage::Value;
use pbds_workloads::{sof, tpch};
use std::time::Duration;

fn bench_checks(c: &mut Criterion) {
    let db = datasets::sof_small_db();
    let tpch_db = datasets::tpch(datasets::TpchScale::Small);
    let mut group = c.benchmark_group("fig15_check_overhead");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    // Safety checks for the SOF end-to-end templates and two TPC-H queries.
    for template in sof::end_to_end_templates() {
        let checker = SafetyChecker::new(&db);
        let attrs = checker.candidate_attributes(template.plan());
        group.bench_with_input(
            BenchmarkId::new("safety", template.name()),
            template.plan(),
            |b, plan| b.iter(|| checker.check(plan, &attrs).safe),
        );
    }
    for name in ["Q3", "Q18"] {
        let query = tpch::queries()
            .into_iter()
            .find(|q| q.name == name)
            .unwrap();
        let checker = SafetyChecker::new(&tpch_db);
        let attrs = checker.candidate_attributes(query.template.plan());
        group.bench_with_input(
            BenchmarkId::new("safety_tpch", name),
            query.template.plan(),
            |b, plan| b.iter(|| checker.check(plan, &attrs).safe),
        );
    }

    // Reuse checks.
    for template in sof::end_to_end_templates() {
        let checker = ReuseChecker::new(&db);
        group.bench_with_input(
            BenchmarkId::new("reuse", template.name()),
            &template,
            |b, t| {
                b.iter(|| {
                    checker
                        .can_reuse(t, &[Value::Int(30)], &[Value::Int(45)])
                        .reusable
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checks);
criterion_main!(benches);
