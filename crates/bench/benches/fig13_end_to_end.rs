//! Fig. 13 — end-to-end self-tuning workloads: total time to run a sequence
//! of parameterized query instances under No-PS, eager and adaptive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_algebra::QueryTemplate;
use pbds_bench::datasets;
use pbds_core::{EngineProfile, SelfTuningExecutor, Strategy};
use pbds_storage::Value;
use pbds_workloads::{normal, sof};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn workload(n: usize) -> Vec<(QueryTemplate, Vec<Value>)> {
    let templates = sof::end_to_end_templates();
    let mut rng = StdRng::seed_from_u64(31);
    (0..n)
        .map(|_| {
            let t = templates[rng.gen_range(0..templates.len())].clone();
            (
                t,
                vec![Value::Int(normal(&mut rng, 30.0, 4.0).max(1.0) as i64)],
            )
        })
        .collect()
}

fn bench_end_to_end(c: &mut Criterion) {
    let db = datasets::sof_small_db();
    let wl = workload(25);
    let mut group = c.benchmark_group("fig13_end_to_end_sof");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (label, strategy) in [
        ("no_ps", Strategy::NoPbds),
        (
            "eager",
            Strategy::Eager {
                selectivity_threshold: 0.75,
            },
        ),
        (
            "adaptive",
            Strategy::Adaptive {
                selectivity_threshold: 0.75,
                evidence_threshold: 2,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(label, wl.len()), &wl, |b, wl| {
            b.iter(|| {
                let mut exec = SelfTuningExecutor::new(&db, EngineProfile::Indexed, strategy, 500);
                exec.run_workload(wl).unwrap().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
