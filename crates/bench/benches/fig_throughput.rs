//! Throughput of the concurrent sketch-serving middleware: queries/sec of a
//! Zipf-parameterized Stack-Overflow stream at 1/2/4/8 session threads, with
//! the shared sketch catalog (eager self-tuning) and without it (the paper's
//! No-PS baseline).
//!
//! Beyond wall-clock throughput, the bench prints and *checks* the
//! machine-independent counter the paper's data skipping is about: the total
//! rows scanned per pass. A warmed catalog must scan fewer rows than No-PS
//! at every thread count — if it ever does not, the serving stack regressed
//! and this bench panics.
//!
//! Per-query latency percentiles (p50/p95/p99) come from the server's
//! `pbds_query_seconds` histogram — the same log-linear histogram the
//! metrics exposition exports — and land in `BENCH_throughput.json` on full
//! (non-`--quick`) runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_bench::datasets;
use pbds_bench::harness::TablePrinter;
use pbds_core::{PbdsServer, ServerConfig, Strategy};
use pbds_telemetry::clock;
use pbds_workloads::{sof_pools, zipf_stream, StreamSpec};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_throughput(c: &mut Criterion) {
    let db = Arc::new(datasets::sof_small_db());
    let stream = zipf_stream(
        &sof_pools(12, 5),
        &StreamSpec {
            queries: 60,
            skew: 1.1,
            seed: 17,
        },
    );

    let mut group = c.benchmark_group("fig_throughput_sof");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));

    let mut table = TablePrinter::new(&[
        "threads",
        "mode",
        "q/s",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "rows scanned",
        "hits",
        "stored",
    ]);
    let mut measurements: Vec<Measurement> = Vec::new();

    for threads in THREAD_COUNTS {
        for (label, strategy) in [
            ("no_ps", Strategy::NoPbds),
            (
                "catalog",
                Strategy::Eager {
                    selectivity_threshold: 0.75,
                },
            ),
        ] {
            let server = PbdsServer::new(
                Arc::clone(&db),
                ServerConfig {
                    strategy,
                    fragments: 500,
                    ..ServerConfig::default()
                },
            );
            // Warm pass: let capture-on-miss land its sketches, so the
            // measured passes serve a steady-state catalog.
            server.serve_stream(&stream, threads).unwrap();
            server.drain();

            let mut rows_scanned = 0u64;
            group.bench_with_input(BenchmarkId::new(label, threads), &stream, |b, stream| {
                b.iter(|| {
                    let served = server.serve_stream(stream, threads).unwrap();
                    rows_scanned = served.iter().map(|s| s.record.stats.rows_scanned).sum();
                    served.len()
                })
            });

            // One more timed pass outside the bencher for the q/s column.
            let start = clock::Stopwatch::start();
            let served = server.serve_stream(&stream, threads).unwrap();
            let elapsed = start.elapsed();
            let qps = served.len() as f64 / elapsed.as_secs_f64().max(1e-9);
            let stats = server.catalog().stats();
            // Per-query latency percentiles over every pass this server
            // handled (warm-up + bencher iterations + the timed pass), from
            // the registry's log-linear histogram.
            let lat = server.metrics_snapshot().histograms["pbds_query_seconds"].clone();
            let [p50, p95, p99] = [0.50, 0.95, 0.99].map(|q| lat.quantile_scaled(q) * 1e3);
            table.row(vec![
                threads.to_string(),
                label.to_string(),
                format!("{qps:.0}"),
                format!("{p50:.2}"),
                format!("{p95:.2}"),
                format!("{p99:.2}"),
                rows_scanned.to_string(),
                stats.hits.to_string(),
                stats.stored.to_string(),
            ]);
            measurements.push(Measurement {
                threads,
                mode: label,
                qps,
                p50_ms: p50,
                p95_ms: p95,
                p99_ms: p99,
                rows_scanned,
                hits: stats.hits,
                stored: stats.stored,
            });

            if label == "no_ps" {
                NO_PS_ROWS.with(|c| c.set(rows_scanned));
            } else {
                let baseline = NO_PS_ROWS.with(|c| c.get());
                assert!(
                    rows_scanned < baseline,
                    "catalog-enabled serving must scan fewer rows than No-PS \
                     at {threads} thread(s): {rows_scanned} vs {baseline}"
                );
            }
        }
    }
    group.finish();
    eprintln!("\n{}", table.render());

    // Full runs refresh the committed baseline; --quick (CI) skips it so
    // smoke numbers never overwrite a real measurement.
    if std::env::args().any(|a| a == "--quick") {
        eprintln!("--quick: skipping BENCH_throughput.json baseline update");
    } else {
        let out = format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR"));
        write_json(&out, &measurements);
    }
}

struct Measurement {
    threads: usize,
    mode: &'static str,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    rows_scanned: u64,
    hits: u64,
    stored: usize,
}

fn write_json(path: &str, measurements: &[Measurement]) {
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\"threads\": {}, \"mode\": \"{}\", \"queries_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"rows_scanned\": {}, \"hits\": {}, \"stored\": {}}}",
                m.threads, m.mode, m.qps, m.p50_ms, m.p95_ms, m.p99_ms, m.rows_scanned, m.hits, m.stored
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_throughput\",\n  \"workload\": \"zipf sof stream, warm catalog vs no_ps\",\n  \"latency_source\": \"pbds_query_seconds histogram\",\n  \"measurements\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

thread_local! {
    static NO_PS_ROWS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
