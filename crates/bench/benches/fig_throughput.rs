//! Throughput of the concurrent sketch-serving middleware: queries/sec of a
//! Zipf-parameterized Stack-Overflow stream at 1/2/4/8 session threads, with
//! the shared sketch catalog (eager self-tuning) and without it (the paper's
//! No-PS baseline).
//!
//! Beyond wall-clock throughput, the bench prints and *checks* the
//! machine-independent counter the paper's data skipping is about: the total
//! rows scanned per pass. A warmed catalog must scan fewer rows than No-PS
//! at every thread count — if it ever does not, the serving stack regressed
//! and this bench panics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbds_bench::datasets;
use pbds_bench::harness::TablePrinter;
use pbds_core::{PbdsServer, ServerConfig, Strategy};
use pbds_workloads::{sof_pools, zipf_stream, StreamSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_throughput(c: &mut Criterion) {
    let db = Arc::new(datasets::sof_small_db());
    let stream = zipf_stream(
        &sof_pools(12, 5),
        &StreamSpec {
            queries: 60,
            skew: 1.1,
            seed: 17,
        },
    );

    let mut group = c.benchmark_group("fig_throughput_sof");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(300));

    let mut table =
        TablePrinter::new(&["threads", "mode", "q/s", "rows scanned", "hits", "stored"]);

    for threads in THREAD_COUNTS {
        for (label, strategy) in [
            ("no_ps", Strategy::NoPbds),
            (
                "catalog",
                Strategy::Eager {
                    selectivity_threshold: 0.75,
                },
            ),
        ] {
            let server = PbdsServer::new(
                Arc::clone(&db),
                ServerConfig {
                    strategy,
                    fragments: 500,
                    ..ServerConfig::default()
                },
            );
            // Warm pass: let capture-on-miss land its sketches, so the
            // measured passes serve a steady-state catalog.
            server.serve_stream(&stream, threads).unwrap();
            server.drain();

            let mut rows_scanned = 0u64;
            group.bench_with_input(BenchmarkId::new(label, threads), &stream, |b, stream| {
                b.iter(|| {
                    let served = server.serve_stream(stream, threads).unwrap();
                    rows_scanned = served.iter().map(|s| s.record.stats.rows_scanned).sum();
                    served.len()
                })
            });

            // One more timed pass outside the bencher for the q/s column.
            let start = Instant::now();
            let served = server.serve_stream(&stream, threads).unwrap();
            let elapsed = start.elapsed();
            let qps = served.len() as f64 / elapsed.as_secs_f64().max(1e-9);
            let stats = server.catalog().stats();
            table.row(vec![
                threads.to_string(),
                label.to_string(),
                format!("{qps:.0}"),
                rows_scanned.to_string(),
                stats.hits.to_string(),
                stats.stored.to_string(),
            ]);

            if label == "no_ps" {
                NO_PS_ROWS.with(|c| c.set(rows_scanned));
            } else {
                let baseline = NO_PS_ROWS.with(|c| c.get());
                assert!(
                    rows_scanned < baseline,
                    "catalog-enabled serving must scan fewer rows than No-PS \
                     at {threads} thread(s): {rows_scanned} vs {baseline}"
                );
            }
        }
    }
    group.finish();
    eprintln!("\n{}", table.render());
}

thread_local! {
    static NO_PS_ROWS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
