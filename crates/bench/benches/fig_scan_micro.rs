//! Filter-scan microbenchmark: rows/sec of the row-at-a-time expression
//! interpreter vs the vectorized columnar scan path, at selectivities
//! 0.1% / 1% / 10% / 100% on the `crimes` fact table.
//!
//! This is the regression gate for the scan hot path: the vectorized path
//! must sustain at least **2×** the row interpreter's single-thread
//! throughput at ≤ 10% selectivity, or the bench panics (and CI, which runs
//! it in `--quick` smoke mode, fails loudly). Results are also written to
//! `BENCH_scan.json` in the working directory so the repository can track a
//! recorded baseline.
//!
//! Run with: `cargo bench --bench fig_scan_micro [-- --quick]`

use pbds_algebra::{col, lit, LogicalPlan};
use pbds_bench::harness::{median_time, TablePrinter};
use pbds_exec::{execute_physical_with, lower, EngineProfile, ExecOptions, ExecStats, NoTag};
use pbds_storage::Database;
use pbds_workloads::crimes;
use std::io::Write;

const SELECTIVITIES: [f64; 4] = [0.001, 0.01, 0.1, 1.0];
/// The acceptance bar: vectorized ≥ 2× row interpreter at ≤ 10% selectivity.
const REQUIRED_SPEEDUP: f64 = 2.0;
const GATED_SELECTIVITY: f64 = 0.1 + 1e-12;

struct Measurement {
    selectivity: f64,
    rows_out: u64,
    row_rps: f64,
    vec_rps: f64,
}

fn measure(db: &Database, rows: usize, selectivity: f64, runs: usize) -> Measurement {
    // `id` is sequential 0..rows, so a half-open upper bound gives an exact
    // selectivity; the ColumnarScan profile forbids skipping, so both paths
    // visit every row and the comparison isolates predicate evaluation.
    let bound = ((rows as f64) * selectivity).round() as i64;
    let plan = LogicalPlan::scan("crimes").filter(col("id").lt(lit(bound)));
    let physical = lower(db, &plan, EngineProfile::ColumnarScan).expect("lower");

    let run = |vectorized: bool| -> (f64, u64) {
        let opts = ExecOptions { vectorized };
        let mut rows_out = 0u64;
        let elapsed = median_time(runs, || {
            let mut stats = ExecStats::default();
            let (rel, _) = execute_physical_with(db, &physical, &NoTag, opts, &mut stats).unwrap();
            rows_out = rel.len() as u64;
            rel
        });
        let rps = rows as f64 / elapsed.as_secs_f64().max(1e-9);
        (rps, rows_out)
    };

    let (row_rps, row_out) = run(false);
    let (vec_rps, vec_out) = run(true);
    assert_eq!(
        row_out, vec_out,
        "paths disagree at selectivity {selectivity}"
    );
    Measurement {
        selectivity,
        rows_out: row_out,
        row_rps,
        vec_rps,
    }
}

fn write_json(path: &str, rows: usize, quick: bool, measurements: &[Measurement]) {
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\"selectivity\": {}, \"rows_out\": {}, \"row_interpreter_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \"speedup\": {:.2}}}",
                m.selectivity,
                m.rows_out,
                m.row_rps,
                m.vec_rps,
                m.vec_rps / m.row_rps.max(1e-9)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_scan_micro\",\n  \"table\": \"crimes\",\n  \"rows\": {rows},\n  \"quick\": {quick},\n  \"required_speedup_at_low_selectivity\": {REQUIRED_SPEEDUP},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rows, runs) = if quick { (60_000, 7) } else { (200_000, 15) };
    let db = crimes::generate(&crimes::CrimesConfig {
        rows,
        ..Default::default()
    });
    // Warm the columnar projection outside the timed region (it is built
    // lazily once per table and cached).
    let _ = db.table("crimes").unwrap().columnar_chunks();

    eprintln!(
        "== fig_scan_micro ({} rows, {} runs/point{})",
        rows,
        runs,
        if quick { ", --quick" } else { "" }
    );
    let mut table = TablePrinter::new(&[
        "selectivity",
        "rows out",
        "row interp (Mrows/s)",
        "vectorized (Mrows/s)",
        "speedup",
    ]);
    let mut measurements = Vec::new();
    for sel in SELECTIVITIES {
        let m = measure(&db, rows, sel, runs);
        table.row(vec![
            format!("{:.1}%", sel * 100.0),
            m.rows_out.to_string(),
            format!("{:.1}", m.row_rps / 1e6),
            format!("{:.1}", m.vec_rps / 1e6),
            format!("{:.2}x", m.vec_rps / m.row_rps.max(1e-9)),
        ]);
        measurements.push(m);
    }
    eprintln!("\n{}", table.render());
    // Full runs record the baseline at the workspace root (cargo runs
    // benches with the package dir as cwd) next to README/CHANGES; quick
    // smoke runs (CI) must not clobber it with reduced-scale numbers.
    if quick {
        eprintln!("--quick: skipping BENCH_scan.json baseline update");
    } else {
        let out = format!("{}/../../BENCH_scan.json", env!("CARGO_MANIFEST_DIR"));
        write_json(&out, rows, quick, &measurements);
    }

    for m in &measurements {
        if m.selectivity <= GATED_SELECTIVITY {
            let speedup = m.vec_rps / m.row_rps.max(1e-9);
            assert!(
                speedup >= REQUIRED_SPEEDUP,
                "vectorized filter-scan regressed: {:.2}x < {REQUIRED_SPEEDUP}x \
                 at selectivity {:.1}%",
                speedup,
                m.selectivity * 100.0
            );
        }
    }
    eprintln!(
        "scan-path gate passed: vectorized >= {REQUIRED_SPEEDUP}x row interpreter \
         at <= 10% selectivity"
    );
}
