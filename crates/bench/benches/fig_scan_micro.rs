//! Filter-scan microbenchmark: rows/sec of the row-at-a-time expression
//! interpreter vs the vectorized columnar scan path, at selectivities
//! 0.1% / 1% / 10% / 100% on the `crimes` fact table, in two shapes:
//!
//! - **scan**: `filter(id < bound)` materializing the selected rows. This is
//!   the original regression gate: the vectorized path must sustain at least
//!   **2×** the row interpreter's single-thread throughput at ≤ 10%
//!   selectivity.
//! - **scan+agg**: the same filter feeding a global `SUM(year), COUNT(id)`.
//!   Here the bitmap-driven aggregation pushdown never materializes rows, so
//!   the vectorized path must hold **≥ 2× even at 100% selectivity** — the
//!   regime where plain row materialization erased most of the win.
//!
//! Both gates run in `--quick` smoke mode too (CI fails loudly on
//! regression). Full runs also record per-column chunk encodings and write
//! `BENCH_scan.json` at the workspace root so the repository tracks a
//! baseline.
//!
//! Run with: `cargo bench --bench fig_scan_micro [-- --quick]`

use pbds_algebra::{col, lit, AggExpr, AggFunc, LogicalPlan};
use pbds_bench::harness::{median_time, TablePrinter};
use pbds_exec::{execute_physical_with, lower, EngineProfile, ExecOptions, ExecStats, NoTag};
use pbds_storage::Database;
use pbds_workloads::crimes;
use std::io::Write;

const SELECTIVITIES: [f64; 4] = [0.001, 0.01, 0.1, 1.0];
/// Acceptance bar for the plain scan shape: vectorized ≥ 2× row interpreter
/// at ≤ 10% selectivity.
const REQUIRED_SPEEDUP: f64 = 2.0;
const GATED_SELECTIVITY: f64 = 0.1 + 1e-12;
/// Acceptance bar for the scan+agg shape: the aggregation pushdown must keep
/// a ≥ 2× win even when the filter selects every row.
const REQUIRED_SPEEDUP_AT_FULL_SELECTIVITY: f64 = 2.0;

#[derive(Clone, Copy, PartialEq)]
enum Shape {
    Scan,
    ScanAgg,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Scan => "scan",
            Shape::ScanAgg => "scan+agg",
        }
    }
}

struct Measurement {
    shape: Shape,
    selectivity: f64,
    rows_out: u64,
    row_rps: f64,
    vec_rps: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.vec_rps / self.row_rps.max(1e-9)
    }
}

fn measure(db: &Database, rows: usize, shape: Shape, selectivity: f64, runs: usize) -> Measurement {
    // `id` is sequential 0..rows, so a half-open upper bound gives an exact
    // selectivity; the ColumnarScan profile forbids skipping, so both paths
    // visit every row and the comparison isolates evaluation strategy.
    let bound = ((rows as f64) * selectivity).round() as i64;
    let filtered = LogicalPlan::scan("crimes").filter(col("id").lt(lit(bound)));
    let plan = match shape {
        Shape::Scan => filtered,
        Shape::ScanAgg => filtered.aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Sum, col("year"), "sum_year"),
                AggExpr::new(AggFunc::Count, col("id"), "n"),
            ],
        ),
    };
    let physical = lower(db, &plan, EngineProfile::ColumnarScan).expect("lower");

    let run = |vectorized: bool| {
        // Pin the path: adaptive lowering would (correctly) pick the row loop
        // at 100% selectivity, but the bench wants a clean A/B comparison.
        let opts = ExecOptions {
            vectorized,
            adaptive: false,
            ..ExecOptions::default()
        };
        let mut out = None;
        let elapsed = median_time(runs, || {
            let mut stats = ExecStats::default();
            let (rel, _) = execute_physical_with(db, &physical, &NoTag, opts, &mut stats).unwrap();
            out = Some(rel);
        });
        let rps = rows as f64 / elapsed.as_secs_f64().max(1e-9);
        (rps, out.expect("at least one run"))
    };

    let (row_rps, row_rel) = run(false);
    let (vec_rps, vec_rel) = run(true);
    assert_eq!(
        row_rel,
        vec_rel,
        "paths disagree at shape {} selectivity {selectivity}",
        shape.name()
    );
    let rows_out = match shape {
        Shape::Scan => row_rel.len() as u64,
        // For the aggregate shape, report input rows selected, not the
        // single output row.
        Shape::ScanAgg => bound.max(0) as u64,
    };
    Measurement {
        shape,
        selectivity,
        rows_out,
        row_rps,
        vec_rps,
    }
}

fn encodings_json(db: &Database) -> String {
    let table = db.table("crimes").unwrap();
    let chunks = table.columnar_chunks();
    let entries: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let counts: Vec<String> = chunks
                .column_encoding_counts(i)
                .iter()
                .map(|(enc, n)| format!("\"{enc}\": {n}"))
                .collect();
            format!("    \"{}\": {{{}}}", c.name, counts.join(", "))
        })
        .collect();
    format!("{{\n{}\n  }}", entries.join(",\n"))
}

fn write_json(path: &str, db: &Database, rows: usize, quick: bool, measurements: &[Measurement]) {
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\"shape\": \"{}\", \"selectivity\": {}, \"rows_out\": {}, \"row_interpreter_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \"speedup\": {:.2}}}",
                m.shape.name(),
                m.selectivity,
                m.rows_out,
                m.row_rps,
                m.vec_rps,
                m.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_scan_micro\",\n  \"table\": \"crimes\",\n  \"rows\": {rows},\n  \"quick\": {quick},\n  \"required_speedup_at_low_selectivity\": {REQUIRED_SPEEDUP},\n  \"required_speedup_at_full_selectivity\": {REQUIRED_SPEEDUP_AT_FULL_SELECTIVITY},\n  \"column_encodings\": {},\n  \"measurements\": [\n{}\n  ]\n}}\n",
        encodings_json(db),
        entries.join(",\n")
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rows, runs) = if quick { (60_000, 7) } else { (200_000, 15) };
    let db = crimes::generate(&crimes::CrimesConfig {
        rows,
        ..Default::default()
    });
    // Warm the columnar projection outside the timed region (it is built
    // lazily once per table and cached).
    let _ = db.table("crimes").unwrap().columnar_chunks();

    eprintln!(
        "== fig_scan_micro ({} rows, {} runs/point{})",
        rows,
        runs,
        if quick { ", --quick" } else { "" }
    );
    let mut table = TablePrinter::new(&[
        "shape",
        "selectivity",
        "rows selected",
        "row interp (Mrows/s)",
        "vectorized (Mrows/s)",
        "speedup",
    ]);
    let mut measurements = Vec::new();
    for shape in [Shape::Scan, Shape::ScanAgg] {
        for sel in SELECTIVITIES {
            let m = measure(&db, rows, shape, sel, runs);
            table.row(vec![
                shape.name().to_string(),
                format!("{:.1}%", sel * 100.0),
                m.rows_out.to_string(),
                format!("{:.1}", m.row_rps / 1e6),
                format!("{:.1}", m.vec_rps / 1e6),
                format!("{:.2}x", m.speedup()),
            ]);
            measurements.push(m);
        }
    }
    eprintln!("\n{}", table.render());
    // Full runs record the baseline at the workspace root (cargo runs
    // benches with the package dir as cwd) next to README/CHANGES; quick
    // smoke runs (CI) must not clobber it with reduced-scale numbers.
    if quick {
        eprintln!("--quick: skipping BENCH_scan.json baseline update");
    } else {
        let out = format!("{}/../../BENCH_scan.json", env!("CARGO_MANIFEST_DIR"));
        write_json(&out, &db, rows, quick, &measurements);
    }

    for m in &measurements {
        match m.shape {
            Shape::Scan if m.selectivity <= GATED_SELECTIVITY => {
                assert!(
                    m.speedup() >= REQUIRED_SPEEDUP,
                    "vectorized filter-scan regressed: {:.2}x < {REQUIRED_SPEEDUP}x \
                     at selectivity {:.1}%",
                    m.speedup(),
                    m.selectivity * 100.0
                );
            }
            Shape::ScanAgg if m.selectivity >= 1.0 => {
                assert!(
                    m.speedup() >= REQUIRED_SPEEDUP_AT_FULL_SELECTIVITY,
                    "aggregation pushdown regressed: {:.2}x < \
                     {REQUIRED_SPEEDUP_AT_FULL_SELECTIVITY}x at 100% selectivity",
                    m.speedup()
                );
            }
            _ => {}
        }
    }
    eprintln!(
        "scan-path gates passed: scan >= {REQUIRED_SPEEDUP}x at <= 10% selectivity, \
         scan+agg >= {REQUIRED_SPEEDUP_AT_FULL_SELECTIVITY}x at 100% selectivity"
    );
}
