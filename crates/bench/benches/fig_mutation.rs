//! Sustained write throughput under group commit, with concurrent readers.
//!
//! PR 7 rebuilt the server write path around group commit: mutations enter a
//! bounded ingest queue, a dedicated commit thread drains them into batches,
//! and each batch pays **one** WAL append + fsync, **one** copy-on-write
//! database fork and **one** atomic snapshot swap — so durability cost is
//! amortized across every concurrently submitted mutation. This bench
//! measures what that buys: `WRITERS` threads apply mutations as fast as
//! acknowledgements allow while `READERS` threads serve a Zipf query stream
//! against the same server, once with batching (`commit_batch_limit` at its
//! default) and once with the per-mutation-fsync baseline
//! (`commit_batch_limit: 1` — the pre-group-commit write path).
//!
//! Every reader asserts **epoch consistency** on every query: writers append
//! rows in atomic blocks of [`ROWS_PER_MUTATION`] with `v = 1` into per-block
//! groups, so each group's `SUM(v)` must always be a multiple of the block
//! size — a reader observing a torn batch (some rows of an append visible,
//! others not) fails immediately. After the batched phase the server is
//! dropped without shutdown and reopened: the group-committed WAL must
//! replay to the exact acknowledged state.
//!
//! Full runs record `BENCH_mutation.json`; `--quick` (CI) runs a smaller
//! burst and gates on a conservative 2× speedup (full gate: 5× at 8
//! writers, the PR's acceptance bar).
//!
//! Run with: `cargo bench --bench fig_mutation [-- --quick]`

use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate};
use pbds_bench::harness::TablePrinter;
use pbds_core::{Mutation, PbdsServer, ServerConfig};
use pbds_storage::{DataType, Database, Row, Schema, TableBuilder, Value};
use pbds_workloads::stream::{zipf_stream, StreamSpec, TemplatePool};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent writer threads (the acceptance gate requires ≥ 8).
const WRITERS: usize = 8;
/// Concurrent Zipf reader threads.
const READERS: usize = 4;
/// Rows per mutation; the readers' consistency invariant checks that every
/// group total is a multiple of this (appends are atomic or invisible).
const ROWS_PER_MUTATION: i64 = 4;
/// Distinct writer groups.
const GROUPS: i64 = 50;
/// Base rows per group (a multiple of [`ROWS_PER_MUTATION`]).
const BASE_PER_GROUP: i64 = 40;

/// `w(grp INT, v INT)`: [`GROUPS`] groups × [`BASE_PER_GROUP`] rows, `v = 1`.
fn write_table_db() -> Database {
    let schema = Schema::from_pairs(&[("grp", DataType::Int), ("v", DataType::Int)]);
    let mut b = TableBuilder::new("w", schema);
    b.block_size(256);
    for g in 0..GROUPS {
        for _ in 0..BASE_PER_GROUP {
            b.push(vec![Value::Int(g), Value::Int(1)]);
        }
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

/// The readers' template: per-group totals above a threshold.
fn reader_pool() -> TemplatePool {
    let template = QueryTemplate::new(
        "w-having",
        LogicalPlan::scan("w")
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Sum, col("v"), "total")],
            )
            .filter(col("total").gt(param(0))),
    );
    let bindings = (0..12)
        .map(|i| vec![Value::Int(BASE_PER_GROUP - 8 + i * ROWS_PER_MUTATION)])
        .collect();
    TemplatePool::new(template, bindings)
}

struct PhaseResult {
    label: &'static str,
    mutations: u64,
    elapsed: Duration,
    rate: f64,
    fsyncs: u64,
    batched_commits: u64,
    max_batch: u64,
    reader_queries: u64,
    /// Submit→acknowledge commit latency percentiles (ms), from the
    /// server's `pbds_mutation_commit_seconds` histogram.
    commit_p50_ms: f64,
    commit_p95_ms: f64,
    commit_p99_ms: f64,
    /// p99 of one WAL append+fsync (ms), from `pbds_wal_fsync_seconds`.
    fsync_p99_ms: f64,
}

/// Run one phase: `WRITERS` threads each applying `per_writer` mutations
/// while `READERS` threads serve the Zipf stream in a loop, asserting the
/// group-total invariant on every result. Returns the phase metrics and the
/// final acknowledged rows of `w` (for the replay check).
fn run_phase(
    label: &'static str,
    dir: &PathBuf,
    config: ServerConfig,
    per_writer: usize,
) -> (PhaseResult, Vec<Row>, PbdsServer) {
    let _ = std::fs::remove_dir_all(dir);
    let server = PbdsServer::create(dir, Arc::new(write_table_db()), config).expect("create");
    let server = Arc::new(server);
    let stream = zipf_stream(
        &[reader_pool()],
        &StreamSpec {
            queries: 400,
            skew: 1.1,
            seed: 23,
        },
    );
    let stop = AtomicBool::new(false);
    let reader_queries = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for i in 0..per_writer {
                    let grp = ((w * per_writer + i) as i64) % GROUPS;
                    let rows: Vec<Row> = (0..ROWS_PER_MUTATION)
                        .map(|_| vec![Value::Int(grp), Value::Int(1)])
                        .collect();
                    server
                        .apply_mutation("w", Mutation::Append(rows))
                        .expect("append");
                }
            });
        }
        for _ in 0..READERS {
            let server = Arc::clone(&server);
            let stream = &stream;
            let stop = &stop;
            let reader_queries = &reader_queries;
            s.spawn(move || {
                let session = server.session();
                'outer: loop {
                    for (template, binding) in stream {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        let served = session.serve(template, binding).expect("serve");
                        // Epoch consistency: appends are atomic blocks of
                        // ROWS_PER_MUTATION rows with v = 1, so every group
                        // total the snapshot shows must be a whole number of
                        // blocks. A torn batch breaks this instantly.
                        for row in served.relation.rows() {
                            let Value::Int(total) = row[1] else {
                                panic!("unexpected total type in {row:?}");
                            };
                            assert_eq!(
                                total % ROWS_PER_MUTATION,
                                0,
                                "torn append visible: group {:?} total {total}",
                                row[0]
                            );
                        }
                        reader_queries.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Writer threads exit on their own; scope waits for them. Readers
        // poll `stop`, which flips once the writers' mutation count lands.
        while server.commit_stats().mutations_committed < (WRITERS * per_writer) as u64 {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed();
    let stats = server.commit_stats();
    assert_eq!(stats.mutations_committed, (WRITERS * per_writer) as u64);
    let rows = server.db().table("w").unwrap().rows().to_vec();
    let snap = server.metrics_snapshot();
    let commit_lat = &snap.histograms["pbds_mutation_commit_seconds"];
    let fsync_lat = &snap.histograms["pbds_wal_fsync_seconds"];
    assert_eq!(commit_lat.count(), stats.mutations_committed);
    let result = PhaseResult {
        label,
        mutations: stats.mutations_committed,
        elapsed,
        rate: stats.mutations_committed as f64 / elapsed.as_secs_f64(),
        fsyncs: stats.fsyncs,
        batched_commits: stats.batched_commits,
        max_batch: stats.max_batch,
        reader_queries: reader_queries.load(Ordering::Relaxed),
        commit_p50_ms: commit_lat.quantile_scaled(0.50) * 1e3,
        commit_p95_ms: commit_lat.quantile_scaled(0.95) * 1e3,
        commit_p99_ms: commit_lat.quantile_scaled(0.99) * 1e3,
        fsync_p99_ms: fsync_lat.quantile_scaled(0.99) * 1e3,
    };
    let server = Arc::into_inner(server).expect("all threads joined");
    (result, rows, server)
}

fn write_json(path: &str, quick: bool, speedup: f64, phases: &[&PhaseResult]) {
    let entries: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "    {{\"phase\": \"{}\", \"writers\": {}, \"readers\": {}, \"mutations\": {}, \"elapsed_ms\": {:.3}, \"mutations_per_sec\": {:.1}, \"fsyncs\": {}, \"batched_commits\": {}, \"max_batch\": {}, \"reader_queries\": {}, \"commit_p50_ms\": {:.3}, \"commit_p95_ms\": {:.3}, \"commit_p99_ms\": {:.3}, \"wal_fsync_p99_ms\": {:.3}}}",
                p.label,
                WRITERS,
                READERS,
                p.mutations,
                p.elapsed.as_secs_f64() * 1e3,
                p.rate,
                p.fsyncs,
                p.batched_commits,
                p.max_batch,
                p.reader_queries,
                p.commit_p50_ms,
                p.commit_p95_ms,
                p.commit_p99_ms,
                p.fsync_p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_mutation\",\n  \"workload\": \"concurrent appends + zipf readers\",\n  \"quick\": {quick},\n  \"speedup_vs_per_mutation_fsync\": {speedup:.2},\n  \"phases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_writer = if quick { 75 } else { 400 };
    let config = ServerConfig {
        checkpoint_every: None, // keep every fsync attributable to the WAL
        capture_workers: 2,
        ..ServerConfig::default()
    };
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    eprintln!(
        "== fig_mutation ({WRITERS} writers x {per_writer} mutations, {READERS} zipf readers{})",
        if quick { ", --quick" } else { "" }
    );

    // Batched phase (group commit at the default batch limit), then the
    // per-mutation-fsync baseline: the identical pipeline with batches of 1.
    let (batched, acked_rows, server) = run_phase(
        "batched",
        &base.join("fig_mutation_batched"),
        config,
        per_writer,
    );
    drop(server); // crash, no shutdown: recovery must come from the WAL
    let baseline_config = ServerConfig {
        commit_batch_limit: 1,
        ..config
    };
    let (baseline, _, server) = run_phase(
        "per-mutation-fsync",
        &base.join("fig_mutation_baseline"),
        baseline_config,
        per_writer,
    );
    drop(server);

    // The batched WAL replays to the exact acknowledged state.
    let reopened = PbdsServer::open(&base.join("fig_mutation_batched"), config).expect("open");
    let replayed = reopened.recovery_report().expect("report").wal_replayed;
    assert_eq!(
        reopened.db().table("w").unwrap().rows(),
        &acked_rows[..],
        "group-committed WAL did not replay to the acknowledged state"
    );
    drop(reopened);

    let speedup = batched.rate / baseline.rate;
    let mut table = TablePrinter::new(&[
        "phase",
        "mutations",
        "elapsed (ms)",
        "mutations/s",
        "commit p50/p95/p99 (ms)",
        "fsync p99 (ms)",
        "fsyncs",
        "batches",
        "max batch",
        "reader queries",
    ]);
    for p in [&batched, &baseline] {
        table.row(vec![
            p.label.to_string(),
            p.mutations.to_string(),
            format!("{:.1}", p.elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", p.rate),
            format!(
                "{:.2}/{:.2}/{:.2}",
                p.commit_p50_ms, p.commit_p95_ms, p.commit_p99_ms
            ),
            format!("{:.2}", p.fsync_p99_ms),
            p.fsyncs.to_string(),
            p.batched_commits.to_string(),
            p.max_batch.to_string(),
            p.reader_queries.to_string(),
        ]);
    }
    eprintln!("\n{}", table.render());
    eprintln!(
        "speedup {speedup:.2}x over per-mutation fsync; batched WAL replayed {replayed} records"
    );

    if quick {
        eprintln!("--quick: skipping BENCH_mutation.json baseline update");
    } else {
        let out = format!("{}/../../BENCH_mutation.json", env!("CARGO_MANIFEST_DIR"));
        write_json(&out, quick, speedup, &[&batched, &baseline]);
    }

    // The gate. Group commit must amortize fsyncs and clones across the
    // concurrent writers; the quick bound is conservative for noisy CI.
    assert!(
        batched.max_batch > 1,
        "group commit never batched: {}",
        batched.max_batch
    );
    assert!(
        batched.fsyncs < batched.mutations,
        "batched phase paid one fsync per mutation ({} for {})",
        batched.fsyncs,
        batched.mutations
    );
    let required = if quick { 2.0 } else { 5.0 };
    assert!(
        speedup >= required,
        "group commit speedup {speedup:.2}x below the {required}x gate \
         (batched {:.0}/s vs baseline {:.0}/s)",
        batched.rate,
        baseline.rate
    );
    eprintln!(
        "mutation gate passed: {speedup:.2}x >= {required}x at {WRITERS} writers, \
         readers consistent"
    );
}
