//! Cold start vs warm start from a persisted sketch catalog.
//!
//! The paper's middleware amortizes capture cost across a query stream; the
//! durability layer (`pbds-persist`) makes that amortization survive a
//! restart. This bench serves the same Zipf-parameterized Stack-Overflow
//! stream twice over one durability directory:
//!
//! * **cold** — a fresh `PbdsServer::create`: the catalog starts empty,
//!   every new binding pays a capture, hits only begin once captures land;
//! * **warm** — `PbdsServer::open` after the cold server checkpointed on
//!   shutdown: the catalog is imported from disk and the stream hits from
//!   query one, with zero captures.
//!
//! A third **fault-drill** phase reopens the same directory behind a fault
//! injector, survives an fsyncgate WAL failure plus an ENOSPC'd repair
//! checkpoint (janitor heals both), serves the stream again, crashes, and
//! proves a clean reopen is *still* warm — transient durability faults must
//! not forfeit the catalog either.
//!
//! Reported per phase: the index of the first catalog hit, the wall-clock
//! **time to first hit** (for the warm phase this includes the recovery
//! itself — reading the snapshot, importing the catalog, replaying the WAL)
//! and the **rows scanned over the first N queries** (the data-skipping win
//! a restart would otherwise forfeit). Full runs record the baseline in
//! `BENCH_recovery.json`; `--quick` (CI) only smoke-checks the gates:
//! the warm start must hit at query one, pay zero captures, and scan fewer
//! rows than the cold start over the first N queries — and the fault drill
//! must refuse the un-durable write, repair, and stay warm.
//!
//! Run with: `cargo bench --bench fig_recovery [-- --quick]`

use pbds_bench::harness::TablePrinter;
use pbds_core::persist::{FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass};
use pbds_core::tuning::Action;
use pbds_core::{HealthState, Mutation, PbdsServer, ServerConfig};
use pbds_storage::Value;
use pbds_workloads::sof::{generate, SofConfig};
use pbds_workloads::stream::{sof_pools, zipf_stream, StreamSpec};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries over which the early-stream scan volume is compared.
const EARLY_WINDOW: usize = 30;

struct PhaseMetrics {
    label: &'static str,
    /// Index of the first catalog hit (`None` = the phase never hit).
    first_hit: Option<usize>,
    /// Wall clock from phase start (including open/recovery) to the end of
    /// the first hitting query.
    time_to_first_hit: Duration,
    /// Rows scanned over the first [`EARLY_WINDOW`] queries.
    early_rows_scanned: u64,
    /// Rows scanned over the whole stream.
    total_rows_scanned: u64,
    /// Background captures paid during the phase.
    captures: u64,
}

/// Serve the stream sequentially, draining after every enqueued capture so
/// hit/miss behavior is deterministic, and collect the phase metrics.
fn serve_phase(
    label: &'static str,
    server: &PbdsServer,
    stream: &[(pbds_algebra::QueryTemplate, Vec<pbds_storage::Value>)],
    started: Instant,
) -> PhaseMetrics {
    let session = server.session();
    let mut first_hit = None;
    let mut time_to_first_hit = Duration::ZERO;
    let mut early_rows = 0u64;
    let mut total_rows = 0u64;
    for (i, (template, binding)) in stream.iter().enumerate() {
        let served = session.serve(template, binding).expect("serve");
        if served.capture_enqueued {
            server.drain();
        }
        if i < EARLY_WINDOW {
            early_rows += served.record.stats.rows_scanned;
        }
        total_rows += served.record.stats.rows_scanned;
        if first_hit.is_none() && served.record.action == Action::UseSketch {
            first_hit = Some(i);
            time_to_first_hit = started.elapsed();
        }
    }
    if first_hit.is_none() {
        time_to_first_hit = started.elapsed();
    }
    let (captures, _) = server.capture_totals();
    PhaseMetrics {
        label,
        first_hit,
        time_to_first_hit,
        early_rows_scanned: early_rows,
        total_rows_scanned: total_rows,
        captures,
    }
}

fn write_json(path: &str, queries: usize, quick: bool, phases: &[&PhaseMetrics]) {
    let entries: Vec<String> = phases
        .iter()
        .map(|m| {
            format!(
                "    {{\"phase\": \"{}\", \"first_hit_query\": {}, \"time_to_first_hit_ms\": {:.3}, \"rows_scanned_first_{}\": {}, \"rows_scanned_total\": {}, \"captures\": {}}}",
                m.label,
                m.first_hit.map_or(-1i64, |i| i as i64),
                m.time_to_first_hit.as_secs_f64() * 1e3,
                EARLY_WINDOW,
                m.early_rows_scanned,
                m.total_rows_scanned,
                m.captures
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fig_recovery\",\n  \"workload\": \"sof zipf stream\",\n  \"queries\": {queries},\n  \"quick\": {quick},\n  \"phases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// A single synthetic row for the `posts` table, used by the fault drill:
/// `(postid, owneruserid, favorites, score)`.
fn drill_post(postid: i64) -> Mutation {
    Mutation::Append(vec![vec![
        Value::Int(postid),
        Value::Int(1),
        Value::Int(0),
        Value::Int(0),
    ]])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sof, queries) = if quick {
        (
            SofConfig {
                users: 2_000,
                posts: 12_000,
                comments: 15_000,
                badges: 6_000,
                ..Default::default()
            },
            60,
        )
    } else {
        (
            SofConfig {
                users: 8_000,
                posts: 48_000,
                comments: 60_000,
                badges: 24_000,
                ..Default::default()
            },
            200,
        )
    };
    let dir: PathBuf = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fig_recovery");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(generate(&sof));
    let stream = zipf_stream(
        &sof_pools(16, 29),
        &StreamSpec {
            queries,
            skew: 1.1,
            seed: 13,
        },
    );
    let config = ServerConfig {
        capture_workers: 2,
        ..ServerConfig::default()
    };
    eprintln!(
        "== fig_recovery ({} rows, {} queries{})",
        db.total_rows(),
        queries,
        if quick { ", --quick" } else { "" }
    );

    // Cold phase: fresh directory, empty catalog, shutdown checkpoints.
    let started = Instant::now();
    let server = PbdsServer::create(&dir, Arc::clone(&db), config).expect("create");
    let cold = serve_phase("cold", &server, &stream, started);
    server.shutdown().expect("shutdown");

    // Warm phase: reopen from disk; recovery time counts toward the first
    // hit, because it is what a restart actually costs.
    let started = Instant::now();
    let server = PbdsServer::open(&dir, config).expect("open");
    let recovery = server.recovery_report().expect("recovery report");
    let warm = serve_phase("warm", &server, &stream, started);
    drop(server);

    // Fault drill: reopen the same directory behind a fault injector. The
    // first write hits an fsyncgate WAL fsync failure and must be refused;
    // the janitor's repair checkpoint then eats an ENOSPC before landing.
    // Once the server heals, the stream must still serve warm.
    let started = Instant::now();
    let injector = FaultInjector::new(0xD811);
    let server =
        PbdsServer::open_with_io(&dir, config, Arc::new(FaultIo::new(Arc::clone(&injector))))
            .expect("open for fault drill");
    injector.inject(FaultSpec {
        kind: FaultKind::FsyncFail,
        class: FileClass::Wal,
        skip: 0,
    });
    injector.inject(FaultSpec {
        kind: FaultKind::Enospc,
        class: FileClass::Snapshot,
        skip: 0,
    });
    let refused = server.apply_mutation("posts", drill_post(9_000_000));
    assert!(
        refused.is_err(),
        "a write whose WAL fsync failed must be refused, not acked"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.health() != HealthState::Healthy && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let events = server.robustness_events();
    assert_eq!(
        server.health(),
        HealthState::Healthy,
        "janitor failed to repair after the fault cycle: {events:?}"
    );
    assert_eq!(events.wal_append_failures, 1);
    assert!(
        events.repairs_succeeded >= 1,
        "the repair campaign must be what healed the server: {events:?}"
    );
    assert_eq!(injector.armed_remaining(), 0, "both faults must have fired");
    server
        .apply_mutation("posts", drill_post(9_000_001))
        .expect("write after repair");
    let drill = serve_phase("fault-drill", &server, &stream, started);
    // Crash without shutdown: the repair checkpoint plus the WAL must carry
    // the post-fault state on their own.
    drop(server);

    // Post-drill: a clean reopen after the fault cycle must still be warm.
    let started = Instant::now();
    let server = PbdsServer::open(&dir, config).expect("reopen after fault drill");
    let drill_recovery = server.recovery_report().expect("recovery report");
    let post_drill = serve_phase("post-drill", &server, &stream, started);

    let mut table = TablePrinter::new(&[
        "phase",
        "first hit",
        "t-to-first-hit (ms)",
        &format!("rows scanned (first {EARLY_WINDOW})"),
        "rows scanned (all)",
        "captures",
    ]);
    for m in [&cold, &warm, &drill, &post_drill] {
        table.row(vec![
            m.label.to_string(),
            m.first_hit.map_or("never".into(), |i| format!("#{i}")),
            format!("{:.2}", m.time_to_first_hit.as_secs_f64() * 1e3),
            m.early_rows_scanned.to_string(),
            m.total_rows_scanned.to_string(),
            m.captures.to_string(),
        ]);
    }
    eprintln!("\n{}", table.render());
    eprintln!(
        "recovery: {} catalog entries imported, {} dropped, {} WAL records replayed",
        recovery.catalog_imported, recovery.catalog_dropped, recovery.wal_replayed
    );
    eprintln!(
        "post-drill recovery: {} catalog entries imported, {} dropped, {} WAL records replayed",
        drill_recovery.catalog_imported,
        drill_recovery.catalog_dropped,
        drill_recovery.wal_replayed
    );

    if quick {
        eprintln!("--quick: skipping BENCH_recovery.json baseline update");
    } else {
        let out = format!("{}/../../BENCH_recovery.json", env!("CARGO_MANIFEST_DIR"));
        write_json(&out, queries, quick, &[&cold, &warm, &drill, &post_drill]);
    }

    // The gate: a restart must not forfeit the catalog.
    assert_eq!(recovery.catalog_dropped, 0, "no entry may recover stale");
    assert_eq!(
        warm.first_hit,
        Some(0),
        "warm start must hit the catalog from the first query"
    );
    assert_eq!(warm.captures, 0, "warm start must not pay capture again");
    assert!(
        warm.early_rows_scanned < cold.early_rows_scanned,
        "warm start scanned {} rows in the first {EARLY_WINDOW} queries, \
         cold start {} — persistence bought nothing",
        warm.early_rows_scanned,
        cold.early_rows_scanned
    );
    // The drill gate: a transient durability fault must not forfeit the
    // catalog either — the healed server and the clean reopen after its
    // crash both still serve warm.
    assert_eq!(
        drill.first_hit,
        Some(0),
        "the healed server must still hit the catalog from the first query"
    );
    assert_eq!(
        drill_recovery.catalog_dropped, 0,
        "no entry may recover stale after the fault cycle"
    );
    assert_eq!(
        post_drill.first_hit,
        Some(0),
        "a fault cycle must not cost the warm start"
    );
    assert_eq!(
        post_drill.captures, 0,
        "the reopen after the fault cycle must not pay capture again"
    );
    eprintln!(
        "recovery gate passed: warm start hits from query one \
         (cold first hit {:?}), zero warm captures, early-stream rows {} -> {}; \
         fault drill refused the un-durable write, repaired, and stayed warm",
        cold.first_hit, cold.early_rows_scanned, warm.early_rows_scanned
    );
}
