//! Prints the reproduction of every table and figure of the PBDS evaluation.
//!
//! Usage: `paper-figures [all|example|fig9|fig10|fig11|fig12|fig13|fig14|checks] [--quick]`

use pbds_bench::{datasets, figs};
use pbds_exec::EngineProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let runs = if quick { 1 } else { 3 };
    let e2e_queries = if quick { 60 } else { 200 };

    let want = |name: &str| all || which.contains(&name);

    if want("example") {
        println!("{}", figs::running_example());
    }
    if want("fig12") {
        println!("{}", figs::fig12a(runs));
        println!("{}", figs::fig12b(runs));
    }
    if want("fig9") {
        println!("{}", figs::fig9());
    }
    if want("fig11") {
        println!(
            "{}",
            figs::fig11_tpch(datasets::TpchScale::Small, EngineProfile::Indexed, runs)
        );
        println!(
            "{}",
            figs::fig11_tpch(datasets::TpchScale::Large, EngineProfile::Indexed, runs)
        );
        println!("{}", figs::fig11c(runs));
        println!(
            "{}",
            figs::fig11_tpch(
                datasets::TpchScale::Small,
                EngineProfile::ColumnarScan,
                runs
            )
        );
        println!(
            "{}",
            figs::fig11_tpch(
                datasets::TpchScale::Large,
                EngineProfile::ColumnarScan,
                runs
            )
        );
    }
    if want("fig10") {
        println!("{}", figs::fig10(runs));
    }
    if want("fig14") {
        println!("{}", figs::fig14(runs));
    }
    if want("fig13") {
        println!("{}", figs::fig13_crimes(e2e_queries));
        println!("{}", figs::fig13_sof(e2e_queries));
    }
    if want("checks") {
        println!("{}", figs::check_overhead(runs.max(5)));
    }
}
