//! # pbds-bench
//!
//! The benchmark harness reproducing every table and figure of the PBDS
//! evaluation (Sec. 9 of the paper). The `paper-figures` binary prints each
//! experiment as a text table; the Criterion benches under `benches/` measure
//! the same code paths with statistical rigour.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p pbds-bench --release --bin paper-figures -- all
//! cargo bench -p pbds-bench
//! ```

#![warn(missing_docs)]

pub mod datasets;
pub mod figs;
pub mod harness;
