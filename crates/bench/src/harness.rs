//! Measurement helpers shared by the Criterion benches and the
//! `paper-figures` binary.

use pbds_algebra::LogicalPlan;
use pbds_core::{Pbds, PbdsError, UsePredicateStyle};
use pbds_provenance::{CaptureConfig, ProvenanceSketch};
use pbds_storage::PartitionRef;
use pbds_telemetry::clock;
use pbds_workloads::{BenchQuery, SketchSpec};
use std::time::Duration;

/// Median wall-clock time of `runs` executions of `f` (at least one run).
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> Duration {
    let runs = runs.max(1);
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = clock::Stopwatch::start();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// One measured data point for a query under a given sketch configuration.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Query name (e.g. `Q3`).
    pub query: String,
    /// Number of fragments of the partition (0 = no PBDS).
    pub fragments: usize,
    /// Plain execution time (no PBDS).
    pub plain: Duration,
    /// Execution time using the sketch.
    pub with_sketch: Duration,
    /// Capture time (instrumented execution).
    pub capture: Duration,
    /// Sketch selectivity: fraction of the sketched table covered.
    pub selectivity: f64,
    /// Rows scanned without / with the sketch.
    pub rows_scanned_plain: u64,
    /// Rows scanned when using the sketch.
    pub rows_scanned_sketch: u64,
}

impl QueryMeasurement {
    /// Speed-up factor of using the sketch (>1 means faster).
    pub fn speedup(&self) -> f64 {
        self.plain.as_secs_f64() / self.with_sketch.as_secs_f64().max(1e-9)
    }

    /// Capture overhead relative to the plain execution (1.0 = +100 %).
    pub fn capture_overhead(&self) -> f64 {
        self.capture.as_secs_f64() / self.plain.as_secs_f64().max(1e-9) - 1.0
    }
}

/// Build the partition requested by a [`BenchQuery`]'s sketch spec.
pub fn build_partition(
    pbds: &Pbds,
    spec: &SketchSpec,
    fragments: usize,
) -> Result<PartitionRef, PbdsError> {
    match spec {
        SketchSpec::Range { table, attr } => pbds.range_partition(table, attr, fragments),
        SketchSpec::Composite { table, attrs } => {
            let attrs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
            pbds.composite_partition(table, &attrs)
        }
    }
}

/// Capture a sketch for a benchmark query and measure plain / capture /
/// sketch-use execution times.
pub fn measure_query(
    pbds: &Pbds,
    query: &BenchQuery,
    fragments: usize,
    style: UsePredicateStyle,
    runs: usize,
) -> Result<QueryMeasurement, PbdsError> {
    let plan: LogicalPlan = query.default_plan();
    let partition = build_partition(pbds, &query.sketch, fragments)?;

    // Plain execution.
    let plain_out = pbds.execute(&plan)?;
    let plain = median_time(runs, || pbds.execute(&plan).expect("plain execution"));

    // Capture (also measures the instrumented execution time).
    let capture_start = clock::Stopwatch::start();
    let captured = pbds.capture_with_config(&plan, &[partition], &CaptureConfig::optimized())?;
    let capture = capture_start.elapsed();
    let sketch = &captured.sketches[0];
    let selectivity = sketch.selectivity(pbds.db())?;

    // Use.
    let sketch_out = pbds.execute_with_sketches_styled(&plan, &captured.sketches, style)?;
    debug_assert!(sketch_out.relation.bag_eq(&plain_out.relation));
    let with_sketch = median_time(runs, || {
        pbds.execute_with_sketches_styled(&plan, &captured.sketches, style)
            .expect("sketch execution")
    });

    Ok(QueryMeasurement {
        query: query.name.clone(),
        fragments: sketch.num_fragments(),
        plain,
        with_sketch,
        capture,
        selectivity,
        rows_scanned_plain: plain_out.stats.rows_scanned,
        rows_scanned_sketch: sketch_out.stats.rows_scanned,
    })
}

/// Capture only (used by the capture-overhead figures).
pub fn capture_sketch_for(
    pbds: &Pbds,
    query: &BenchQuery,
    fragments: usize,
) -> Result<(ProvenanceSketch, Duration), PbdsError> {
    let plan = query.default_plan();
    let partition = build_partition(pbds, &query.sketch, fragments)?;
    let start = clock::Stopwatch::start();
    let captured = pbds.capture(&plan, &[partition])?;
    Ok((
        captured.sketches.into_iter().next().expect("one sketch"),
        start.elapsed(),
    ))
}

/// Format a duration in milliseconds with three significant digits.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:>9.3}", d.as_secs_f64() * 1e3)
}

/// Format a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:>6.1}%", f * 100.0)
}

/// Simple fixed-width table printer.
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TablePrinter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printer_aligns_columns() {
        let mut t = TablePrinter::new(&["query", "time"]);
        t.row(vec!["Q3".into(), "1.5".into()]);
        t.row(vec!["Q18-long-name".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("Q18-long-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn median_time_is_positive() {
        let d = median_time(3, || (0..1000).sum::<u64>());
        assert!(d > Duration::ZERO);
    }
}
