//! Benchmark-scale dataset construction.
//!
//! The paper evaluates on TPC-H SF1/SF10 and multi-million-row real datasets;
//! we reproduce the *shape* of the results on laptop-scale versions of the
//! same schemas (DESIGN.md documents the substitution). Two TPC-H scales
//! stand in for the SF1/SF10 pair so scale trends remain visible.

use pbds_storage::Database;
use pbds_workloads::{crimes, movies, sof, tpch};

/// Dataset scale used by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchScale {
    /// The smaller scale (stands in for SF1).
    Small,
    /// The larger scale (stands in for SF10).
    Large,
}

impl TpchScale {
    /// Label used in printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            TpchScale::Small => "SF-small",
            TpchScale::Large => "SF-large",
        }
    }
}

/// Build the TPC-H-like database at a benchmark scale.
pub fn tpch(scale: TpchScale) -> Database {
    let cfg = tpch::TpchConfig {
        scale: match scale {
            TpchScale::Small => 0.004,
            TpchScale::Large => 0.016,
        },
        seed: 42,
        block_size: 256,
    };
    tpch::generate(&cfg)
}

/// Build the Crimes-like database at benchmark scale.
pub fn crimes_db() -> Database {
    crimes::generate(&crimes::CrimesConfig {
        rows: 60_000,
        ..Default::default()
    })
}

/// Build the Movies-like database at benchmark scale.
pub fn movies_db() -> Database {
    movies::generate(&movies::MoviesConfig {
        movies: 4_000,
        ratings: 120_000,
        ..Default::default()
    })
}

/// Build the Stack-Overflow-like database at benchmark scale.
pub fn sof_db() -> Database {
    sof::generate(&sof::SofConfig {
        users: 10_000,
        posts: 60_000,
        comments: 80_000,
        badges: 30_000,
        ..Default::default()
    })
}

/// A smaller Stack-Overflow database for the end-to-end workloads (which run
/// hundreds of query instances).
pub fn sof_small_db() -> Database {
    sof::generate(&sof::SofConfig {
        users: 4_000,
        posts: 24_000,
        comments: 32_000,
        badges: 12_000,
        ..Default::default()
    })
}

/// A smaller Crimes database for the end-to-end workloads.
pub fn crimes_small_db() -> Database {
    crimes::generate(&crimes::CrimesConfig {
        rows: 30_000,
        ..Default::default()
    })
}
