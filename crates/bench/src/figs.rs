//! Reproduction of every table and figure of the paper's evaluation
//! (Sec. 9). Each function returns a formatted report that the
//! `paper-figures` binary prints; `EXPERIMENTS.md` records a captured run.

use crate::datasets;
use crate::harness::{
    build_partition, capture_sketch_for, fmt_ms, fmt_pct, measure_query, median_time, TablePrinter,
};
use pbds_core::{
    cumulative_elapsed, Action, EngineProfile, Pbds, ReuseChecker, SafetyChecker, Strategy,
    UsePredicateStyle,
};
use pbds_provenance::{capture_sketches, Annotation, CaptureConfig, LookupMethod, MergeStrategy};
use pbds_storage::{Partition, PartitionRef, RangePartition, Value};
use pbds_telemetry::clock;
use pbds_workloads::{crimes, movies, normal, sof, tpch, BenchQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Fragment counts swept by the TPC-H experiments (the paper uses
/// 32…100 000; we stop at 4 000 which is already ≫ the number of zone-map
/// blocks at our scale).
pub const TPCH_FRAGMENTS: &[usize] = &[32, 64, 400, 4000];

// ---------------------------------------------------------------------------
// Fig. 12 — capture optimizations
// ---------------------------------------------------------------------------

/// Fig. 12a: creating singleton sketch annotations with a linear CASE list vs
/// binary search, varying the number of fragments.
pub fn fig12a(runs: usize) -> String {
    let db = datasets::crimes_db();
    let table = db.table("crimes").expect("crimes table");
    let values = table.column_values("id").expect("id column");
    let mut out = TablePrinter::new(&["#fragments", "case (ms)", "binary search (ms)", "speedup"]);
    for &n in &[32usize, 64, 128, 256, 400, 1_000, 4_000, 10_000] {
        let partition = RangePartition::equi_depth("crimes", "id", &values, n).expect("partition");
        let case = median_time(runs, || {
            values
                .iter()
                .map(|v| partition.fragment_of_linear(v))
                .fold(0usize, |acc, f| acc + f.unwrap_or(0))
        });
        let bs = median_time(runs, || {
            values
                .iter()
                .map(|v| partition.fragment_of(v))
                .fold(0usize, |acc, f| acc + f.unwrap_or(0))
        });
        out.row(vec![
            n.to_string(),
            fmt_ms(case),
            fmt_ms(bs),
            format!("{:.1}x", case.as_secs_f64() / bs.as_secs_f64().max(1e-9)),
        ]);
    }
    format!(
        "Fig. 12a — creating singleton sketches (crimes, {} rows)\n{}",
        values.len(),
        out.render()
    )
}

/// Fig. 12b: merging singleton sketches with the byte-wise BITOR baseline vs
/// the `delay` and `delay + no-copy` optimizations.
pub fn fig12b(runs: usize) -> String {
    let db = datasets::movies_db();
    let table = db.table("ratings").expect("ratings table");
    let values = table.column_values("movieid").expect("movieid column");
    let mut out = TablePrinter::new(&[
        "#fragments",
        "bitor (ms)",
        "delay (ms)",
        "delay+no-copy (ms)",
    ]);
    for &n in &[32usize, 64, 128, 256, 400, 1_000, 4_000, 10_000] {
        let partition =
            RangePartition::equi_depth("ratings", "movieid", &values, n).expect("partition");
        let fragments: Vec<u32> = values
            .iter()
            .filter_map(|v| partition.fragment_of(v))
            .map(|f| f as u32)
            .collect();
        let nbits = partition.num_fragments();
        let merge_all = |strategy: MergeStrategy| {
            let mut acc = Annotation::Empty;
            for &f in &fragments {
                acc.merge(&Annotation::Single(f), nbits, strategy);
            }
            acc.to_bitset(nbits).count()
        };
        let bitor = median_time(runs, || merge_all(MergeStrategy::BytewiseBitor));
        let delay = median_time(runs, || merge_all(MergeStrategy::Delay));
        let nocopy = median_time(runs, || merge_all(MergeStrategy::DelayNoCopy));
        out.row(vec![
            n.to_string(),
            fmt_ms(bitor),
            fmt_ms(delay),
            fmt_ms(nocopy),
        ]);
    }
    format!(
        "Fig. 12b — merging sketches ({} rating rows)\n{}",
        values.len(),
        out.render()
    )
}

// ---------------------------------------------------------------------------
// Fig. 9 — sketch selectivity for TPC-H
// ---------------------------------------------------------------------------

/// Fig. 9: the fraction of the sketched relation covered by the provenance
/// sketch of each TPC-H query, varying the number of fragments.
pub fn fig9() -> String {
    let db = datasets::tpch(datasets::TpchScale::Small);
    let pbds = Pbds::new(db);
    let mut out = TablePrinter::new(&["query", "relation", "PS32", "PS64", "PS400", "PS4000"]);
    for query in tpch::queries() {
        let mut cells = vec![query.name.clone(), query.sketch.table().to_string()];
        for &fragments in TPCH_FRAGMENTS {
            match capture_sketch_for(&pbds, &query, fragments) {
                Ok((sketch, _)) => {
                    let sel = sketch.selectivity(pbds.db()).unwrap_or(1.0);
                    cells.push(fmt_pct(sel));
                }
                Err(e) => cells.push(format!("err:{e}")),
            }
        }
        out.row(cells);
    }
    format!(
        "Fig. 9 — provenance sketch selectivity (TPC-H-like, {} lineitem rows)\n{}",
        pbds.db().table("lineitem").map(|t| t.len()).unwrap_or(0),
        out.render()
    )
}

// ---------------------------------------------------------------------------
// Fig. 11 — TPC-H capture & use
// ---------------------------------------------------------------------------

/// Fig. 11 (a/b for the small scale, d/e for the large scale): per-query
/// runtime without PBDS, runtime using a sketch, capture overhead; for the
/// indexed (Postgres-like) engine profile and the binary-search predicate.
pub fn fig11_tpch(scale: datasets::TpchScale, profile: EngineProfile, runs: usize) -> String {
    let db = datasets::tpch(scale);
    let pbds = Pbds::with_profile(db, profile);
    let mut out = TablePrinter::new(&[
        "query",
        "#frag",
        "No-PS (ms)",
        "PS use (ms)",
        "speedup",
        "capture (ms)",
        "capture ovh",
        "sketch sel",
        "rows No-PS",
        "rows PS",
    ]);
    for query in tpch::queries() {
        for &fragments in &[64usize, 400] {
            match measure_query(
                &pbds,
                &query,
                fragments,
                UsePredicateStyle::BinarySearch,
                runs,
            ) {
                Ok(m) => out.row(vec![
                    m.query.clone(),
                    m.fragments.to_string(),
                    fmt_ms(m.plain),
                    fmt_ms(m.with_sketch),
                    format!("{:.2}x", m.speedup()),
                    fmt_ms(m.capture),
                    fmt_pct(m.capture_overhead()),
                    fmt_pct(m.selectivity),
                    m.rows_scanned_plain.to_string(),
                    m.rows_scanned_sketch.to_string(),
                ]),
                Err(e) => out.row(vec![
                    query.name.clone(),
                    fragments.to_string(),
                    format!("err:{e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]),
            }
        }
    }
    format!(
        "Fig. 11 — TPC-H capture & use [{}, {}]\n{}",
        scale.label(),
        profile.label(),
        out.render()
    )
}

/// Fig. 11c: binary-search membership vs an explicit OR of range conditions
/// for selective sketches.
pub fn fig11c(runs: usize) -> String {
    let db = datasets::tpch(datasets::TpchScale::Small);
    let pbds = Pbds::new(db);
    let mut out = TablePrinter::new(&["query", "#frag", "BS (ms)", "OR (ms)"]);
    for query in tpch::queries() {
        let fragments = 400;
        let bs = measure_query(
            &pbds,
            &query,
            fragments,
            UsePredicateStyle::BinarySearch,
            runs,
        );
        let or = measure_query(
            &pbds,
            &query,
            fragments,
            UsePredicateStyle::OrConditions,
            runs,
        );
        if let (Ok(bs), Ok(or)) = (bs, or) {
            out.row(vec![
                query.name.clone(),
                fragments.to_string(),
                fmt_ms(bs.with_sketch),
                fmt_ms(or.with_sketch),
            ]);
        }
    }
    format!(
        "Fig. 11c — BS vs OR sketch predicates (SF-small)\n{}",
        out.render()
    )
}

// ---------------------------------------------------------------------------
// Fig. 10 — real-world datasets
// ---------------------------------------------------------------------------

/// Fig. 10: use-time and capture overhead for the Crimes, Movies and Stack
/// Overflow query sets.
pub fn fig10(runs: usize) -> String {
    let mut report = String::new();
    let sections: Vec<(&str, Pbds, Vec<BenchQuery>, Vec<usize>)> = vec![
        (
            "Crimes (PSMIX over group-by attributes)",
            Pbds::new(datasets::crimes_db()),
            crimes::queries(),
            vec![0],
        ),
        (
            "Movies",
            Pbds::new(datasets::movies_db()),
            movies::queries(),
            vec![400, 4000],
        ),
        (
            "Stack Overflow",
            Pbds::new(datasets::sof_db()),
            sof::queries(),
            vec![1000, 4000],
        ),
    ];
    for (label, pbds, queries, fragment_options) in sections {
        let mut out = TablePrinter::new(&[
            "query",
            "#frag",
            "No-PS (ms)",
            "PS use (ms)",
            "improvement",
            "capture ovh",
            "sketch sel",
        ]);
        for query in &queries {
            for &fragments in &fragment_options {
                match measure_query(
                    &pbds,
                    query,
                    fragments.max(1),
                    UsePredicateStyle::BinarySearch,
                    runs,
                ) {
                    Ok(m) => out.row(vec![
                        m.query.clone(),
                        m.fragments.to_string(),
                        fmt_ms(m.plain),
                        fmt_ms(m.with_sketch),
                        fmt_pct(
                            1.0 - m.with_sketch.as_secs_f64() / m.plain.as_secs_f64().max(1e-9),
                        ),
                        fmt_pct(m.capture_overhead()),
                        fmt_pct(m.selectivity),
                    ]),
                    Err(e) => out.row(vec![
                        query.name.clone(),
                        fragments.to_string(),
                        format!("err:{e}"),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                    ]),
                }
            }
        }
        report.push_str(&format!("Fig. 10 — {label}\n{}\n", out.render()));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 14 — amortizing capture cost
// ---------------------------------------------------------------------------

/// Fig. 14: for each TPC-H query, the interval of query repetitions for which
/// each option (No-PS or a fragment count) minimizes total cost
/// `C_cap + n · C_use` vs `n · C_NoPS`.
pub fn fig14(runs: usize) -> String {
    let db = datasets::tpch(datasets::TpchScale::Small);
    let pbds = Pbds::new(db);
    let mut out = TablePrinter::new(&["query", "option", "optimal for #repetitions"]);
    for query in tpch::queries() {
        // Candidate options: No-PS plus a few fragment counts.
        let mut options: Vec<(String, f64, f64)> = vec![];
        let plain = match measure_query(&pbds, &query, 64, UsePredicateStyle::BinarySearch, runs) {
            Ok(m) => m,
            Err(_) => continue,
        };
        options.push(("No-PS".to_string(), 0.0, plain.plain.as_secs_f64()));
        for &fragments in &[64usize, 400, 4000] {
            if let Ok(m) = measure_query(
                &pbds,
                &query,
                fragments,
                UsePredicateStyle::BinarySearch,
                runs,
            ) {
                options.push((
                    format!("PS{}", m.fragments),
                    m.capture.as_secs_f64(),
                    m.with_sketch.as_secs_f64(),
                ));
            }
        }
        // For n = 1..=10_000 find the cheapest option and report intervals.
        let cost = |opt: &(String, f64, f64), n: f64| opt.1 + opt.2 * n;
        let mut current: Option<(String, u64)> = None;
        let mut intervals: Vec<(String, u64, Option<u64>)> = Vec::new();
        for n in 1..=10_000u64 {
            let best = options
                .iter()
                .min_by(|a, b| cost(a, n as f64).total_cmp(&cost(b, n as f64)))
                .expect("at least one option")
                .0
                .clone();
            match &mut current {
                Some((name, _)) if *name == best => {}
                Some((name, start)) => {
                    intervals.push((name.clone(), *start, Some(n)));
                    current = Some((best, n));
                }
                None => current = Some((best, n)),
            }
        }
        if let Some((name, start)) = current {
            intervals.push((name, start, None));
        }
        for (name, start, end) in intervals {
            let range = match end {
                Some(e) => format!("[{start}, {e})"),
                None => format!("[{start}, inf)"),
            };
            out.row(vec![query.name.clone(), name, range]);
        }
    }
    format!(
        "Fig. 14 — optimal #fragments as a function of query repetitions (SF-small)\n{}",
        out.render()
    )
}

// ---------------------------------------------------------------------------
// Fig. 13 — end-to-end self-tuning workloads
// ---------------------------------------------------------------------------

/// Parameters of one end-to-end run.
#[derive(Debug, Clone, Copy)]
pub struct EndToEndConfig {
    /// Number of query instances.
    pub queries: usize,
    /// Mean of the normal distribution used for HAVING thresholds.
    pub mean: f64,
    /// Standard deviation of the parameter distribution.
    pub sdv: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Result of one end-to-end run: cumulative wall-clock per strategy.
#[derive(Debug, Clone)]
pub struct EndToEndResult {
    /// Strategy label → cumulative runtime after each query.
    pub series: Vec<(String, Vec<Duration>)>,
    /// Number of sketches captured per strategy.
    pub captured: Vec<(String, usize)>,
}

fn run_end_to_end(
    db: &pbds_storage::Database,
    templates: &[pbds_algebra::QueryTemplate],
    config: &EndToEndConfig,
    strategies: &[(&str, Strategy)],
    fragments: usize,
) -> EndToEndResult {
    // Generate the instance sequence once so every strategy sees the same
    // workload (template chosen uniformly, parameters normally distributed).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let workload: Vec<(pbds_algebra::QueryTemplate, Vec<Value>)> = (0..config.queries)
        .map(|_| {
            let t = templates[rng.gen_range(0..templates.len())].clone();
            let binding: Vec<Value> = (0..t.num_params())
                .map(|i| {
                    if i == 0 {
                        Value::Int(normal(&mut rng, config.mean, config.sdv).max(1.0) as i64)
                    } else {
                        // Interval parameters: start point and width.
                        Value::Int(rng.gen_range(0..15))
                    }
                })
                .collect();
            (t, binding)
        })
        .collect();

    let mut series = Vec::new();
    let mut captured = Vec::new();
    for (label, strategy) in strategies {
        let mut exec =
            pbds_core::SelfTuningExecutor::new(db, EngineProfile::Indexed, *strategy, fragments);
        let records = exec.run_workload(&workload).expect("workload run");
        series.push((label.to_string(), cumulative_elapsed(&records)));
        captured.push((
            label.to_string(),
            records
                .iter()
                .filter(|r| r.action == Action::Capture)
                .count(),
        ));
    }
    EndToEndResult { series, captured }
}

fn render_end_to_end(title: &str, result: &EndToEndResult) -> String {
    let n = result.series.first().map(|(_, s)| s.len()).unwrap_or(0);
    let checkpoints: Vec<usize> = [n / 10, n / 4, n / 2, 3 * n / 4, n]
        .iter()
        .filter(|&&c| c > 0)
        .copied()
        .collect();
    let mut header = vec!["strategy".to_string(), "#captured".to_string()];
    header.extend(checkpoints.iter().map(|c| format!("cum @{c} (ms)")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut out = TablePrinter::new(&header_refs);
    for ((label, series), (_, ncap)) in result.series.iter().zip(result.captured.iter()) {
        let mut row = vec![label.clone(), ncap.to_string()];
        for &c in &checkpoints {
            row.push(fmt_ms(series[c - 1]));
        }
        out.row(row);
    }
    format!("{title}\n{}", out.render())
}

/// Fig. 13a: Crimes end-to-end workload mixing four templates (eager
/// strategy vs no PBDS).
pub fn fig13_crimes(queries: usize) -> String {
    let db = datasets::crimes_small_db();
    let templates = crimes::end_to_end_templates();
    let result = run_end_to_end(
        &db,
        &templates,
        &EndToEndConfig {
            queries,
            mean: 700.0,
            sdv: 150.0,
            seed: 99,
        },
        &[
            ("No-PS", Strategy::NoPbds),
            (
                "eager",
                Strategy::Eager {
                    selectivity_threshold: 0.75,
                },
            ),
        ],
        64,
    );
    render_end_to_end(
        &format!("Fig. 13a — Crimes end-to-end, {queries} queries, mixed templates"),
        &result,
    )
}

/// Fig. 13c–13h: Stack Overflow end-to-end workload with the adaptive
/// strategy, sweeping parameter spread (SDV) and selectivity.
pub fn fig13_sof(queries: usize) -> String {
    let db = datasets::sof_small_db();
    let templates = sof::end_to_end_templates();
    let mut report = String::new();
    for (label, mean, sdv) in [
        ("SDV small (clustered parameters)", 30.0, 3.0),
        ("SDV large (spread parameters)", 30.0, 15.0),
        ("high threshold (more selective)", 60.0, 5.0),
        ("low threshold (less selective)", 12.0, 5.0),
    ] {
        let result = run_end_to_end(
            &db,
            &templates,
            &EndToEndConfig {
                queries,
                mean,
                sdv,
                seed: 7,
            },
            &[
                ("No-PS", Strategy::NoPbds),
                (
                    "adaptive",
                    Strategy::Adaptive {
                        selectivity_threshold: 0.75,
                        evidence_threshold: 2,
                    },
                ),
            ],
            1000,
        );
        report.push_str(&render_end_to_end(
            &format!("Fig. 13c-h — Stack Overflow end-to-end, {queries} queries, {label}"),
            &result,
        ));
        report.push('\n');
    }
    report
}

// ---------------------------------------------------------------------------
// Sec. 9.5 — safety / reuse check overhead
// ---------------------------------------------------------------------------

/// The overhead of the safety and reuse checks themselves (the paper reports
/// ~20 ms per check with Z3; our special-purpose solver is much faster).
pub fn check_overhead(runs: usize) -> String {
    let db = datasets::sof_small_db();
    let templates = sof::end_to_end_templates();
    let mut out = TablePrinter::new(&["template", "safety check (ms)", "reuse check (ms)"]);
    for template in &templates {
        let checker = SafetyChecker::new(&db);
        let attrs = checker.candidate_attributes(template.plan());
        let safety = median_time(runs, || checker.check(template.plan(), &attrs).safe);
        let reuse = ReuseChecker::new(&db);
        let reuse_time = median_time(runs, || {
            reuse
                .can_reuse(template, &[Value::Int(30)], &[Value::Int(40)])
                .reusable
        });
        out.row(vec![
            template.name().to_string(),
            fmt_ms(safety),
            fmt_ms(reuse_time),
        ]);
    }
    format!(
        "Sec. 9.5 — safety and reuse check overhead (paper: ~20 ms per check)\n{}",
        out.render()
    )
}

// ---------------------------------------------------------------------------
// Running example (sanity figure used in EXPERIMENTS.md)
// ---------------------------------------------------------------------------

/// The paper's running example (Fig. 1): capture the sketch of Q2 on the
/// state partition and verify it is `{f1}` and safe, while the popden
/// partition is unsafe.
pub fn running_example() -> String {
    use pbds_algebra::{col, AggExpr, AggFunc, LogicalPlan, SortKey};
    use pbds_storage::{DataType, Schema, TableBuilder};

    let schema = Schema::from_pairs(&[
        ("popden", DataType::Int),
        ("city", DataType::Str),
        ("state", DataType::Str),
    ]);
    let mut b = TableBuilder::new("cities", schema);
    for (popden, city, state) in [
        (4200, "Anchorage", "AK"),
        (6000, "San Diego", "CA"),
        (5000, "Sacramento", "CA"),
        (7000, "New York", "NY"),
        (2000, "Buffalo", "NY"),
        (3700, "Austin", "TX"),
        (2500, "Houston", "TX"),
    ] {
        b.push(vec![
            Value::Int(popden),
            Value::from(city),
            Value::from(state),
        ]);
    }
    let mut db = pbds_storage::Database::new();
    db.add_table(b.build());

    let q2 = LogicalPlan::scan("cities")
        .aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
        )
        .top_k(vec![SortKey::desc("avgden")], 1);

    let state_part: PartitionRef = Arc::new(Partition::Range(RangePartition::from_uppers(
        "cities",
        "state",
        vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
    )));
    let captured =
        capture_sketches(&db, &q2, &[state_part], &CaptureConfig::optimized()).expect("capture");
    let sketch = &captured.sketches[0];

    let checker = SafetyChecker::new(&db);
    let state_safe = checker
        .check(&q2, &[pbds_core::PartitionAttr::new("cities", "state")])
        .safe;
    let popden_safe = checker
        .check(&q2, &[pbds_core::PartitionAttr::new("cities", "popden")])
        .safe;

    format!(
        "Running example (Fig. 1):\n  sketch of Q2 on F_state = {} (bitset {})\n  \
         safety(state) = {}   safety(popden) = {} (expected: true / false)\n",
        sketch
            .selected_fragments()
            .iter()
            .map(|f| format!("f{}", f + 1))
            .collect::<Vec<_>>()
            .join(","),
        sketch.bitset(),
        state_safe,
        popden_safe
    )
}

// ---------------------------------------------------------------------------
// Capture lookup micro-measurement used by the fig12 criterion bench
// ---------------------------------------------------------------------------

/// Capture a sketch for a crimes query with an explicit lookup method,
/// returning the elapsed time (used by the Criterion benches).
pub fn capture_with_lookup(lookup: LookupMethod, fragments: usize) -> Duration {
    let db = datasets::crimes_small_db();
    let pbds = Pbds::new(db);
    let query = &crimes::queries()[0];
    let plan = query.default_plan();
    let partition = {
        let table = pbds.db().table("crimes").expect("crimes");
        let values = table.column_values("id").expect("id");
        Arc::new(Partition::Range(
            RangePartition::equi_depth("crimes", "id", &values, fragments).expect("partition"),
        ))
    };
    let config = CaptureConfig {
        lookup,
        ..CaptureConfig::optimized()
    };
    let start = clock::Stopwatch::start();
    let _ = pbds
        .capture_with_config(&plan, &[partition], &config)
        .expect("capture");
    start.elapsed()
}

/// Build the partition used by `fig9`-style selectivity checks in tests.
pub fn tpch_partition_for(
    query_name: &str,
    fragments: usize,
) -> Option<(Pbds, BenchQuery, PartitionRef)> {
    let db = datasets::tpch(datasets::TpchScale::Small);
    let pbds = Pbds::new(db);
    let query = tpch::queries().into_iter().find(|q| q.name == query_name)?;
    let partition = build_partition(&pbds, &query.sketch, fragments).ok()?;
    Some((pbds, query, partition))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_reports_expected_sketch_and_safety() {
        let report = running_example();
        assert!(report.contains("= f1 "), "{report}");
        assert!(report.contains("1000"), "{report}");
        assert!(report.contains("true   safety(popden) = false"), "{report}");
    }

    #[test]
    fn fig12a_and_12b_produce_tables() {
        let a = fig12a(1);
        assert!(a.contains("#fragments"));
        assert!(a.lines().count() > 8);
        let b = fig12b(1);
        assert!(b.contains("delay"));
    }

    #[test]
    fn end_to_end_run_produces_monotone_series() {
        let db = datasets::crimes_small_db();
        let templates = crimes::end_to_end_templates();
        let result = run_end_to_end(
            &db,
            &templates,
            &EndToEndConfig {
                queries: 10,
                mean: 700.0,
                sdv: 100.0,
                seed: 1,
            },
            &[
                ("No-PS", Strategy::NoPbds),
                (
                    "eager",
                    Strategy::Eager {
                        selectivity_threshold: 0.75,
                    },
                ),
            ],
            64,
        );
        assert_eq!(result.series.len(), 2);
        for (_, s) in &result.series {
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
