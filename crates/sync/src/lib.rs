//! # pbds-sync
//!
//! Instrumented synchronization primitives for the PBDS workspace: every
//! lock in `pbds-core` / `pbds-storage` / `pbds-persist` is a
//! [`TrackedMutex`] or [`TrackedRwLock`] with a **static class name**
//! (`"server.persist"`, `"catalog.shard"`, …) instead of a bare
//! `std::sync` primitive. The wrappers buy three things:
//!
//! 1. **Poison recovery by construction.** [`TrackedMutex::lock`],
//!    [`TrackedRwLock::read`] and [`TrackedRwLock::write`] recover from a
//!    poisoned lock instead of returning a `Result`: a panic in one thread
//!    is contained by the server's panic fences, and honoring the poison
//!    flag would turn one contained panic into a permanently wedged
//!    subsystem. This is what makes the workspace lint **L3** ("no
//!    `.unwrap()` / `.expect()` on lock-guard results") mechanically
//!    satisfiable — there is no `Result` left to unwrap.
//!
//! 2. **Lock-order (would-be-deadlock) detection.** When tracking is on
//!    (any `debug_assertions` build, or a release build with the
//!    `lock-order` cargo feature), every acquisition records an edge
//!    *held-class → acquired-class* in a process-wide acquisition-order
//!    graph, in the style of the kernel's lockdep. Acquiring `"A"` while
//!    holding `"B"` after some thread ever acquired `"B"` while holding
//!    `"A"` panics **immediately and deterministically** — at the moment
//!    the inconsistent *order* is attempted, with both lock names and both
//!    acquisition contexts in the message — rather than leaving an ABBA
//!    deadlock to strike when two threads interleave just so.
//!
//! 3. **Hold-time accounting.** Per class, tracking counts acquisitions
//!    and total/max guard hold times ([`hold_stats`]); `pbds-core` surfaces
//!    them through its `RobustnessEvents`.
//!
//! In release builds without the feature, the wrappers are passthroughs
//! over `std::sync` — no graph, no timestamps, no thread-locals; the only
//! cost over a bare `Mutex` is carrying a `&'static str` name.
//!
//! ## Granularity and known blind spots
//!
//! Ordering is tracked per **class** (name), not per instance, like
//! lockdep: two different catalog shards share the class
//! `"catalog.shard"`. Consequences:
//!
//! * An order inconsistency between two *instances* of different classes
//!   is caught even when the particular instances could never deadlock —
//!   that is deliberate: the workspace discipline is a global class order.
//! * Acquisitions of a class while already holding the *same* class are
//!   not checked (sharded/sibling locks of one class are acquired in loops
//!   legitimately); same-class ABBA is out of scope.
//! * A `Condvar` wait keeps the waiting class on the thread's held stack
//!   and inside its hold time, which is conservative for ordering and
//!   makes hold times include waits.

#![warn(missing_docs)]

use std::time::Duration;

/// Hold-time counters for one lock class, cumulative over the process
/// lifetime. Returned by [`hold_stats`]; all zeros are never reported (a
/// class appears once its first guard is dropped or taken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockHoldStat {
    /// The lock class name given to `TrackedMutex::new` / `TrackedRwLock::new`.
    pub name: &'static str,
    /// Guards taken (read and write acquisitions both count).
    pub acquisitions: u64,
    /// Total wall-clock time guards of this class were held (including
    /// condvar waits while parked on the class's mutex).
    pub total_held: Duration,
    /// Longest single hold.
    pub max_held: Duration,
}

#[cfg(any(debug_assertions, feature = "lock-order"))]
mod imp {
    use super::LockHoldStat;
    use pbds_telemetry::clock;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{
        Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock, PoisonError, RwLock as StdRwLock,
    };
    use std::time::Instant;

    /// One lock class: identity in the order graph plus hold counters.
    struct ClassInfo {
        id: usize,
        name: &'static str,
        acquisitions: AtomicU64,
        total_held_nanos: AtomicU64,
        max_held_nanos: AtomicU64,
    }

    /// The process-wide acquisition-order graph. `edges[a]` containing `b`
    /// means: some thread acquired class `b` while holding class `a`.
    /// `contexts[(a, b)]` describes the first time that happened.
    #[derive(Default)]
    struct Graph {
        edges: HashMap<usize, HashSet<usize>>,
        contexts: HashMap<(usize, usize), String>,
    }

    struct Registry {
        classes: StdMutex<HashMap<&'static str, Arc<ClassInfo>>>,
        graph: StdMutex<Graph>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| Registry {
            classes: StdMutex::new(HashMap::new()),
            graph: StdMutex::new(Graph::default()),
        })
    }

    fn class_for(name: &'static str) -> Arc<ClassInfo> {
        let mut classes = registry()
            .classes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let next_id = classes.len();
        Arc::clone(classes.entry(name).or_insert_with(|| {
            Arc::new(ClassInfo {
                id: next_id,
                name,
                acquisitions: AtomicU64::new(0),
                total_held_nanos: AtomicU64::new(0),
                max_held_nanos: AtomicU64::new(0),
            })
        }))
    }

    thread_local! {
        /// Class ids of the locks this thread currently holds, in
        /// acquisition order (duplicates possible for same-class guards).
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    /// True iff `to` is reachable from `from` over recorded edges.
    fn reachable(graph: &Graph, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = graph.edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Record `held → acquiring` edges and panic on a would-be cycle.
    /// Runs *before* blocking on the real lock, so an inconsistent order is
    /// reported even when the other thread is currently parked on ours.
    fn check_order(acquiring: &ClassInfo, held_names: &[&'static str], held_ids: &[usize]) {
        let unique: HashSet<usize> = held_ids
            .iter()
            .copied()
            .filter(|&h| h != acquiring.id)
            .collect();
        if unique.is_empty() {
            return;
        }
        let mut graph = registry()
            .graph
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for h in unique {
            if graph
                .edges
                .get(&h)
                .is_some_and(|next| next.contains(&acquiring.id))
            {
                continue; // edge already known consistent
            }
            // A new edge h → acquiring closes a cycle iff `h` is already
            // reachable *from* `acquiring`.
            if reachable(&graph, acquiring.id, h) {
                let held_name = registry()
                    .classes
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .find(|c| c.id == h)
                    .map(|c| c.name)
                    .unwrap_or("?");
                let prior = graph
                    .contexts
                    .get(&(acquiring.id, h))
                    .cloned()
                    .unwrap_or_else(|| {
                        format!(
                            "\"{held_name}\" was earlier ordered after \"{}\"",
                            acquiring.name
                        )
                    });
                panic!(
                    "pbds-sync lock-order violation (would-be deadlock): this \
                     thread is acquiring \"{}\" while holding {:?}, but the \
                     reverse order was established before: {}",
                    acquiring.name, held_names, prior
                );
            }
            graph.edges.entry(h).or_default().insert(acquiring.id);
            graph.contexts.insert(
                (h, acquiring.id),
                format!(
                    "\"{}\" was acquired while holding {:?}",
                    acquiring.name, held_names
                ),
            );
        }
    }

    /// RAII bookkeeping for one held guard: pops the held stack and records
    /// hold time on drop. Declared *after* the inner std guard in every
    /// wrapper, so the real lock is released first.
    struct Hold {
        class: Arc<ClassInfo>,
        since: Instant,
    }

    impl Hold {
        fn acquire(class: &Arc<ClassInfo>) -> Hold {
            let (names, ids) = HELD
                .try_with(|held| {
                    let held = held.borrow();
                    let classes = registry()
                        .classes
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    let names: Vec<&'static str> = held
                        .iter()
                        .map(|&id| {
                            classes
                                .values()
                                .find(|c| c.id == id)
                                .map(|c| c.name)
                                .unwrap_or("?")
                        })
                        .collect();
                    (names, held.clone())
                })
                .unwrap_or_default();
            check_order(class, &names, &ids);
            class.acquisitions.fetch_add(1, Ordering::Relaxed);
            let _ = HELD.try_with(|held| held.borrow_mut().push(class.id));
            Hold {
                class: Arc::clone(class),
                since: clock::now(),
            }
        }
    }

    impl Drop for Hold {
        fn drop(&mut self) {
            let nanos = u64::try_from(self.since.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.class
                .total_held_nanos
                .fetch_add(nanos, Ordering::Relaxed);
            self.class
                .max_held_nanos
                .fetch_max(nanos, Ordering::Relaxed);
            let id = self.class.id;
            // Guards may drop out of LIFO order; remove *this* class's most
            // recent entry. The thread-local may already be torn down during
            // thread exit — then there is nothing left to pop.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&h| h == id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// A named mutex whose acquisitions are lock-order-checked and timed.
    pub struct TrackedMutex<T> {
        class: OnceLock<Arc<ClassInfo>>,
        name: &'static str,
        inner: StdMutex<T>,
    }

    impl<T> TrackedMutex<T> {
        /// A new mutex belonging to lock class `name`.
        pub fn new(name: &'static str, value: T) -> Self {
            TrackedMutex {
                class: OnceLock::new(),
                name,
                inner: StdMutex::new(value),
            }
        }

        fn class(&self) -> &Arc<ClassInfo> {
            self.class.get_or_init(|| class_for(self.name))
        }

        /// Acquire, recovering from poisoning. Panics (instead of
        /// deadlocking later) when the acquisition order is inconsistent
        /// with an order any thread used before.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let hold = Hold::acquire(self.class());
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            MutexGuard {
                inner: Some(inner),
                _hold: hold,
            }
        }

        /// The lock class name.
        pub fn name(&self) -> &'static str {
            self.name
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("TrackedMutex")
                .field("name", &self.name)
                .field("inner", &self.inner)
                .finish()
        }
    }

    /// Guard of a [`TrackedMutex`]. Field order matters: the inner guard
    /// drops (releasing the lock) before the hold bookkeeping runs.
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        _hold: Hold,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present outside wait")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard present outside wait")
        }
    }

    /// A named reader-writer lock; read and write acquisitions share the
    /// class for ordering purposes (conservative).
    pub struct TrackedRwLock<T> {
        class: OnceLock<Arc<ClassInfo>>,
        name: &'static str,
        inner: StdRwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// A new rwlock belonging to lock class `name`.
        pub fn new(name: &'static str, value: T) -> Self {
            TrackedRwLock {
                class: OnceLock::new(),
                name,
                inner: StdRwLock::new(value),
            }
        }

        fn class(&self) -> &Arc<ClassInfo> {
            self.class.get_or_init(|| class_for(self.name))
        }

        /// Acquire shared, recovering from poisoning; order-checked.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let hold = Hold::acquire(self.class());
            let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            RwLockReadGuard { inner, _hold: hold }
        }

        /// Acquire exclusive, recovering from poisoning; order-checked.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let hold = Hold::acquire(self.class());
            let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
            RwLockWriteGuard { inner, _hold: hold }
        }

        /// The lock class name.
        pub fn name(&self) -> &'static str {
            self.name
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("TrackedRwLock")
                .field("name", &self.name)
                .field("inner", &self.inner)
                .finish()
        }
    }

    /// Shared guard of a [`TrackedRwLock`].
    pub struct RwLockReadGuard<'a, T> {
        inner: std::sync::RwLockReadGuard<'a, T>,
        _hold: Hold,
    }

    impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    /// Exclusive guard of a [`TrackedRwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        inner: std::sync::RwLockWriteGuard<'a, T>,
        _hold: Hold,
    }

    impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Condition variable usable with [`MutexGuard`]. Waiting keeps the
    /// class on the held stack (the mutex is reacquired before `wait`
    /// returns) and inside the guard's hold time.
    #[derive(Default)]
    pub struct TrackedCondvar {
        inner: StdCondvar,
    }

    impl TrackedCondvar {
        /// A new condition variable.
        pub fn new() -> Self {
            TrackedCondvar::default()
        }

        /// Wait, recovering from poisoning.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let inner = guard.inner.take().expect("guard present outside wait");
            guard.inner = Some(
                self.inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner),
            );
            guard
        }

        /// Wait until `condition` returns false, recovering from poisoning.
        pub fn wait_while<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            mut condition: impl FnMut(&mut T) -> bool,
        ) -> MutexGuard<'a, T> {
            while condition(&mut guard) {
                guard = self.wait(guard);
            }
            guard
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl std::fmt::Debug for TrackedCondvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("TrackedCondvar")
        }
    }

    /// True: this build tracks lock orders and hold times.
    pub fn tracking_enabled() -> bool {
        true
    }

    /// Per-class hold counters, sorted by class name.
    pub fn hold_stats() -> Vec<LockHoldStat> {
        let classes = registry()
            .classes
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut stats: Vec<LockHoldStat> = classes
            .values()
            .map(|c| LockHoldStat {
                name: c.name,
                acquisitions: c.acquisitions.load(Ordering::Relaxed),
                total_held: std::time::Duration::from_nanos(
                    c.total_held_nanos.load(Ordering::Relaxed),
                ),
                max_held: std::time::Duration::from_nanos(c.max_held_nanos.load(Ordering::Relaxed)),
            })
            .filter(|s| s.acquisitions > 0)
            .collect();
        stats.sort_by_key(|s| s.name);
        stats
    }
}

#[cfg(not(any(debug_assertions, feature = "lock-order")))]
mod imp {
    use super::LockHoldStat;
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, PoisonError, RwLock as StdRwLock};

    /// A named mutex; in this build a zero-cost passthrough over
    /// `std::sync::Mutex` with poison recovery.
    #[derive(Debug)]
    pub struct TrackedMutex<T> {
        name: &'static str,
        inner: StdMutex<T>,
    }

    /// Guard of a [`TrackedMutex`] (the std guard itself in this build).
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    /// Shared guard of a [`TrackedRwLock`] (the std guard in this build).
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Exclusive guard of a [`TrackedRwLock`] (the std guard in this build).
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    impl<T> TrackedMutex<T> {
        /// A new mutex belonging to lock class `name`.
        pub fn new(name: &'static str, value: T) -> Self {
            TrackedMutex {
                name,
                inner: StdMutex::new(value),
            }
        }

        /// Acquire, recovering from poisoning.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// The lock class name.
        pub fn name(&self) -> &'static str {
            self.name
        }
    }

    /// A named reader-writer lock; passthrough in this build.
    #[derive(Debug)]
    pub struct TrackedRwLock<T> {
        name: &'static str,
        inner: StdRwLock<T>,
    }

    impl<T> TrackedRwLock<T> {
        /// A new rwlock belonging to lock class `name`.
        pub fn new(name: &'static str, value: T) -> Self {
            TrackedRwLock {
                name,
                inner: StdRwLock::new(value),
            }
        }

        /// Acquire shared, recovering from poisoning.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        }

        /// Acquire exclusive, recovering from poisoning.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        }

        /// The lock class name.
        pub fn name(&self) -> &'static str {
            self.name
        }
    }

    /// Condition variable usable with [`MutexGuard`]; passthrough.
    #[derive(Debug, Default)]
    pub struct TrackedCondvar {
        inner: StdCondvar,
    }

    impl TrackedCondvar {
        /// A new condition variable.
        pub fn new() -> Self {
            TrackedCondvar::default()
        }

        /// Wait, recovering from poisoning.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner)
        }

        /// Wait until `condition` returns false, recovering from poisoning.
        pub fn wait_while<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            mut condition: impl FnMut(&mut T) -> bool,
        ) -> MutexGuard<'a, T> {
            while condition(&mut guard) {
                guard = self.wait(guard);
            }
            guard
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// False: this build is the zero-cost passthrough.
    pub fn tracking_enabled() -> bool {
        false
    }

    /// Always empty in this build.
    pub fn hold_stats() -> Vec<LockHoldStat> {
        Vec::new()
    }
}

pub use imp::{
    hold_stats, tracking_enabled, MutexGuard, RwLockReadGuard, RwLockWriteGuard, TrackedCondvar,
    TrackedMutex, TrackedRwLock,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_read_write_roundtrip() {
        let m = TrackedMutex::new("test.sync.m", 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.name(), "test.sync.m");
        let rw = TrackedRwLock::new("test.sync.rw", vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(TrackedMutex::new("test.sync.poison", 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // Must not panic or deadlock: the value is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_while_works() {
        let pair = Arc::new((
            TrackedMutex::new("test.sync.cv", false),
            TrackedCondvar::new(),
        ));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let g = cv.wait_while(m.lock(), |ready| !*ready);
        assert!(*g);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn consistent_order_never_panics() {
        if !tracking_enabled() {
            return;
        }
        let a = TrackedMutex::new("test.sync.ord.a", ());
        let b = TrackedMutex::new("test.sync.ord.b", ());
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
    }

    #[test]
    fn abba_order_is_reported_with_both_names() {
        if !tracking_enabled() {
            return;
        }
        let a = Arc::new(TrackedMutex::new("test.sync.abba.A", ()));
        let b = Arc::new(TrackedMutex::new("test.sync.abba.B", ()));
        // Establish A → B on this thread.
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // The reverse order on another thread must panic at acquisition
        // time — deterministically, with no interleaving required.
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let err = std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock(); // would-be ABBA
        })
        .join()
        .expect_err("reverse order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test.sync.abba.A"), "message: {msg}");
        assert!(msg.contains("test.sync.abba.B"), "message: {msg}");
        assert!(msg.contains("lock-order violation"), "message: {msg}");
    }

    #[test]
    fn hold_stats_count_acquisitions() {
        let m = TrackedMutex::new("test.sync.stats", ());
        drop(m.lock());
        drop(m.lock());
        let stats = hold_stats();
        if tracking_enabled() {
            let s = stats
                .iter()
                .find(|s| s.name == "test.sync.stats")
                .expect("class reported");
            assert!(s.acquisitions >= 2);
            assert!(s.total_held >= s.max_held);
        } else {
            assert!(stats.is_empty());
        }
    }
}
