//! Zipf-parameterized query streams.
//!
//! The paper's middleware deployment (Sec. 6 / 9.5) serves a *stream* of
//! instances of parameterized queries where parameter values repeat with the
//! skew of real user traffic: a few popular parameter values account for
//! most of the stream, so a sketch captured for a popular binding is reused
//! many times. This module generates such streams: each template owns a
//! ranked pool of candidate bindings, and every stream event draws a
//! template uniformly and a binding rank from a [`Zipf`] distribution —
//! rank 1 (the most popular binding) dominates, the tail provides the
//! misses that keep capture work flowing.

use crate::dist::{normal, Zipf};
use pbds_algebra::QueryTemplate;
use pbds_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a Zipf-parameterized query stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Number of query instances to generate.
    pub queries: usize,
    /// Zipf exponent over binding ranks (`0` = uniform, `≈1` = classic Zipf).
    pub skew: f64,
    /// RNG seed (streams are deterministic given the seed).
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            queries: 200,
            skew: 1.0,
            seed: 17,
        }
    }
}

/// A query template together with its ranked pool of candidate bindings
/// (index 0 = most popular).
#[derive(Debug, Clone)]
pub struct TemplatePool {
    /// The parameterized query.
    pub template: QueryTemplate,
    /// Candidate bindings ordered by popularity.
    pub bindings: Vec<Vec<Value>>,
}

impl TemplatePool {
    /// Create a pool.
    pub fn new(template: QueryTemplate, bindings: Vec<Vec<Value>>) -> Self {
        assert!(!bindings.is_empty(), "a template pool needs bindings");
        TemplatePool { template, bindings }
    }
}

/// Generate a Zipf-parameterized stream over the given template pools.
///
/// Each event picks a template uniformly at random and a binding from the
/// template's pool with Zipf-distributed rank, so popular bindings recur —
/// the reuse opportunity PBDS middleware exploits. The output is a
/// `(template, binding)` sequence ready for
/// `SelfTuningExecutor::run_workload` or `PbdsServer::serve_stream`.
pub fn zipf_stream(pools: &[TemplatePool], spec: &StreamSpec) -> Vec<(QueryTemplate, Vec<Value>)> {
    assert!(!pools.is_empty(), "zipf_stream needs at least one template");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipfs: Vec<Zipf> = pools
        .iter()
        .map(|p| Zipf::new(p.bindings.len(), spec.skew))
        .collect();
    (0..spec.queries)
        .map(|_| {
            let ti = rng.gen_range(0..pools.len());
            let rank = zipfs[ti].sample(&mut rng) - 1;
            (pools[ti].template.clone(), pools[ti].bindings[rank].clone())
        })
        .collect()
}

/// Build template pools for the Stack-Overflow end-to-end templates
/// ([`crate::sof::end_to_end_templates`]): each template gets `pool_size`
/// integer bindings drawn from the paper's normal parameter distribution
/// (mean 30, σ 4 — Sec. 9.5), deduplicated and kept in draw order so that
/// rank 1 is an "ordinary" parameter value rather than an extreme one.
pub fn sof_pools(pool_size: usize, seed: u64) -> Vec<TemplatePool> {
    let mut rng = StdRng::seed_from_u64(seed);
    crate::sof::end_to_end_templates()
        .into_iter()
        .map(|t| {
            let mut bindings: Vec<Vec<Value>> = Vec::with_capacity(pool_size);
            // The truncated normal only yields a few dozen distinct integers,
            // so cap the rejection sampling and top up deterministically —
            // a large `pool_size` must widen the pool, not hang the loop.
            let mut attempts = 0usize;
            while bindings.len() < pool_size && attempts < 50 * pool_size {
                attempts += 1;
                let v = normal(&mut rng, 30.0, 4.0).max(1.0) as i64;
                let b = vec![Value::Int(v)];
                if !bindings.contains(&b) {
                    bindings.push(b);
                }
            }
            let mut next = 1i64;
            while bindings.len() < pool_size {
                let b = vec![Value::Int(next)];
                if !bindings.contains(&b) {
                    bindings.push(b);
                }
                next += 1;
            }
            TemplatePool::new(t, bindings)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn stream_is_deterministic_given_seed() {
        let pools = sof_pools(8, 5);
        let spec = StreamSpec::default();
        let a = zipf_stream(&pools, &spec);
        let b = zipf_stream(&pools, &spec);
        assert_eq!(a.len(), spec.queries);
        for ((ta, ba), (tb, bb)) in a.iter().zip(&b) {
            assert_eq!(ta.name(), tb.name());
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn popular_bindings_dominate_a_skewed_stream() {
        let pools = sof_pools(16, 5);
        let stream = zipf_stream(
            &pools,
            &StreamSpec {
                queries: 2_000,
                skew: 1.2,
                seed: 9,
            },
        );
        // Count occurrences per (template, binding).
        let mut counts: HashMap<(String, String), usize> = HashMap::new();
        for (t, b) in &stream {
            *counts
                .entry((t.name().to_string(), format!("{b:?}")))
                .or_default() += 1;
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        // The head dominates the tail: the hottest binding appears far more
        // often than a fair share (2000 / (3 templates * 16 bindings) ≈ 42).
        assert!(by_count[0] > 100, "head count {}", by_count[0]);
        // And repetition is pervasive: far fewer distinct bindings than
        // stream events, i.e. plenty of reuse opportunities.
        assert!(counts.len() < stream.len() / 4);
    }

    #[test]
    fn uniform_skew_still_repeats_bindings() {
        let pools = sof_pools(4, 5);
        let stream = zipf_stream(
            &pools,
            &StreamSpec {
                queries: 400,
                skew: 0.0,
                seed: 3,
            },
        );
        let distinct: std::collections::HashSet<String> = stream
            .iter()
            .map(|(t, b)| format!("{}{b:?}", t.name()))
            .collect();
        assert!(distinct.len() <= 12); // 3 templates × 4 bindings
    }

    #[test]
    fn oversized_pools_terminate_with_distinct_bindings() {
        // More bindings than the truncated normal has distinct integers:
        // the generator must top up instead of looping forever.
        let pools = sof_pools(200, 7);
        for p in &pools {
            assert_eq!(p.bindings.len(), 200);
            let distinct: std::collections::HashSet<_> =
                p.bindings.iter().map(|b| format!("{b:?}")).collect();
            assert_eq!(distinct.len(), 200);
        }
    }

    #[test]
    #[should_panic(expected = "needs bindings")]
    fn empty_pool_panics() {
        TemplatePool::new(crate::sof::end_to_end_templates().remove(0), vec![]);
    }
}
