//! Random distributions used by the synthetic data generators.
//!
//! The real datasets of the paper (Chicago Crimes, MovieLens, Stack Overflow)
//! owe their PBDS-friendliness to heavy skew: a few areas / movies / users
//! account for most of the rows, so the provenance of a top-k or `HAVING`
//! query is small. A Zipf sampler reproduces that skew; a Box–Muller normal
//! sampler generates the parameter values of the end-to-end workloads
//! (Sec. 9.5 generates parameters from normal distributions).

use rand::Rng;

/// A Zipf-distributed sampler over `1..=n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `1..=n` (n ≥ 1) with skew exponent `s`
    /// (`s = 0` is uniform; `s ≈ 1` is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one element");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize.
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `1..=n` (rank 1 is the most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }

    /// Number of distinct ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Sample from a normal distribution via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Every sample is in range.
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = counts[1..].iter().min().unwrap();
        let max = counts[1..].iter().max().unwrap();
        assert!((*max as f64) < *min as f64 * 1.3);
    }

    #[test]
    fn normal_sampler_has_requested_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 100.0, 15.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 15.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zipf_of_zero_elements_panics() {
        Zipf::new(0, 1.0);
    }
}
