//! A synthetic Stack-Overflow-like workload (Sec. 9.1 / 9.4 / 9.5).
//!
//! Four relations — `users`, `posts`, `comments`, `badges` — with
//! Zipf-distributed user activity. The five queries mirror the paper's
//! S-Q1…S-Q5 (top-10 users by posts / favourites / comments / badges and a
//! `HAVING`-interval query), and the end-to-end templates of Fig. 13c–13h are
//! parameterized `HAVING` variants of them.

use crate::dist::Zipf;
use crate::spec::{BenchQuery, SketchSpec};
use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SofConfig {
    /// Number of users.
    pub users: usize,
    /// Number of posts.
    pub posts: usize,
    /// Number of comments.
    pub comments: usize,
    /// Number of badges.
    pub badges: usize,
    /// Zipf skew of activity across users.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
    /// Zone-map block size.
    pub block_size: usize,
}

impl Default for SofConfig {
    fn default() -> Self {
        SofConfig {
            users: 20_000,
            posts: 120_000,
            comments: 150_000,
            badges: 60_000,
            skew: 1.05,
            seed: 23,
            block_size: 1024,
        }
    }
}

/// Generate the Stack-Overflow-like database.
pub fn generate(config: &SofConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();
    let activity = Zipf::new(config.users, config.skew);

    let users_schema = Schema::from_pairs(&[
        ("userid", DataType::Int),
        ("reputation", DataType::Int),
        ("age", DataType::Int),
    ]);
    let mut users = TableBuilder::new("users", users_schema);
    users.block_size(config.block_size).index("userid");
    for u in 0..config.users as i64 {
        users.push(vec![
            Value::Int(u),
            Value::Int(rng.gen_range(1..100_000)),
            Value::Int(rng.gen_range(14..80)),
        ]);
    }
    db.add_table(users.build());

    let posts_schema = Schema::from_pairs(&[
        ("postid", DataType::Int),
        ("owneruserid", DataType::Int),
        ("favorites", DataType::Int),
        ("score", DataType::Int),
    ]);
    let mut posts = TableBuilder::new("posts", posts_schema);
    posts.block_size(config.block_size).index("owneruserid");
    for p in 0..config.posts as i64 {
        posts.push(vec![
            Value::Int(p),
            Value::Int(activity.sample(&mut rng) as i64 - 1),
            Value::Int(rng.gen_range(0..50)),
            Value::Int(rng.gen_range(-5..100)),
        ]);
    }
    db.add_table(posts.build());

    let comments_schema = Schema::from_pairs(&[
        ("commentid", DataType::Int),
        ("userid", DataType::Int),
        ("score", DataType::Int),
    ]);
    let mut comments = TableBuilder::new("comments", comments_schema);
    comments.block_size(config.block_size).index("userid");
    for c in 0..config.comments as i64 {
        comments.push(vec![
            Value::Int(c),
            Value::Int(activity.sample(&mut rng) as i64 - 1),
            Value::Int(rng.gen_range(0..20)),
        ]);
    }
    db.add_table(comments.build());

    let badges_schema = Schema::from_pairs(&[
        ("badgeid", DataType::Int),
        ("userid", DataType::Int),
        ("class", DataType::Int),
    ]);
    let mut badges = TableBuilder::new("badges", badges_schema);
    badges.block_size(config.block_size).index("userid");
    for b in 0..config.badges as i64 {
        badges.push(vec![
            Value::Int(b),
            Value::Int(activity.sample(&mut rng) as i64 - 1),
            Value::Int(rng.gen_range(1..4)),
        ]);
    }
    db.add_table(badges.build());
    db
}

/// The five Stack Overflow queries of the paper.
pub fn queries() -> Vec<BenchQuery> {
    let topk_over = |name: &str, template_name: &str, table: &str, user_col: &str, agg: AggExpr| {
        BenchQuery::new(
            name,
            QueryTemplate::new(
                template_name,
                LogicalPlan::scan(table)
                    .aggregate(vec![user_col], vec![agg])
                    .top_k(vec![SortKey::desc("metric")], 10),
            ),
            vec![],
            SketchSpec::Range {
                table: table.into(),
                attr: user_col.into(),
            },
        )
    };
    vec![
        // S-Q1: the 10 users with the most posts.
        topk_over(
            "S-Q1",
            "sof-q1",
            "posts",
            "owneruserid",
            AggExpr::new(AggFunc::Count, col("postid"), "metric"),
        ),
        // S-Q2: the 10 owners whose posts are favoured the most.
        topk_over(
            "S-Q2",
            "sof-q2",
            "posts",
            "owneruserid",
            AggExpr::new(AggFunc::Sum, col("favorites"), "metric"),
        ),
        // S-Q3: the 10 users with the most comments.
        topk_over(
            "S-Q3",
            "sof-q3",
            "comments",
            "userid",
            AggExpr::new(AggFunc::Count, col("commentid"), "metric"),
        ),
        // S-Q4: the 10 users with the most badges.
        topk_over(
            "S-Q4",
            "sof-q4",
            "badges",
            "userid",
            AggExpr::new(AggFunc::Count, col("badgeid"), "metric"),
        ),
        // S-Q5: users who posted between $0 and $1 comments.
        BenchQuery::new(
            "S-Q5",
            QueryTemplate::new(
                "sof-q5",
                LogicalPlan::scan("comments")
                    .aggregate(
                        vec!["userid"],
                        vec![AggExpr::new(
                            AggFunc::Count,
                            col("commentid"),
                            "num_comments",
                        )],
                    )
                    .filter(
                        col("num_comments")
                            .ge(param(0))
                            .and(col("num_comments").le(param(1))),
                    ),
            ),
            vec![Value::Int(400), Value::Int(1_000)],
            SketchSpec::Range {
                table: "comments".into(),
                attr: "userid".into(),
            },
        ),
    ]
}

/// End-to-end workload templates for Fig. 13c–13h: `HAVING` versions of
/// S-Q1/S-Q3/S-Q4 with a parameterized lower bound.
pub fn end_to_end_templates() -> Vec<QueryTemplate> {
    let having = |name: &str, table: &str, user_col: &str, id_col: &str| {
        QueryTemplate::new(
            name,
            LogicalPlan::scan(table)
                .aggregate(
                    vec![user_col],
                    vec![AggExpr::new(AggFunc::Count, col(id_col), "cnt")],
                )
                .filter(col("cnt").gt(param(0))),
        )
    };
    vec![
        having("sof-e2e-posts", "posts", "owneruserid", "postid"),
        having("sof-e2e-comments", "comments", "userid", "commentid"),
        having("sof-e2e-badges", "badges", "userid", "badgeid"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_exec::{Engine, EngineProfile};

    fn tiny() -> Database {
        generate(&SofConfig {
            users: 2_000,
            posts: 12_000,
            comments: 15_000,
            badges: 6_000,
            ..Default::default()
        })
    }

    #[test]
    fn generator_builds_all_four_tables() {
        let db = tiny();
        assert_eq!(db.table("users").unwrap().len(), 2_000);
        assert_eq!(db.table("posts").unwrap().len(), 12_000);
        assert_eq!(db.table("comments").unwrap().len(), 15_000);
        assert_eq!(db.table("badges").unwrap().len(), 6_000);
    }

    #[test]
    fn topk_queries_return_ten_users() {
        let db = tiny();
        let engine = Engine::new(EngineProfile::Indexed);
        for q in queries().iter().take(4) {
            let out = engine.execute(&db, &q.default_plan()).unwrap();
            assert_eq!(out.relation.len(), 10, "{}", q.name);
        }
    }

    #[test]
    fn interval_query_returns_heavy_commenters() {
        let db = tiny();
        let engine = Engine::new(EngineProfile::Indexed);
        let q5 = &queries()[4];
        let plan = q5
            .template
            .instantiate(&[Value::Int(50), Value::Int(5_000)]);
        let out = engine.execute(&db, &plan).unwrap();
        assert!(!out.relation.is_empty());
        // All returned counts are within the interval.
        for row in out.relation.rows() {
            let c = row[1].as_i64().unwrap();
            assert!((50..=5_000).contains(&c));
        }
    }

    #[test]
    fn end_to_end_templates_are_single_parameter() {
        for t in end_to_end_templates() {
            assert_eq!(t.num_params(), 1);
        }
    }
}
