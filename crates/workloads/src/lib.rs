//! # pbds-workloads
//!
//! Synthetic workloads reproducing the shape of the datasets and query sets
//! used in the PBDS evaluation (Sec. 9.1): a scaled-down TPC-H-like schema,
//! and generators for the Chicago-Crimes-, MovieLens- and Stack-Overflow-like
//! datasets with the skew that makes the paper's top-k / `HAVING` queries
//! selective in provenance.
//!
//! Every generator is deterministic given its seed so benchmark results are
//! reproducible.

#![warn(missing_docs)]

pub mod crimes;
pub mod dist;
pub mod movies;
pub mod sof;
pub mod spec;
pub mod stream;
pub mod tpch;

pub use dist::{normal, Zipf};
pub use spec::{BenchQuery, SketchSpec};
pub use stream::{sof_pools, zipf_stream, StreamSpec, TemplatePool};
