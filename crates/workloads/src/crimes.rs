//! A synthetic Chicago-Crimes-like workload (Sec. 9.1 / 9.4).
//!
//! The real dataset has ~6.7M incident rows with strongly correlated
//! geographical attributes (community area, block) and heavy skew — a few
//! areas account for a large share of the crimes. The generator reproduces
//! schema shape, correlation (blocks are nested inside areas) and skew
//! (Zipf-distributed area popularity), scaled down to a configurable size.

use crate::dist::Zipf;
use crate::spec::{BenchQuery, SketchSpec};
use pbds_algebra::{col, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrimesConfig {
    /// Number of crime rows.
    pub rows: usize,
    /// Number of community areas (Chicago has 77).
    pub areas: usize,
    /// Blocks per area.
    pub blocks_per_area: usize,
    /// Zipf skew of crimes across areas.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
    /// Zone-map block size.
    pub block_size: usize,
}

impl Default for CrimesConfig {
    fn default() -> Self {
        CrimesConfig {
            rows: 100_000,
            areas: 77,
            blocks_per_area: 40,
            skew: 1.1,
            seed: 7,
            block_size: 1024,
        }
    }
}

/// Generate the `crimes` database: a single fact table
/// `crimes(id, area, block, kind, year, arrest)`.
pub fn generate(config: &CrimesConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let area_dist = Zipf::new(config.areas, config.skew);
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("area", DataType::Int),
        ("block", DataType::Int),
        ("kind", DataType::Int),
        ("year", DataType::Int),
        ("arrest", DataType::Int),
    ]);
    let mut b = TableBuilder::new("crimes", schema);
    b.block_size(config.block_size).index("area").index("block");
    for id in 0..config.rows as i64 {
        let area = area_dist.sample(&mut rng) as i64;
        // Blocks are nested within areas: block ids encode their area, which
        // reproduces the strong geographical correlation of the real data.
        let block =
            area * config.blocks_per_area as i64 + rng.gen_range(0..config.blocks_per_area as i64);
        b.push(vec![
            Value::Int(id),
            Value::Int(area),
            Value::Int(block),
            Value::Int(rng.gen_range(0..31)),
            Value::Int(rng.gen_range(2001..2021)),
            Value::Int(rng.gen_range(0..2)),
        ]);
    }
    let mut db = Database::new();
    db.add_table(b.build());
    db
}

/// The two crimes queries of the paper.
///
/// * `C-Q1`: the $0 areas with the most crimes (top-k over a group-by);
/// * `C-Q2`: the number of blocks where more than $0 crimes took place
///   (two-level aggregation with HAVING).
pub fn queries() -> Vec<BenchQuery> {
    vec![
        BenchQuery::new(
            "C-Q1",
            QueryTemplate::new(
                "crimes-q1",
                LogicalPlan::scan("crimes")
                    .aggregate(
                        vec!["area"],
                        vec![AggExpr::new(AggFunc::Count, col("id"), "crimes")],
                    )
                    .top_k(vec![SortKey::desc("crimes")], 5),
            ),
            vec![],
            SketchSpec::Composite {
                table: "crimes".into(),
                attrs: vec!["area".into()],
            },
        ),
        BenchQuery::new(
            "C-Q2",
            QueryTemplate::new(
                "crimes-q2",
                LogicalPlan::scan("crimes")
                    .aggregate(
                        vec!["block"],
                        vec![AggExpr::new(AggFunc::Count, col("id"), "crimes")],
                    )
                    .filter(col("crimes").gt(param(0)))
                    .aggregate(
                        vec![],
                        vec![AggExpr::new(AggFunc::Count, col("block"), "blocks")],
                    ),
            ),
            vec![Value::Int(120)],
            SketchSpec::Composite {
                table: "crimes".into(),
                attrs: vec!["block".into()],
            },
        ),
    ]
}

/// The end-to-end workload templates of Fig. 13a/13b: `HAVING` variants of
/// the crimes queries with parameterized thresholds and an area filter.
pub fn end_to_end_templates() -> Vec<QueryTemplate> {
    vec![
        // Areas with more than $0 crimes.
        QueryTemplate::new(
            "crimes-e2e-areas",
            LogicalPlan::scan("crimes")
                .aggregate(
                    vec!["area"],
                    vec![AggExpr::new(AggFunc::Count, col("id"), "crimes")],
                )
                .filter(col("crimes").gt(param(0))),
        ),
        // Blocks with more than $0 crimes.
        QueryTemplate::new(
            "crimes-e2e-blocks",
            LogicalPlan::scan("crimes")
                .aggregate(
                    vec!["block"],
                    vec![AggExpr::new(AggFunc::Count, col("id"), "crimes")],
                )
                .filter(col("crimes").gt(param(0))),
        ),
        // Blocks with more than $0 arrests within an interval of kinds
        // ($1 <= kind < $2) — exercises interval parameters.
        QueryTemplate::new(
            "crimes-e2e-kinds",
            LogicalPlan::scan("crimes")
                .filter(col("kind").ge(param(1)).and(col("kind").lt(param(2))))
                .aggregate(
                    vec!["block"],
                    vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
                )
                .filter(col("cnt").gt(param(0))),
        ),
        // Areas whose yearly arrests exceed $0 for recent years ($1 <= year).
        QueryTemplate::new(
            "crimes-e2e-years",
            LogicalPlan::scan("crimes")
                .filter(col("year").ge(param(1)))
                .aggregate(
                    vec!["area"],
                    vec![AggExpr::new(AggFunc::Sum, col("arrest"), "arrests")],
                )
                .filter(col("arrests").gt(param(0))),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_exec::{Engine, EngineProfile};

    fn tiny() -> Database {
        generate(&CrimesConfig {
            rows: 20_000,
            ..Default::default()
        })
    }

    #[test]
    fn generator_produces_skewed_correlated_data() {
        let db = tiny();
        let crimes = db.table("crimes").unwrap();
        assert_eq!(crimes.len(), 20_000);
        // Skew: the most common area has far more rows than the median one.
        let mut per_area = std::collections::HashMap::new();
        for row in crimes.rows() {
            *per_area.entry(row[1].clone()).or_insert(0usize) += 1;
        }
        let mut counts: Vec<usize> = per_area.values().copied().collect();
        counts.sort_unstable();
        assert!(counts[counts.len() - 1] > counts[counts.len() / 2] * 3);
        // Correlation: every block belongs to exactly one area.
        for row in crimes.rows().iter().take(1000) {
            let area = row[1].as_i64().unwrap();
            let block = row[2].as_i64().unwrap();
            assert_eq!(block / 40, area);
        }
    }

    #[test]
    fn crimes_queries_execute() {
        let db = tiny();
        let engine = Engine::new(EngineProfile::Indexed);
        for q in queries() {
            let out = engine.execute(&db, &q.default_plan()).unwrap();
            assert!(!out.relation.is_empty(), "{} empty", q.name);
        }
        assert_eq!(
            engine
                .execute(&db, &queries()[0].default_plan())
                .unwrap()
                .relation
                .len(),
            5
        );
    }

    #[test]
    fn end_to_end_templates_have_expected_parameters() {
        let templates = end_to_end_templates();
        assert_eq!(templates.len(), 4);
        assert_eq!(templates[0].num_params(), 1);
        assert_eq!(templates[2].num_params(), 3);
        let db = tiny();
        let engine = Engine::new(EngineProfile::Indexed);
        let plan = templates[2].instantiate(&[Value::Int(5), Value::Int(3), Value::Int(10)]);
        engine.execute(&db, &plan).unwrap();
    }
}
