//! A scaled-down TPC-H-like workload (Sec. 9.3 of the paper).
//!
//! The generator produces the six relations the paper's TPC-H experiments
//! touch (`customer`, `orders`, `lineitem`, `part`, `supplier`, `partsupp`)
//! with the standard cardinality ratios, scaled by a configurable factor.
//! The query set contains structural analogues of the TPC-H templates used
//! in Fig. 9 / Fig. 11 / Fig. 14 — top-k and `HAVING` aggregates over joins —
//! rather than the verbatim SQL (deep nested subqueries are out of scope of
//! our algebra; DESIGN.md documents the substitution).

use crate::spec::{BenchQuery, SketchSpec};
use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Scale factor relative to TPC-H (SF 1 ≈ 6M lineitem rows). The default
    /// of 0.01 keeps the workload laptop-sized while preserving the
    /// cardinality ratios between relations.
    pub scale: f64,
    /// RNG seed (all generators are deterministic given the seed).
    pub seed: u64,
    /// Zone-map block size for all generated tables.
    pub block_size: usize,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            seed: 42,
            block_size: 512,
        }
    }
}

impl TpchConfig {
    fn customers(&self) -> usize {
        ((150_000.0 * self.scale) as usize).max(100)
    }
    fn orders(&self) -> usize {
        self.customers() * 10
    }
    fn lineitems_per_order(&self) -> usize {
        4
    }
    fn parts(&self) -> usize {
        ((200_000.0 * self.scale) as usize).max(200)
    }
    fn suppliers(&self) -> usize {
        ((10_000.0 * self.scale) as usize).max(20)
    }
}

const NATIONS: i64 = 25;
/// Order dates span 1992-01-01 .. 1998-12-31, encoded as day offsets.
const DATE_MIN: i64 = 0;
const DATE_MAX: i64 = 2555;

/// Generate the TPC-H-like database.
pub fn generate(config: &TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();

    // supplier(s_suppkey, s_nationkey, s_acctbal)
    let supplier_schema = Schema::from_pairs(&[
        ("s_suppkey", DataType::Int),
        ("s_nationkey", DataType::Int),
        ("s_acctbal", DataType::Int),
    ]);
    let mut supplier = TableBuilder::new("supplier", supplier_schema);
    supplier.block_size(config.block_size).index("s_suppkey");
    let n_suppliers = config.suppliers();
    for sk in 0..n_suppliers as i64 {
        supplier.push(vec![
            Value::Int(sk),
            Value::Int(rng.gen_range(0..NATIONS)),
            Value::Int(rng.gen_range(-999..10_000)),
        ]);
    }
    db.add_table(supplier.build());

    // part(p_partkey, p_brand, p_size, p_retailprice)
    let part_schema = Schema::from_pairs(&[
        ("p_partkey", DataType::Int),
        ("p_brand", DataType::Int),
        ("p_size", DataType::Int),
        ("p_retailprice", DataType::Int),
    ]);
    let mut part = TableBuilder::new("part", part_schema);
    part.block_size(config.block_size).index("p_partkey");
    let n_parts = config.parts();
    for pk in 0..n_parts as i64 {
        part.push(vec![
            Value::Int(pk),
            Value::Int(rng.gen_range(0..25)),
            Value::Int(rng.gen_range(1..51)),
            Value::Int(900 + rng.gen_range(0..1100)),
        ]);
    }
    db.add_table(part.build());

    // partsupp(ps_partkey, ps_suppkey, ps_supplycost, ps_availqty)
    let partsupp_schema = Schema::from_pairs(&[
        ("ps_partkey", DataType::Int),
        ("ps_suppkey", DataType::Int),
        ("ps_supplycost", DataType::Int),
        ("ps_availqty", DataType::Int),
    ]);
    let mut partsupp = TableBuilder::new("partsupp", partsupp_schema);
    partsupp.block_size(config.block_size).index("ps_partkey");
    for pk in 0..n_parts as i64 {
        for s in 0..4 {
            partsupp.push(vec![
                Value::Int(pk),
                Value::Int((pk * 7 + s) % n_suppliers as i64),
                Value::Int(rng.gen_range(1..1000)),
                Value::Int(rng.gen_range(1..10_000)),
            ]);
        }
    }
    db.add_table(partsupp.build());

    // customer(c_custkey, c_nationkey, c_acctbal, c_mktsegment)
    let customer_schema = Schema::from_pairs(&[
        ("c_custkey", DataType::Int),
        ("c_nationkey", DataType::Int),
        ("c_acctbal", DataType::Int),
        ("c_mktsegment", DataType::Int),
    ]);
    let mut customer = TableBuilder::new("customer", customer_schema);
    customer.block_size(config.block_size).index("c_custkey");
    let n_customers = config.customers();
    for ck in 0..n_customers as i64 {
        customer.push(vec![
            Value::Int(ck),
            Value::Int(rng.gen_range(0..NATIONS)),
            Value::Int(rng.gen_range(-999..10_000)),
            Value::Int(rng.gen_range(0..5)),
        ]);
    }
    db.add_table(customer.build());

    // orders(o_orderkey, o_custkey, o_orderdate, o_totalprice)
    let orders_schema = Schema::from_pairs(&[
        ("o_orderkey", DataType::Int),
        ("o_custkey", DataType::Int),
        ("o_orderdate", DataType::Int),
        ("o_totalprice", DataType::Int),
    ]);
    let mut orders = TableBuilder::new("orders", orders_schema);
    orders
        .block_size(config.block_size)
        .index("o_orderkey")
        .index("o_custkey");
    let n_orders = config.orders();
    let mut order_dates = Vec::with_capacity(n_orders);
    for ok in 0..n_orders as i64 {
        let date = rng.gen_range(DATE_MIN..=DATE_MAX);
        order_dates.push(date);
        orders.push(vec![
            Value::Int(ok),
            Value::Int(rng.gen_range(0..n_customers as i64)),
            Value::Int(date),
            Value::Int(rng.gen_range(1_000..500_000)),
        ]);
    }
    db.add_table(orders.build());

    // lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice,
    //          l_discount, l_shipdate, l_receiptdelay)
    let lineitem_schema = Schema::from_pairs(&[
        ("l_orderkey", DataType::Int),
        ("l_partkey", DataType::Int),
        ("l_suppkey", DataType::Int),
        ("l_quantity", DataType::Int),
        ("l_extendedprice", DataType::Int),
        ("l_discount", DataType::Int),
        ("l_shipdate", DataType::Int),
        ("l_receiptdelay", DataType::Int),
    ]);
    let mut lineitem = TableBuilder::new("lineitem", lineitem_schema);
    lineitem
        .block_size(config.block_size)
        .index("l_orderkey")
        .index("l_suppkey")
        .index("l_partkey");
    for ok in 0..n_orders as i64 {
        let lines = 1 + rng.gen_range(0..config.lineitems_per_order() as i64 * 2 - 1);
        for _ in 0..lines {
            let qty = rng.gen_range(1..51);
            let price = qty * rng.gen_range(900..2000);
            lineitem.push(vec![
                Value::Int(ok),
                Value::Int(rng.gen_range(0..n_parts as i64)),
                Value::Int(rng.gen_range(0..n_suppliers as i64)),
                Value::Int(qty),
                Value::Int(price),
                Value::Int(rng.gen_range(0..11)),
                Value::Int(order_dates[ok as usize] + rng.gen_range(1..122)),
                Value::Int(rng.gen_range(-30..60)),
            ]);
        }
    }
    db.add_table(lineitem.build());

    db
}

/// The TPC-H-like query set used by the figures.
///
/// Each entry is a structural analogue of the corresponding TPC-H template:
/// the same join shape and the same top-k / HAVING pattern over the same
/// fact-table grouping attribute, with selection constants turned into
/// parameters.
#[allow(clippy::vec_init_then_push)]
pub fn queries() -> Vec<BenchQuery> {
    let revenue = || {
        col("l_extendedprice")
            .mul(lit(100).sub(col("l_discount")))
            .div(lit(100))
    };
    let mut out = Vec::new();

    // Q1 analogue: per-quantity-bucket aggregate over (almost) all of
    // lineitem — provenance covers ~95% of the input, PBDS not beneficial.
    out.push(BenchQuery::new(
        "Q1",
        QueryTemplate::new(
            "tpch-q1",
            LogicalPlan::scan("lineitem")
                .filter(col("l_shipdate").le(param(0)))
                .aggregate(
                    vec!["l_discount"],
                    vec![
                        AggExpr::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
                        AggExpr::new(AggFunc::Sum, col("l_extendedprice"), "sum_price"),
                        AggExpr::new(AggFunc::Count, col("l_orderkey"), "count_order"),
                    ],
                ),
        ),
        vec![Value::Int(DATE_MAX - 90)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_discount".into(),
        },
    ));

    // Q3 analogue: top-10 orders by revenue for one market segment.
    out.push(BenchQuery::new(
        "Q3",
        QueryTemplate::new(
            "tpch-q3",
            LogicalPlan::scan("customer")
                .filter(col("c_mktsegment").eq(param(0)))
                .join(LogicalPlan::scan("orders"), "c_custkey", "o_custkey")
                .join(LogicalPlan::scan("lineitem"), "o_orderkey", "l_orderkey")
                .aggregate(
                    vec!["o_orderkey"],
                    vec![AggExpr::new(AggFunc::Sum, revenue(), "revenue")],
                )
                .top_k(vec![SortKey::desc("revenue")], 10),
        ),
        vec![Value::Int(1)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_orderkey".into(),
        },
    ));

    // Q5 analogue: revenue per supplier nation in a date window, top-5.
    out.push(BenchQuery::new(
        "Q5",
        QueryTemplate::new(
            "tpch-q5",
            LogicalPlan::scan("orders")
                .filter(
                    col("o_orderdate")
                        .ge(param(0))
                        .and(col("o_orderdate").lt(param(1))),
                )
                .join(LogicalPlan::scan("lineitem"), "o_orderkey", "l_orderkey")
                .join(LogicalPlan::scan("supplier"), "l_suppkey", "s_suppkey")
                .aggregate(
                    vec!["s_nationkey"],
                    vec![AggExpr::new(AggFunc::Sum, revenue(), "revenue")],
                )
                .top_k(vec![SortKey::desc("revenue")], 5),
        ),
        vec![Value::Int(0), Value::Int(365)],
        // The fact-table attribute is not *provably* safe for a top-k over
        // per-nation sums, so the sketch is built over the group-by attribute
        // (the paper's fallback policy, Sec. 9.3).
        SketchSpec::Range {
            table: "supplier".into(),
            attr: "s_nationkey".into(),
        },
    ));

    // Q10 analogue: top-20 customers by revenue within a date window.
    out.push(BenchQuery::new(
        "Q10",
        QueryTemplate::new(
            "tpch-q10",
            LogicalPlan::scan("orders")
                .filter(
                    col("o_orderdate")
                        .ge(param(0))
                        .and(col("o_orderdate").lt(param(1))),
                )
                .join(LogicalPlan::scan("lineitem"), "o_orderkey", "l_orderkey")
                .aggregate(
                    vec!["o_custkey"],
                    vec![AggExpr::new(AggFunc::Sum, revenue(), "revenue")],
                )
                .top_k(vec![SortKey::desc("revenue")], 20),
        ),
        vec![Value::Int(200), Value::Int(290)],
        // Sketch over the group-by attribute o_custkey (safe by Case 1 of the
        // aggregation rule); orders carries an ordered index on it.
        SketchSpec::Range {
            table: "orders".into(),
            attr: "o_custkey".into(),
        },
    ));

    // Q15 analogue: the supplier with the highest revenue.
    out.push(BenchQuery::new(
        "Q15",
        QueryTemplate::new(
            "tpch-q15",
            LogicalPlan::scan("lineitem")
                .filter(
                    col("l_shipdate")
                        .ge(param(0))
                        .and(col("l_shipdate").lt(param(1))),
                )
                .aggregate(
                    vec!["l_suppkey"],
                    vec![AggExpr::new(AggFunc::Sum, revenue(), "total_revenue")],
                )
                .top_k(vec![SortKey::desc("total_revenue")], 1),
        ),
        vec![Value::Int(100), Value::Int(190)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_suppkey".into(),
        },
    ));

    // Q17 analogue: parts whose total ordered quantity stays below a bound.
    out.push(BenchQuery::new(
        "Q17",
        QueryTemplate::new(
            "tpch-q17",
            LogicalPlan::scan("lineitem")
                .aggregate(
                    vec!["l_partkey"],
                    vec![AggExpr::new(AggFunc::Sum, col("l_quantity"), "total_qty")],
                )
                .filter(col("total_qty").lt(param(0)))
                .aggregate(
                    vec![],
                    vec![AggExpr::new(
                        AggFunc::Count,
                        col("l_partkey"),
                        "small_parts",
                    )],
                ),
        ),
        vec![Value::Int(40)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_partkey".into(),
        },
    ));

    // Q18 analogue: top-100 large orders by total quantity with a HAVING.
    out.push(BenchQuery::new(
        "Q18",
        QueryTemplate::new(
            "tpch-q18",
            LogicalPlan::scan("lineitem")
                .aggregate(
                    vec!["l_orderkey"],
                    vec![AggExpr::new(AggFunc::Sum, col("l_quantity"), "total_qty")],
                )
                .filter(col("total_qty").gt(param(0)))
                .top_k(vec![SortKey::desc("total_qty")], 100),
        ),
        vec![Value::Int(220)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_orderkey".into(),
        },
    ));

    // Q19 analogue: revenue of a narrow quantity/size band across a join.
    out.push(BenchQuery::new(
        "Q19",
        QueryTemplate::new(
            "tpch-q19",
            LogicalPlan::scan("lineitem")
                .filter(
                    col("l_quantity")
                        .ge(param(0))
                        .and(col("l_quantity").le(param(1))),
                )
                .join(LogicalPlan::scan("part"), "l_partkey", "p_partkey")
                .filter(col("p_size").le(param(2)))
                .aggregate(
                    vec![],
                    vec![AggExpr::new(AggFunc::Sum, revenue(), "revenue")],
                ),
        ),
        vec![Value::Int(48), Value::Int(50), Value::Int(5)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_partkey".into(),
        },
    ));

    // Q21 analogue: top-100 suppliers by number of late shipments.
    out.push(BenchQuery::new(
        "Q21",
        QueryTemplate::new(
            "tpch-q21",
            LogicalPlan::scan("lineitem")
                .filter(col("l_receiptdelay").gt(param(0)))
                .aggregate(
                    vec!["l_suppkey"],
                    vec![AggExpr::new(AggFunc::Count, col("l_orderkey"), "numwait")],
                )
                .top_k(vec![SortKey::desc("numwait")], 100),
        ),
        vec![Value::Int(45)],
        SketchSpec::Range {
            table: "lineitem".into(),
            attr: "l_suppkey".into(),
        },
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_exec::{Engine, EngineProfile};

    fn tiny() -> Database {
        generate(&TpchConfig {
            scale: 0.002,
            seed: 1,
            block_size: 128,
        })
    }

    #[test]
    fn generator_respects_cardinality_ratios() {
        let db = tiny();
        let customers = db.table("customer").unwrap().len();
        let orders = db.table("orders").unwrap().len();
        let lineitems = db.table("lineitem").unwrap().len();
        assert_eq!(orders, customers * 10);
        assert!(lineitems > orders * 2 && lineitems < orders * 8);
        for t in ["supplier", "part", "partsupp"] {
            assert!(!db.table(t).unwrap().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(
            a.table("lineitem").unwrap().rows()[..50],
            b.table("lineitem").unwrap().rows()[..50]
        );
    }

    #[test]
    fn all_queries_execute_and_produce_rows() {
        let db = tiny();
        let engine = Engine::new(EngineProfile::Indexed);
        for q in queries() {
            let out = engine.execute(&db, &q.default_plan()).unwrap();
            assert!(
                !out.relation.is_empty() || q.name == "Q19",
                "query {} returned no rows",
                q.name
            );
        }
    }

    #[test]
    fn topk_queries_are_selective_in_provenance() {
        // Q18's provenance is the set of lineitems of qualifying orders — a
        // small fraction of the table.
        let db = tiny();
        let q18 = queries().into_iter().find(|q| q.name == "Q18").unwrap();
        let lineage = pbds_provenance::capture_lineage(&db, &q18.default_plan()).unwrap();
        let frac =
            lineage.rows_of("lineitem").len() as f64 / db.table("lineitem").unwrap().len() as f64;
        assert!(frac < 0.3, "provenance fraction {frac}");
    }
}
