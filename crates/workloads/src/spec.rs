//! Common description of a benchmark query: its template, default parameter
//! binding and the partition the paper's experiments would sketch it on.

use pbds_algebra::QueryTemplate;
use pbds_storage::Value;

/// How the evaluation builds the provenance sketch for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchSpec {
    /// Range partition on a single attribute (the common case; Sec. 9.3).
    Range {
        /// Partitioned table.
        table: String,
        /// Partitioning attribute.
        attr: String,
    },
    /// Composite (PSMIX) partition over the group-by attributes (Sec. 9.4).
    Composite {
        /// Partitioned table.
        table: String,
        /// Partitioning attributes.
        attrs: Vec<String>,
    },
}

impl SketchSpec {
    /// The partitioned table.
    pub fn table(&self) -> &str {
        match self {
            SketchSpec::Range { table, .. } | SketchSpec::Composite { table, .. } => table,
        }
    }
}

/// A query of the evaluation workloads, ready to be run by the benchmark
/// harness.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Short name matching the paper (e.g. `Q3`, `C-Q1`, `S-Q5`).
    pub name: String,
    /// The parameterized query.
    pub template: QueryTemplate,
    /// Default parameter binding used by the per-query experiments.
    pub default_binding: Vec<Value>,
    /// How to build the sketch for this query.
    pub sketch: SketchSpec,
}

impl BenchQuery {
    /// Create a benchmark query description.
    pub fn new(
        name: impl Into<String>,
        template: QueryTemplate,
        default_binding: Vec<Value>,
        sketch: SketchSpec,
    ) -> Self {
        BenchQuery {
            name: name.into(),
            template,
            default_binding,
            sketch,
        }
    }

    /// Instantiate the template with its default binding.
    pub fn default_plan(&self) -> pbds_algebra::LogicalPlan {
        self.template.instantiate(&self.default_binding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, param, LogicalPlan};

    #[test]
    fn bench_query_instantiates_with_default_binding() {
        let template =
            QueryTemplate::new("t", LogicalPlan::scan("r").filter(col("a").gt(param(0))));
        let q = BenchQuery::new(
            "Q-test",
            template,
            vec![Value::Int(5)],
            SketchSpec::Range {
                table: "r".into(),
                attr: "a".into(),
            },
        );
        assert!(q.default_plan().params().is_empty());
        assert_eq!(q.sketch.table(), "r");
    }
}
