//! A synthetic MovieLens-like workload (Sec. 9.1 / 9.4).
//!
//! Two relations — a small `movies` dimension and a large `ratings` fact
//! table — with Zipf-distributed movie popularity, so that the top-k /
//! HAVING queries of the paper have small provenance.

use crate::dist::Zipf;
use crate::spec::{BenchQuery, SketchSpec};
use pbds_algebra::{col, lit, param, AggExpr, AggFunc, LogicalPlan, QueryTemplate, SortKey};
use pbds_storage::{DataType, Database, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct MoviesConfig {
    /// Number of movies.
    pub movies: usize,
    /// Number of ratings.
    pub ratings: usize,
    /// Zipf skew of ratings across movies.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
    /// Zone-map block size.
    pub block_size: usize,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        MoviesConfig {
            movies: 5_000,
            ratings: 200_000,
            skew: 1.0,
            seed: 13,
            block_size: 1024,
        }
    }
}

/// Generate the movies database: `movies(movieid, year, genre)` and
/// `ratings(movieid, userid, rating, tagged)`.
pub fn generate(config: &MoviesConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new();

    let movies_schema = Schema::from_pairs(&[
        ("movieid", DataType::Int),
        ("year", DataType::Int),
        ("genre", DataType::Int),
    ]);
    let mut movies = TableBuilder::new("movies", movies_schema);
    movies.block_size(config.block_size).index("movieid");
    for m in 0..config.movies as i64 {
        movies.push(vec![
            Value::Int(m),
            Value::Int(rng.gen_range(1930..2021)),
            Value::Int(rng.gen_range(0..20)),
        ]);
    }
    db.add_table(movies.build());

    let ratings_schema = Schema::from_pairs(&[
        ("movieid", DataType::Int),
        ("userid", DataType::Int),
        ("rating", DataType::Int),
        ("tagged", DataType::Int),
    ]);
    let mut ratings = TableBuilder::new("ratings", ratings_schema);
    ratings.block_size(config.block_size).index("movieid");
    let popularity = Zipf::new(config.movies, config.skew);
    let users = (config.ratings / 20).max(10);
    for _ in 0..config.ratings {
        let movie = popularity.sample(&mut rng) as i64 - 1;
        ratings.push(vec![
            Value::Int(movie),
            Value::Int(rng.gen_range(0..users as i64)),
            Value::Int(rng.gen_range(1..6)),
            Value::Int(if rng.gen_bool(0.1) { 1 } else { 0 }),
        ]);
    }
    db.add_table(ratings.build());
    db
}

/// The three movies queries of the paper.
pub fn queries() -> Vec<BenchQuery> {
    vec![
        // M-Q1: the 10 movies with the most ratings.
        BenchQuery::new(
            "M-Q1",
            QueryTemplate::new(
                "movies-q1",
                LogicalPlan::scan("ratings")
                    .aggregate(
                        vec!["movieid"],
                        vec![AggExpr::new(AggFunc::Count, col("userid"), "num_ratings")],
                    )
                    .top_k(vec![SortKey::desc("num_ratings")], 10),
            ),
            vec![],
            SketchSpec::Range {
                table: "ratings".into(),
                attr: "movieid".into(),
            },
        ),
        // M-Q2: the number of movies with more than $0 ratings.
        BenchQuery::new(
            "M-Q2",
            QueryTemplate::new(
                "movies-q2",
                LogicalPlan::scan("ratings")
                    .aggregate(
                        vec!["movieid"],
                        vec![AggExpr::new(AggFunc::Count, col("userid"), "num_ratings")],
                    )
                    .filter(col("num_ratings").gt(param(0)))
                    .aggregate(
                        vec![],
                        vec![AggExpr::new(AggFunc::Count, col("movieid"), "movies")],
                    ),
            ),
            vec![Value::Int(600)],
            SketchSpec::Range {
                table: "ratings".into(),
                attr: "movieid".into(),
            },
        ),
        // M-Q3: the 10 most popular movies where popularity is a weighted sum
        // of the number of ratings and the number of times a movie was tagged.
        BenchQuery::new(
            "M-Q3",
            QueryTemplate::new(
                "movies-q3",
                LogicalPlan::scan("ratings")
                    .aggregate(
                        vec!["movieid"],
                        vec![
                            AggExpr::new(AggFunc::Count, col("userid"), "num_ratings"),
                            AggExpr::new(AggFunc::Sum, col("tagged"), "num_tags"),
                        ],
                    )
                    .project(vec![
                        (col("movieid"), "movieid"),
                        (
                            col("num_ratings").add(col("num_tags").mul(lit(5))),
                            "popularity",
                        ),
                    ])
                    .top_k(vec![SortKey::desc("popularity")], 10),
            ),
            vec![],
            SketchSpec::Range {
                table: "ratings".into(),
                attr: "movieid".into(),
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_exec::{Engine, EngineProfile};

    fn tiny() -> Database {
        generate(&MoviesConfig {
            movies: 500,
            ratings: 20_000,
            ..Default::default()
        })
    }

    #[test]
    fn generator_produces_both_tables_with_skew() {
        let db = tiny();
        assert_eq!(db.table("movies").unwrap().len(), 500);
        assert_eq!(db.table("ratings").unwrap().len(), 20_000);
        let mut per_movie = std::collections::HashMap::new();
        for row in db.table("ratings").unwrap().rows() {
            *per_movie.entry(row[0].clone()).or_insert(0usize) += 1;
        }
        let max = per_movie.values().max().unwrap();
        let avg = 20_000 / per_movie.len();
        assert!(*max > avg * 5, "max {max}, avg {avg}");
    }

    #[test]
    fn movie_queries_execute_and_topk_sizes_match() {
        let db = tiny();
        let engine = Engine::new(EngineProfile::Indexed);
        let qs = queries();
        assert_eq!(
            engine
                .execute(&db, &qs[0].default_plan())
                .unwrap()
                .relation
                .len(),
            10
        );
        assert_eq!(
            engine
                .execute(&db, &qs[2].default_plan())
                .unwrap()
                .relation
                .len(),
            10
        );
        // M-Q2 with a threshold scaled to the tiny dataset.
        let plan = qs[1].template.instantiate(&[Value::Int(60)]);
        let out = engine.execute(&db, &plan).unwrap();
        assert_eq!(out.relation.len(), 1);
    }
}
