//! # pbds-telemetry
//!
//! The observability seam of the PBDS workspace: every other crate reports
//! *through* this one instead of growing its own ad-hoc counters.
//!
//! Three layers, bottom-up:
//!
//! * [`clock`] — the **one** place library code may read wall-clock time.
//!   The `pbds-audit` lint L6 forbids `Instant::now` / `SystemTime::now`
//!   everywhere else, so tests and future deterministic-replay work have a
//!   single seam to virtualize.
//! * [`metrics`] / [`hist`] — a registry of named [`Counter`]s, [`Gauge`]s
//!   and log-linear (HDR-style) [`Histogram`]s. The hot path is lock-free
//!   atomics (the registry mutex is touched only at registration);
//!   [`Registry::snapshot`] produces a deterministic [`MetricsSnapshot`]
//!   renderable to Prometheus-style text exposition via a `String`-returning
//!   API (no stdout — library crates stay L2-clean).
//! * [`span`](crate::span()) / [`span!`] — a span tracer recording
//!   start/duration events into per-thread ring buffers and a bounded global
//!   event journal. Compiled to zero-cost no-ops unless `debug_assertions`
//!   or `--features telemetry` (the same dual-implementation pattern as
//!   `pbds-sync` lock tracking); the journal is dumped into
//!   `RecoveryReport`-style forensics when a server fail-stops.
//!
//! The crate has **no dependencies** — it sits at the bottom of the
//! workspace graph so `pbds-sync`, `pbds-exec`, `pbds-core`, `pbds-persist`
//! and the benches can all report through it.

#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod metrics;
mod spans;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge, MetricsSnapshot, Registry};
pub use spans::{
    journal, render_journal, span, spans_enabled, take_thread_events, SpanEvent, SpanGuard,
};

/// Open a span guard for `phase`: records one [`SpanEvent`] (start + wall
/// duration) when the guard drops. Compiled to a no-op unit guard unless
/// `debug_assertions` or `--features telemetry`.
///
/// ```
/// let _g = pbds_telemetry::span!("reuse-check");
/// // ... the phase ...
/// // guard drop records the span (when tracing is armed)
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
