//! Span-based tracing: phase guards, per-thread ring buffers, and a bounded
//! global event journal.
//!
//! The same dual-implementation pattern as `pbds-sync` lock tracking: with
//! `debug_assertions` or `--features telemetry` the tracer is armed — a
//! [`SpanGuard`] stamps its start offset at creation and records one
//! [`SpanEvent`] on drop, into both the dropping thread's bounded ring
//! buffer and the process-wide journal (oldest events evicted first). In a
//! plain release build every function here compiles to a no-op and
//! [`SpanGuard`] is a zero-sized unit, so instrumented call sites cost
//! nothing — the acceptance bar the `pbds-sync` passthrough set.
//!
//! The journal is the forensic record: when a server fail-stops it renders
//! the journal (via [`render_journal`]) into its `RecoveryReport`-style
//! diagnostics, showing the last phases every thread went through before
//! the health lattice hit bottom.

/// One recorded span: a named phase with its start offset (nanoseconds since
/// the process telemetry epoch) and wall duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name given to [`span`](crate::span()).
    pub name: &'static str,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Nanoseconds from the telemetry epoch to span start.
    pub start_ns: u64,
    /// Span wall duration in nanoseconds.
    pub dur_ns: u64,
}

#[cfg(any(debug_assertions, feature = "telemetry"))]
mod imp {
    use super::SpanEvent;
    use crate::clock;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Per-thread ring capacity.
    const THREAD_RING_CAP: usize = 256;
    /// Global journal capacity (bounded: forensics keep the recent tail).
    const JOURNAL_CAP: usize = 1024;

    fn journal_store() -> &'static Mutex<VecDeque<SpanEvent>> {
        static JOURNAL: OnceLock<Mutex<VecDeque<SpanEvent>>> = OnceLock::new();
        JOURNAL.get_or_init(|| Mutex::new(VecDeque::with_capacity(JOURNAL_CAP)))
    }

    fn thread_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        thread_local! {
            static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
        }
        ID.with(|id| *id)
    }

    thread_local! {
        static RING: RefCell<VecDeque<SpanEvent>> =
            RefCell::new(VecDeque::with_capacity(THREAD_RING_CAP));
    }

    /// Whether span recording is armed in this build.
    pub fn spans_enabled() -> bool {
        true
    }

    /// An open span; records one [`SpanEvent`] when dropped.
    #[must_use = "a span guard records on drop; binding it to `_` drops immediately"]
    pub struct SpanGuard {
        name: &'static str,
        start_ns: u64,
        sw: clock::Stopwatch,
    }

    /// Open a span for `name`.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start_ns: clock::nanos_since_start(),
            sw: clock::Stopwatch::start(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let event = SpanEvent {
                name: self.name,
                thread: thread_id(),
                start_ns: self.start_ns,
                dur_ns: self.sw.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            };
            // Thread ring (bounded, oldest out).
            let _ = RING.try_with(|ring| {
                let mut ring = ring.borrow_mut();
                if ring.len() == THREAD_RING_CAP {
                    ring.pop_front();
                }
                ring.push_back(event);
            });
            // Global journal (bounded, oldest out).
            let mut journal = journal_store()
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if journal.len() == JOURNAL_CAP {
                journal.pop_front();
            }
            journal.push_back(event);
        }
    }

    /// Drain the calling thread's span ring (oldest first).
    pub fn take_thread_events() -> Vec<SpanEvent> {
        RING.try_with(|ring| ring.borrow_mut().drain(..).collect())
            .unwrap_or_default()
    }

    /// The current global journal contents, oldest first.
    pub fn journal() -> Vec<SpanEvent> {
        journal_store()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }
}

#[cfg(not(any(debug_assertions, feature = "telemetry")))]
mod imp {
    use super::SpanEvent;

    /// Whether span recording is armed in this build.
    pub fn spans_enabled() -> bool {
        false
    }

    /// Zero-sized no-op span guard (tracing disarmed in this build).
    #[must_use = "a span guard records on drop; binding it to `_` drops immediately"]
    pub struct SpanGuard;

    /// Open a span for `name` (no-op in this build).
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Drain the calling thread's span ring (always empty in this build).
    pub fn take_thread_events() -> Vec<SpanEvent> {
        Vec::new()
    }

    /// The current global journal contents (always empty in this build).
    pub fn journal() -> Vec<SpanEvent> {
        Vec::new()
    }
}

pub use imp::{journal, span, spans_enabled, take_thread_events, SpanGuard};

/// Render the event journal as human-readable forensics, oldest first —
/// the block a fail-stopping server embeds in its diagnostics. Empty string
/// when tracing is disarmed or nothing was recorded.
pub fn render_journal() -> String {
    let events = journal();
    let mut out = String::new();
    for e in &events {
        out.push_str(&format!(
            "t=+{:>12.6}ms th{:<3} {:<24} {:>10.3}us\n",
            e.start_ns as f64 / 1e6,
            e.thread,
            e.name,
            e.dur_ns as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests compile with debug_assertions, so the armed implementation
    // is always under test here; the zero-cost passthrough is exercised by
    // the release-mode integration suite.
    #[test]
    fn spans_record_into_ring_and_journal() {
        assert!(spans_enabled());
        let _ = take_thread_events(); // isolate from other tests on this thread
        {
            let _g = crate::span!("unit-phase");
        }
        let mine = take_thread_events();
        assert!(mine.iter().any(|e| e.name == "unit-phase"), "{mine:?}");
        assert!(journal().iter().any(|e| e.name == "unit-phase"));
        let rendered = render_journal();
        assert!(rendered.contains("unit-phase"), "{rendered}");
    }

    #[test]
    fn nested_spans_close_inner_first() {
        let _ = take_thread_events();
        {
            let _outer = span("outer-phase");
            let _inner = span("inner-phase");
        }
        let events = take_thread_events();
        let inner = events.iter().position(|e| e.name == "inner-phase");
        let outer = events.iter().position(|e| e.name == "outer-phase");
        assert!(
            inner < outer,
            "inner span must record before outer: {events:?}"
        );
    }

    #[test]
    fn thread_rings_are_bounded() {
        let _ = take_thread_events();
        for _ in 0..1000 {
            let _g = span("bounded-phase");
        }
        assert!(take_thread_events().len() <= 256);
        assert!(journal().len() <= 1024);
    }
}
