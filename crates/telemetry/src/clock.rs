//! The workspace clock seam.
//!
//! All wall-clock reads in PBDS library crates go through these functions —
//! `pbds-audit` lint L6 rejects `Instant::now` / `SystemTime::now` anywhere
//! else. Centralizing the reads keeps timing observable (span and histogram
//! recording share the same time base) and leaves one seam to virtualize if
//! deterministic replay ever needs a mock clock.

use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

/// Monotonic "now". The only sanctioned `Instant::now` in library code.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// Wall-clock "now". The only sanctioned `SystemTime::now` in library code.
#[inline]
pub fn system_now() -> SystemTime {
    SystemTime::now()
}

/// A started stopwatch; sugar over [`now`] for elapsed-time measurements.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start measuring.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch { start: now() }
    }

    /// Time since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// The process-wide time origin: the first call wins, every span timestamp
/// is an offset from it, so events from different threads order coherently.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(now)
}

/// Nanoseconds since the process telemetry epoch (saturating at `u64::MAX`).
pub fn nanos_since_start() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(sw.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn nanos_since_start_is_monotone() {
        let a = nanos_since_start();
        let b = nanos_since_start();
        assert!(b >= a);
    }
}
