//! Log-linear (HDR-style) histograms with lock-free recording.
//!
//! Values are `u64` "raw units" (the time histograms record nanoseconds).
//! Buckets are laid out log-linearly: 16 unit-width buckets cover `[0, 16)`,
//! then every power-of-two octave `[2^k, 2^(k+1))` is split into 16 equal
//! sub-buckets — so any recorded value is attributed to a bucket whose upper
//! bound overstates it by at most 1/16 (6.25 %), at every magnitude. That
//! bound is what makes bucket-estimated p50/p95/p99 trustworthy without
//! storing raw samples.
//!
//! Recording is a single `fetch_add` on the bucket plus one on the running
//! sum — no locks, safe from any thread. Snapshots are deterministic
//! functions of the recorded multiset: the same values in any order (or
//! split across histograms later [`HistogramSnapshot::merge`]d) produce
//! byte-identical snapshots. The property suite in `tests/telemetry.rs`
//! proves both claims.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (16).
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range.
pub const BUCKET_COUNT: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Index of the bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((shift as usize + 1) * SUB as usize) + ((v >> shift) as usize - SUB as usize)
}

/// Largest value attributed to bucket `index` (the bucket's inclusive upper
/// bound; quantiles report this value).
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < SUB as usize {
        return index as u64;
    }
    let g = (index / SUB as usize - 1) as u32;
    let s = (index % SUB as usize) as u64;
    ((SUB + s) << g) + ((1u64 << g) - 1)
}

struct Inner {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    /// Multiplier applied when rendering raw units for exposition (`1e-9`
    /// turns recorded nanoseconds into `_seconds` metrics).
    scale: f64,
}

/// A shareable log-linear histogram handle. Cloning shares the buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(1.0)
    }
}

impl Histogram {
    /// New histogram whose exposition multiplies raw units by `scale`.
    pub fn new(scale: f64) -> Histogram {
        Histogram {
            inner: Arc::new(Inner {
                buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                scale,
            }),
        }
    }

    /// A histogram recording nanoseconds, exposed in seconds.
    pub fn new_seconds() -> Histogram {
        Histogram::new(1e-9)
    }

    /// Record one raw value (lock-free).
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// The exposition scale factor.
    pub fn scale(&self) -> f64 {
        self.inner.scale
    }

    /// Deterministic point-in-time snapshot of the recorded multiset.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut nonzero = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                nonzero.push((i, c));
                count += c;
            }
        }
        HistogramSnapshot {
            scale: self.inner.scale,
            nonzero,
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of a [`Histogram`]: the nonzero `(bucket index, count)`
/// pairs in index order plus total count and raw-unit sum. Two histograms
/// that recorded the same multiset of values — in any order, across any
/// interleaving of merges — snapshot identically.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    scale: f64,
    nonzero: Vec<(usize, u64)>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given exposition scale.
    pub fn empty(scale: f64) -> HistogramSnapshot {
        HistogramSnapshot {
            scale,
            nonzero: Vec::new(),
            count: 0,
            sum: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of raw recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Sum in exposition units (`sum × scale`).
    pub fn sum_scaled(&self) -> f64 {
        self.sum as f64 * self.scale
    }

    /// Exposition scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Nonzero `(bucket upper bound, count)` pairs in increasing bound order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.nonzero.iter().map(|&(i, c)| (bucket_bound(i), c))
    }

    /// Cumulative `(upper bound in exposition units, count ≤ bound)` pairs —
    /// the Prometheus `_bucket{le=...}` series, nonzero buckets only.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.nonzero
            .iter()
            .map(|&(i, c)| {
                cum += c;
                (bucket_bound(i) as f64 * self.scale, cum)
            })
            .collect()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in raw units: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q × count)`.
    /// Deterministic; `0` when nothing was recorded. Overstates the true
    /// sample quantile by at most one part in 16.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(i, c) in &self.nonzero {
            cum += c;
            if cum >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(self.nonzero.last().map(|&(i, _)| i).unwrap_or(0))
    }

    /// The `q`-quantile in exposition units (e.g. seconds for a
    /// nanosecond-recorded `_seconds` histogram).
    pub fn quantile_scaled(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * self.scale
    }

    /// Fold another snapshot of the same metric into this one (bucket-wise
    /// addition). The merge is associative and commutative, so sharded
    /// recording merges to the same snapshot as centralized recording.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.nonzero.len());
        let (mut a, mut b) = (
            self.nonzero.iter().peekable(),
            other.nonzero.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&p), None) => {
                    merged.push(p);
                    a.next();
                }
                (None, Some(&&p)) => {
                    merged.push(p);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.nonzero = merged;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact_below_sixteen() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bounds_bracket_their_values_with_one_sixteenth_error() {
        for &v in &[16u64, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let hi = bucket_bound(i);
            assert!(hi >= v, "bound {hi} below value {v}");
            // Relative overshoot is below 1/16 at every magnitude.
            assert!(
                (hi - v) as f64 <= v as f64 / 16.0,
                "bucket error too large: v={v} hi={hi}"
            );
            // The bound itself maps back into the same bucket.
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn bucket_index_is_monotone_over_octave_seams() {
        let mut last = 0usize;
        for v in 0..2048u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantiles_estimate_percentiles() {
        let h = Histogram::new(1.0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((468..=532).contains(&p50), "p50={p50}");
        assert!((930..=1055).contains(&p99), "p99={p99}");
        assert!(s.quantile(1.0) >= 1000);
        assert_eq!(s.quantile(0.0), 1); // smallest recorded value's bucket
    }

    #[test]
    fn empty_snapshot_quantile_is_zero() {
        assert_eq!(Histogram::new(1.0).snapshot().quantile(0.99), 0);
    }

    #[test]
    fn merge_equals_central_recording() {
        let all = Histogram::new(1.0);
        let left = Histogram::new(1.0);
        let right = Histogram::new(1.0);
        for v in [0u64, 3, 15, 16, 17, 1000, 1 << 33] {
            all.record(v);
            if v % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn duration_histogram_scales_to_seconds() {
        let h = Histogram::new_seconds();
        h.record_duration(Duration::from_millis(5));
        let s = h.snapshot();
        let p50 = s.quantile_scaled(0.5);
        assert!((0.004..0.006).contains(&p50), "p50={p50}");
        assert!((s.sum_scaled() - 0.005).abs() < 1e-3);
    }
}
