//! The metrics registry: named counters, gauges and histograms.
//!
//! Handles are cheap `Arc`-backed clones; mutation is a single atomic op.
//! The registry's mutex is taken only to register (or re-fetch) a handle —
//! callers cache handles at construction, so steady-state recording never
//! contends. [`Registry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`]: deterministic `BTreeMap`s renderable to
//! Prometheus-style text exposition with [`MetricsSnapshot::render_text`]
//! (a `String`-returning API — no stdout, so library crates stay L2-clean).

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotone counter handle. Clones share the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one and return the post-increment value. Unlike `inc` + `get`,
    /// the returned total is exact under concurrent increments — callers
    /// use it for threshold decisions ("disable after N failures") that
    /// must fire exactly once.
    #[inline]
    pub fn inc_and_get(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (set/add/max semantics). Clones share the atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Ratchet the gauge up to `v` if it is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named metrics. One per server (plus one per catalog);
/// snapshots from several registries [`MetricsSnapshot::merge`] into the
/// single coherent `pbds_*` namespace.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panicking thread held the
        // registration lock; the maps themselves are always consistent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or register a unit-scale histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(1.0))
            .clone()
    }

    /// Get or register a nanosecond-recorded, seconds-exposed histogram
    /// (conventionally named `*_seconds`).
    pub fn time_histogram(&self, name: &str) -> Histogram {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new_seconds)
            .clone()
    }

    /// Freeze every registered metric into a deterministic snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A deterministic point-in-time view of a registry (or several merged
/// registries): sorted name → value maps, plus histogram snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold another snapshot in: counters and gauges of the same name add,
    /// histograms merge bucket-wise. Namespaces are designed disjoint
    /// (`pbds_catalog_*` vs `pbds_commit_*` …), so in practice this unions.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            *self.gauges.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.histograms {
            match self.histograms.get_mut(&k) {
                Some(h) => h.merge(&v),
                None => {
                    self.histograms.insert(k, v);
                }
            }
        }
    }

    /// Render the snapshot as Prometheus-style text exposition. Returned as
    /// a `String` (the caller decides where it goes); deterministic — names
    /// sorted, histogram buckets in increasing bound order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (le, cum) in h.cumulative() {
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                h.count(),
                h.sum_scaled(),
                h.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn handles_share_state_and_snapshot_deterministically() {
        let r = Registry::new();
        let c = r.counter("pbds_test_total");
        let c2 = r.counter("pbds_test_total");
        c.inc();
        c2.add(2);
        let g = r.gauge("pbds_test_depth");
        g.set(5);
        g.set_max(3); // no-op: 5 is larger
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.counter("pbds_test_total"), Some(3));
        assert_eq!(s1.gauge("pbds_test_depth"), Some(5));
    }

    #[test]
    fn render_text_contains_all_families() {
        let r = Registry::new();
        r.counter("pbds_c").add(7);
        r.gauge("pbds_g").set(-2);
        r.time_histogram("pbds_h_seconds")
            .record_duration(Duration::from_micros(100));
        let text = r.snapshot().render_text();
        assert!(text.contains("# TYPE pbds_c counter\npbds_c 7\n"), "{text}");
        assert!(text.contains("# TYPE pbds_g gauge\npbds_g -2\n"), "{text}");
        assert!(text.contains("# TYPE pbds_h_seconds histogram"), "{text}");
        assert!(
            text.contains("pbds_h_seconds_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("pbds_h_seconds_count 1"), "{text}");
    }

    #[test]
    fn merged_snapshots_sum_counters_and_histograms() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("pbds_shared").add(2);
        b.counter("pbds_shared").add(3);
        b.counter("pbds_only_b").inc();
        a.histogram("pbds_vals").record(10);
        b.histogram("pbds_vals").record(20);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.counter("pbds_shared"), Some(5));
        assert_eq!(snap.counter("pbds_only_b"), Some(1));
        assert_eq!(snap.histogram("pbds_vals").unwrap().count(), 2);
    }

    #[test]
    fn empty_registered_histogram_still_renders() {
        let r = Registry::new();
        r.time_histogram("pbds_idle_seconds");
        let text = r.snapshot().render_text();
        assert!(text.contains("pbds_idle_seconds_count 0"), "{text}");
    }
}
