//! Whole-database snapshots.
//!
//! A snapshot persists exactly the durable state of a [`Database`]: for each
//! table its name, schema, rows, **epochs** (`epoch` / `data_epoch` — the
//! validity tokens the sketch catalog's entries are checked against) and the
//! *declaration* of its physical design (block size, zone-map flag, indexed
//! columns). Derived artifacts — zone maps, ordered indexes, columnar
//! chunks, statistics — are **not** serialized: after a restore they rebuild
//! lazily through the same epoch-stamped cache machinery that serves them in
//! a live process, so a snapshot can never hand the engine a stale artifact.
//!
//! Layout: a [`FileKind::Snapshot`] header frame, a meta frame (the WAL
//! sequence number the snapshot includes and the table count), then one
//! frame per table. Snapshots are written to a temporary file, fsynced and
//! renamed into place, so readers only ever observe a whole snapshot; any
//! torn frame is therefore reported as corruption, never tolerated.

use crate::codec::{decode_table_image, encode_table_image, ByteReader, ByteWriter};
use crate::frame::{check_header, file_header, read_frame, write_frame, FileKind, FrameRead};
use crate::io::{Io, RealIo};
use crate::PersistError;
use pbds_storage::{Database, Table};
use std::path::Path;

/// Default snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pbds";

/// Write `f`'s output to `path` atomically: temp file, fsync, rename, and
/// fsync of the containing directory. If writing the temp file fails
/// (ENOSPC, short write, failed fsync) the previous file at `path` is
/// untouched and still readable — the failure only costs the new version —
/// and the temp file is removed so a later retry starts clean.
pub(crate) fn write_atomically(
    io: &dyn Io,
    path: &Path,
    f: impl FnOnce(&mut Vec<u8>) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    let mut bytes = Vec::new();
    f(&mut bytes)?;
    let tmp = path.with_extension("tmp");
    let written = (|| -> Result<(), PersistError> {
        let mut file = io.create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        Ok(())
    })();
    if let Err(e) = written {
        let _ = io.remove_file(&tmp);
        return Err(e);
    }
    io.rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable. Directories cannot be fsynced on
        // every platform; failure to open one is not a correctness problem
        // for the rename already performed.
        let _ = io.sync_dir(dir);
    }
    Ok(())
}

/// Write a snapshot of `db` to `path` (atomically). `applied_seq` is the
/// highest WAL sequence number whose effects the snapshot includes; replay
/// after a restore skips records at or below it.
pub fn write_snapshot(path: &Path, db: &Database, applied_seq: u64) -> Result<(), PersistError> {
    write_snapshot_with(&RealIo, path, db, applied_seq)
}

/// [`write_snapshot`] through an injectable [`Io`].
pub fn write_snapshot_with(
    io: &dyn Io,
    path: &Path,
    db: &Database,
    applied_seq: u64,
) -> Result<(), PersistError> {
    write_atomically(io, path, |out| {
        write_frame(out, &file_header(FileKind::Snapshot))?;
        let mut meta = ByteWriter::new();
        meta.u64(applied_seq);
        meta.u32(db.table_names().len() as u32);
        write_frame(out, &meta.into_bytes())?;
        for name in db.table_names() {
            let table = db.table(name).expect("listed table exists");
            let mut w = ByteWriter::new();
            encode_table_image(&mut w, &table.image());
            write_frame(out, &w.into_bytes())?;
        }
        Ok(())
    })
}

/// Read a snapshot, returning the reconstructed database and the
/// `applied_seq` recorded at write time.
pub fn read_snapshot(path: &Path) -> Result<(Database, u64), PersistError> {
    read_snapshot_with(&RealIo, path)
}

/// [`read_snapshot`] through an injectable [`Io`].
pub fn read_snapshot_with(io: &dyn Io, path: &Path) -> Result<(Database, u64), PersistError> {
    let bytes = io.read(path)?;
    let mut pos = 0;
    let mut next = |what: &str| -> Result<&[u8], PersistError> {
        match read_frame(&bytes, pos) {
            FrameRead::Frame { payload, next } => {
                pos = next;
                Ok(payload)
            }
            _ => Err(PersistError::corrupt(format!(
                "snapshot {}: missing or torn {what} frame",
                path.display()
            ))),
        }
    };
    check_header(next("header")?, FileKind::Snapshot)?;
    let meta_payload = next("meta")?;
    let mut meta = ByteReader::new(meta_payload);
    let applied_seq = meta.u64()?;
    let table_count = meta.u32()? as usize;
    meta.finish("snapshot meta")?;
    let mut db = Database::new();
    for _ in 0..table_count {
        let payload = next("table")?;
        let mut r = ByteReader::new(payload);
        let image = decode_table_image(&mut r)?;
        r.finish("table frame")?;
        db.add_table(Table::restore(image));
    }
    if read_frame(&bytes, pos) != FrameRead::End {
        return Err(PersistError::corrupt("snapshot has trailing frames"));
    }
    Ok((db, applied_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass};
    use crate::test_dir;
    use pbds_storage::{DataType, Schema, TableBuilder, Value};
    use std::fs;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("f", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(16).index("id");
        for i in 0..100i64 {
            b.push(vec![
                Value::Int(i),
                if i % 10 == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float(-0.0)
                },
            ]);
        }
        db.add_table(b.build());
        let schema2 = Schema::from_pairs(&[("s", DataType::Str)]);
        db.add_table(pbds_storage::Table::new(
            "u",
            schema2,
            vec![vec![Value::from("a")], vec![Value::Null]],
        ));
        db
    }

    #[test]
    fn snapshot_round_trip_preserves_rows_epochs_and_design() {
        let dir = test_dir("snapshot_round_trip");
        let path = dir.join(SNAPSHOT_FILE);
        let db = sample_db();
        write_snapshot(&path, &db, 42).unwrap();
        let (restored, seq) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(restored.table_names(), db.table_names());
        for name in db.table_names() {
            let a = db.table(name).unwrap();
            let b = restored.table(name).unwrap();
            assert_eq!(a.rows(), b.rows(), "{name}");
            assert_eq!(a.epoch(), b.epoch(), "{name}");
            assert_eq!(a.data_epoch(), b.data_epoch(), "{name}");
            assert_eq!(a.block_size(), b.block_size(), "{name}");
            assert_eq!(a.has_zone_map(), b.has_zone_map(), "{name}");
            assert_eq!(a.indexed_columns(), b.indexed_columns(), "{name}");
        }
    }

    #[test]
    fn truncated_snapshot_is_corruption() {
        let dir = test_dir("snapshot_truncated");
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&path, &sample_db(), 0).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10, 0] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "truncation to {cut} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn failed_replacement_leaves_the_previous_snapshot_readable() {
        // Atomic replacement under injected ENOSPC, short write, and failed
        // fsync: the write errors, but the previously committed snapshot is
        // untouched and recovery from it is unchanged. The temp file is
        // cleaned up so a retry starts fresh.
        let dir = test_dir("snapshot_failed_replacement");
        let path = dir.join(SNAPSHOT_FILE);
        let v1 = sample_db();
        write_snapshot(&path, &v1, 7).unwrap();
        let v1_bytes = fs::read(&path).unwrap();

        let mut v2 = sample_db();
        v2.table_mut("t")
            .unwrap()
            .append_rows(vec![vec![Value::Int(999), Value::Float(1.5)]])
            .unwrap();

        for (i, kind) in [
            FaultKind::Enospc,
            FaultKind::ShortWrite,
            FaultKind::FsyncFail,
        ]
        .iter()
        .enumerate()
        {
            let inj = FaultInjector::new(1000 + i as u64);
            inj.inject(FaultSpec {
                kind: *kind,
                class: FileClass::Snapshot,
                skip: 0,
            });
            let io = FaultIo::new(inj);
            assert!(
                write_snapshot_with(&io, &path, &v2, 8).is_err(),
                "{kind:?} did not surface"
            );
            assert_eq!(fs::read(&path).unwrap(), v1_bytes, "{kind:?} touched v1");
            assert!(
                !path.with_extension("tmp").exists(),
                "{kind:?} left a temp file behind"
            );
            let (recovered, seq) = read_snapshot(&path).unwrap();
            assert_eq!(seq, 7, "{kind:?}");
            assert_eq!(
                recovered.table("t").unwrap().rows(),
                v1.table("t").unwrap().rows(),
                "{kind:?}"
            );
        }
        // And the retry (no fault armed) replaces it cleanly.
        write_snapshot(&path, &v2, 8).unwrap();
        let (recovered, seq) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 8);
        assert_eq!(
            recovered.table("t").unwrap().rows(),
            v2.table("t").unwrap().rows()
        );
    }

    #[test]
    fn corrupted_read_is_detected() {
        let dir = test_dir("snapshot_read_corrupt");
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&path, &sample_db(), 3).unwrap();
        let inj = FaultInjector::new(77);
        inj.inject(FaultSpec {
            kind: FaultKind::ReadCorrupt,
            class: FileClass::Snapshot,
            skip: 0,
        });
        let io = FaultIo::new(inj);
        assert!(read_snapshot_with(&io, &path).is_err());
        // The file itself is fine; a clean read still succeeds.
        assert!(read_snapshot(&path).is_ok());
    }

    #[test]
    fn wrong_kind_file_is_rejected() {
        let dir = test_dir("snapshot_wrong_kind");
        let path = dir.join("file.pbds");
        let mut out = Vec::new();
        write_frame(&mut out, &file_header(FileKind::Wal)).unwrap();
        fs::write(&path, &out).unwrap();
        assert!(read_snapshot(&path).is_err());
    }
}
