//! Whole-database snapshots.
//!
//! A snapshot persists exactly the durable state of a [`Database`]: for each
//! table its name, schema, rows, **epochs** (`epoch` / `data_epoch` — the
//! validity tokens the sketch catalog's entries are checked against) and the
//! *declaration* of its physical design (block size, zone-map flag, indexed
//! columns). Derived artifacts — zone maps, ordered indexes, columnar
//! chunks, statistics — are **not** serialized: after a restore they rebuild
//! lazily through the same epoch-stamped cache machinery that serves them in
//! a live process, so a snapshot can never hand the engine a stale artifact.
//!
//! Layout: a [`FileKind::Snapshot`] header frame, a meta frame (the WAL
//! sequence number the snapshot includes and the table count), then one
//! frame per table. Snapshots are written to a temporary file, fsynced and
//! renamed into place, so readers only ever observe a whole snapshot; any
//! torn frame is therefore reported as corruption, never tolerated.

use crate::codec::{decode_table_image, encode_table_image, ByteReader, ByteWriter};
use crate::frame::{check_header, file_header, read_frame, write_frame, FileKind, FrameRead};
use crate::PersistError;
use pbds_storage::{Database, Table};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Default snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pbds";

/// Write `f`'s output to `path` atomically: temp file, fsync, rename, and
/// fsync of the containing directory.
pub(crate) fn write_atomically(
    path: &Path,
    f: impl FnOnce(&mut Vec<u8>) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    let mut bytes = Vec::new();
    f(&mut bytes)?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable. Directories cannot be fsynced on
        // every platform; failure to open one is not a correctness problem
        // for the rename already performed.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write a snapshot of `db` to `path` (atomically). `applied_seq` is the
/// highest WAL sequence number whose effects the snapshot includes; replay
/// after a restore skips records at or below it.
pub fn write_snapshot(path: &Path, db: &Database, applied_seq: u64) -> Result<(), PersistError> {
    write_atomically(path, |out| {
        write_frame(out, &file_header(FileKind::Snapshot))?;
        let mut meta = ByteWriter::new();
        meta.u64(applied_seq);
        meta.u32(db.table_names().len() as u32);
        write_frame(out, &meta.into_bytes())?;
        for name in db.table_names() {
            let table = db.table(name).expect("listed table exists");
            let mut w = ByteWriter::new();
            encode_table_image(&mut w, &table.image());
            write_frame(out, &w.into_bytes())?;
        }
        Ok(())
    })
}

/// Read a snapshot, returning the reconstructed database and the
/// `applied_seq` recorded at write time.
pub fn read_snapshot(path: &Path) -> Result<(Database, u64), PersistError> {
    let bytes = fs::read(path)?;
    let mut pos = 0;
    let mut next = |what: &str| -> Result<&[u8], PersistError> {
        match read_frame(&bytes, pos) {
            FrameRead::Frame { payload, next } => {
                pos = next;
                Ok(payload)
            }
            _ => Err(PersistError::corrupt(format!(
                "snapshot {}: missing or torn {what} frame",
                path.display()
            ))),
        }
    };
    check_header(next("header")?, FileKind::Snapshot)?;
    let meta_payload = next("meta")?;
    let mut meta = ByteReader::new(meta_payload);
    let applied_seq = meta.u64()?;
    let table_count = meta.u32()? as usize;
    meta.finish("snapshot meta")?;
    let mut db = Database::new();
    for _ in 0..table_count {
        let payload = next("table")?;
        let mut r = ByteReader::new(payload);
        let image = decode_table_image(&mut r)?;
        r.finish("table frame")?;
        db.add_table(Table::restore(image));
    }
    if read_frame(&bytes, pos) != FrameRead::End {
        return Err(PersistError::corrupt("snapshot has trailing frames"));
    }
    Ok((db, applied_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use pbds_storage::{DataType, Schema, TableBuilder, Value};

    fn sample_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("f", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(16).index("id");
        for i in 0..100i64 {
            b.push(vec![
                Value::Int(i),
                if i % 10 == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float(-0.0)
                },
            ]);
        }
        db.add_table(b.build());
        let schema2 = Schema::from_pairs(&[("s", DataType::Str)]);
        db.add_table(pbds_storage::Table::new(
            "u",
            schema2,
            vec![vec![Value::from("a")], vec![Value::Null]],
        ));
        db
    }

    #[test]
    fn snapshot_round_trip_preserves_rows_epochs_and_design() {
        let dir = test_dir("snapshot_round_trip");
        let path = dir.join(SNAPSHOT_FILE);
        let db = sample_db();
        write_snapshot(&path, &db, 42).unwrap();
        let (restored, seq) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(restored.table_names(), db.table_names());
        for name in db.table_names() {
            let a = db.table(name).unwrap();
            let b = restored.table(name).unwrap();
            assert_eq!(a.rows(), b.rows(), "{name}");
            assert_eq!(a.epoch(), b.epoch(), "{name}");
            assert_eq!(a.data_epoch(), b.data_epoch(), "{name}");
            assert_eq!(a.block_size(), b.block_size(), "{name}");
            assert_eq!(a.has_zone_map(), b.has_zone_map(), "{name}");
            assert_eq!(a.indexed_columns(), b.indexed_columns(), "{name}");
        }
    }

    #[test]
    fn truncated_snapshot_is_corruption() {
        let dir = test_dir("snapshot_truncated");
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot(&path, &sample_db(), 0).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10, 0] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "truncation to {cut} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn wrong_kind_file_is_rejected() {
        let dir = test_dir("snapshot_wrong_kind");
        let path = dir.join("file.pbds");
        let mut out = Vec::new();
        write_frame(&mut out, &file_header(FileKind::Wal)).unwrap();
        fs::write(&path, &out).unwrap();
        assert!(read_snapshot(&path).is_err());
    }
}
