//! The binary frame format shared by every PBDS persistence file.
//!
//! A file is a sequence of **frames**; each frame is
//!
//! ```text
//!   [ payload length: u32 LE ][ payload bytes ][ CRC-32 of payload: u32 LE ]
//! ```
//!
//! The CRC (IEEE 802.3, the polynomial used by zip/PNG — GlassDB-style
//! verifiable state, but hand-rolled because the build container is offline)
//! makes torn or bit-rotted frames detectable, and tells the two apart: a
//! frame whose length runs past the end of the file is the shape a crash
//! leaves ([`FrameRead::Torn`]), while a frame whose every byte is present
//! but whose checksum disagrees with its payload is bit rot
//! ([`FrameRead::Corrupt`]). The write-ahead log exploits the distinction
//! deliberately: an append cut short by a crash leaves a *torn tail*, and
//! recovery resumes from the longest whole-frame prefix — but a corrupt
//! frame fails recovery outright, because truncating it away would silently
//! drop acknowledged records. Snapshot and catalog files treat both
//! conditions as corruption, because they are written atomically (temp file
//! + rename).
//!
//! Every file opens with a header frame ([`file_header`] / [`check_header`])
//! carrying a magic number, the format version and the file kind, so a
//! snapshot can never be replayed as a WAL and a format bump is detected
//! before any payload is decoded.

use crate::PersistError;
use std::io::Write;

/// Magic bytes opening every PBDS persistence file.
pub const MAGIC: &[u8; 8] = b"PBDSDUR1";

/// Current format version. Bump on any incompatible frame-payload change.
pub const FORMAT_VERSION: u32 = 1;

/// What a persistence file contains (encoded in its header frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A whole-database snapshot.
    Snapshot,
    /// The mutation write-ahead log.
    Wal,
    /// A persisted sketch catalog.
    Catalog,
}

impl FileKind {
    fn tag(self) -> u8 {
        match self {
            FileKind::Snapshot => 1,
            FileKind::Wal => 2,
            FileKind::Catalog => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<FileKind> {
        match tag {
            1 => Some(FileKind::Snapshot),
            2 => Some(FileKind::Wal),
            3 => Some(FileKind::Catalog),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE) lookup table, generated at compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_extend(crc32_start(), bytes))
}

/// Start an incremental CRC-32 computation (feed chunks with
/// [`crc32_extend`], close with [`crc32_finish`]). Equivalent to [`crc32`]
/// over the concatenation of the chunks — lets writers checksum a frame
/// assembled from several buffers without copying them together first.
pub fn crc32_start() -> u32 {
    0xFFFF_FFFF
}

/// Fold more bytes into an incremental CRC-32 state.
pub fn crc32_extend(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Close an incremental CRC-32 state into the final checksum.
pub fn crc32_finish(crc: u32) -> u32 {
    !crc
}

/// Append one frame (length prefix, payload, checksum) to a writer. Errors
/// — before writing anything — on a payload whose length does not fit the
/// `u32` prefix (a wrapped length would be written "successfully" and only
/// surface as a CRC mismatch at recovery time, when it is too late).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), PersistError> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        PersistError::corrupt(format!(
            "frame payload of {} bytes exceeds the u32 length prefix",
            payload.len()
        ))
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Serialize one frame into a byte vector (for in-memory assembly).
pub fn frame_bytes(payload: &[u8]) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    write_frame(&mut out, payload)?;
    Ok(out)
}

/// Outcome of reading one frame at an offset of an in-memory file image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A whole, checksum-valid frame; `next` is the offset just past it.
    Frame {
        /// The frame payload.
        payload: &'a [u8],
        /// Offset of the byte following this frame.
        next: usize,
    },
    /// Clean end of file: `pos` sat exactly at the end.
    End,
    /// The frame at `pos` ends past the end of the file (truncated length
    /// prefix or truncated payload) — consistent with a write cut short, so
    /// a torn tail for a log; corruption for an atomically written file.
    Torn,
    /// Every byte of the frame is present but the checksum disagrees with
    /// the payload. A crash cannot produce this shape at a log tail (a torn
    /// append runs out of bytes; it does not finish the frame with a wrong
    /// CRC) — this is bit rot or tampering, and must fail recovery rather
    /// than be silently truncated away.
    Corrupt,
}

/// Read the frame starting at `pos` in `bytes`.
pub fn read_frame(bytes: &[u8], pos: usize) -> FrameRead<'_> {
    if pos == bytes.len() {
        return FrameRead::End;
    }
    let Some(raw_len) = bytes.get(pos..pos + 4) else {
        return FrameRead::Torn;
    };
    let len = u32::from_le_bytes(raw_len.try_into().expect("4 bytes")) as usize;
    let payload_start = pos + 4;
    let crc_start = match payload_start.checked_add(len) {
        Some(s) => s,
        None => return FrameRead::Torn,
    };
    let (Some(payload), Some(raw_crc)) = (
        bytes.get(payload_start..crc_start),
        bytes.get(crc_start..crc_start + 4),
    ) else {
        return FrameRead::Torn;
    };
    let stored = u32::from_le_bytes(raw_crc.try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return FrameRead::Corrupt;
    }
    FrameRead::Frame {
        payload,
        next: crc_start + 4,
    }
}

/// The header-frame payload for a file of the given kind.
pub fn file_header(kind: FileKind) -> Vec<u8> {
    let mut payload = Vec::with_capacity(13);
    payload.extend_from_slice(MAGIC);
    payload.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    payload.push(kind.tag());
    payload
}

/// Validate a header-frame payload against the expected file kind.
pub fn check_header(payload: &[u8], expected: FileKind) -> Result<(), PersistError> {
    if payload.len() != 13 || &payload[..8] != MAGIC {
        return Err(PersistError::corrupt("file header magic mismatch"));
    }
    let version = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::BadVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    match FileKind::from_tag(payload[12]) {
        Some(kind) if kind == expected => Ok(()),
        Some(kind) => Err(PersistError::corrupt(format!(
            "wrong file kind: expected {expected:?}, found {kind:?}"
        ))),
        None => Err(PersistError::corrupt("unknown file kind tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut file = Vec::new();
        write_frame(&mut file, b"hello").unwrap();
        write_frame(&mut file, b"").unwrap();
        write_frame(&mut file, &[7u8; 1000]).unwrap();
        let mut pos = 0;
        let mut payloads = Vec::new();
        loop {
            match read_frame(&file, pos) {
                FrameRead::Frame { payload, next } => {
                    payloads.push(payload.to_vec());
                    pos = next;
                }
                FrameRead::End => break,
                FrameRead::Torn | FrameRead::Corrupt => panic!("clean file reported damage"),
            }
        }
        assert_eq!(payloads.len(), 3);
        assert_eq!(payloads[0], b"hello");
        assert!(payloads[1].is_empty());
        assert_eq!(payloads[2], vec![7u8; 1000]);
    }

    #[test]
    fn every_strict_prefix_is_reported_torn_not_misread() {
        let mut file = Vec::new();
        write_frame(&mut file, b"abcdefgh").unwrap();
        for cut in 1..file.len() {
            assert_eq!(
                read_frame(&file[..cut], 0),
                FrameRead::Torn,
                "prefix of {cut} bytes accepted"
            );
        }
        assert_eq!(read_frame(&file, file.len()), FrameRead::End);
    }

    #[test]
    fn bit_flips_are_detected_as_corruption_not_torn() {
        let mut file = Vec::new();
        write_frame(&mut file, b"payload-bytes").unwrap();
        // Payload and CRC flips leave every byte present: Corrupt, not Torn.
        for i in 4..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                read_frame(&bad, 0),
                FrameRead::Corrupt,
                "flip at {i} accepted"
            );
        }
        // A flip in the length prefix that grows the frame past EOF is
        // indistinguishable from truncation: Torn.
        let mut bad = file.clone();
        bad[2] ^= 0x40; // adds 4 MiB to the length
        assert_eq!(read_frame(&bad, 0), FrameRead::Torn);
    }

    #[test]
    fn header_checks_magic_version_and_kind() {
        let h = file_header(FileKind::Wal);
        assert!(check_header(&h, FileKind::Wal).is_ok());
        assert!(matches!(
            check_header(&h, FileKind::Snapshot),
            Err(PersistError::Corrupt(_))
        ));
        let mut bad_version = h.clone();
        bad_version[8] = 0xEE;
        assert!(matches!(
            check_header(&bad_version, FileKind::Wal),
            Err(PersistError::BadVersion { .. })
        ));
        let mut bad_magic = h.clone();
        bad_magic[0] = b'x';
        assert!(check_header(&bad_magic, FileKind::Wal).is_err());
    }
}
