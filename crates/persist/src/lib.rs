//! # pbds-persist
//!
//! The durability layer of the PBDS reproduction: everything needed to
//! bounce the serving middleware without a cold start.
//!
//! The paper deploys PBDS as long-lived self-tuning middleware; its most
//! expensive state — the sketch catalog, each entry bought with a full
//! capture execution — would otherwise evaporate on every restart. This
//! crate persists that state with a hand-rolled, checksummed binary format
//! (the build container is offline, so no serde):
//!
//! * [`frame`] — the shared file format: length-prefixed, CRC-32-checksummed
//!   frames with a magic/version/kind header;
//! * [`codec`] — encoders and decoders for the engine's durable types
//!   (values with bit-exact floats, schemas, table images, range/composite
//!   partitions, fragment bitsets, provenance sketches, expressions);
//! * [`snapshot`] — whole-database snapshots. Derived artifacts (zone maps,
//!   indexes, columnar chunks, statistics) are *not* serialized; they are
//!   re-declared and rebuilt lazily through the engine's epoch-stamped cache
//!   machinery. Per-table `epoch` / `data_epoch` **are** persisted — they
//!   are the validity tokens the sketch catalog checks entries against;
//! * [`wal`] — the mutation write-ahead log: fsynced appends, torn-tail
//!   tolerant recovery to the longest whole-record prefix, sequence numbers
//!   that make replay idempotent against the snapshot;
//! * [`catalog`] — the persisted sketch-catalog format, entries carrying
//!   their per-table capture epochs so a stale sketch is structurally
//!   unreachable across restarts exactly as it is within a process;
//! * [`io`] — the injectable I/O seam ([`io::Io`] / [`io::DurableFile`])
//!   every durable write goes through, with a seeded [`io::FaultInjector`]
//!   that deterministically injects fsync failure (fsyncgate semantics),
//!   short writes, ENOSPC and read corruption for the fault-torture suite.
//!
//! The serving integration — `PbdsServer::{create, open, checkpoint,
//! shutdown}` and WAL-appending mutations — lives in `pbds-core`, which
//! builds on this crate.

#![warn(missing_docs)]

pub mod catalog;
pub mod codec;
pub mod frame;
pub mod io;
pub mod snapshot;
pub mod wal;

pub use catalog::{
    read_catalog, read_catalog_with, write_catalog, write_catalog_with, PersistedCatalog,
    PersistedCatalogEntry, CATALOG_FILE,
};
pub use frame::{crc32, FileKind, FrameRead, FORMAT_VERSION, MAGIC};
pub use io::{DurableFile, FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass, Io, RealIo};
pub use snapshot::{
    read_snapshot, read_snapshot_with, write_snapshot, write_snapshot_with, SNAPSHOT_FILE,
};
pub use wal::{
    encode_op, read_records, read_records_with, MutationWal, WalOp, WalOpRef, WalRecord, WAL_FILE,
};

/// Errors raised by the durability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O error (stringified so the error stays `Clone`able).
    Io(String),
    /// Structural corruption: a failed checksum outside a log tail, a
    /// malformed payload, or an impossible decoded structure.
    Corrupt(String),
    /// The file was written by an incompatible format version.
    BadVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
}

impl PersistError {
    /// A corruption error with context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        PersistError::Corrupt(context.into())
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(c) => write!(f, "corrupt persistence file: {c}"),
            PersistError::BadVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build supports {supported})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

/// A fresh, empty scratch directory for this crate's unit tests, kept inside
/// the workspace `target/` directory so tests never write outside the
/// repository.
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/persist-unit-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
