//! The persisted sketch-catalog format.
//!
//! Each catalog entry costs a full capture execution to recreate, so the
//! catalog is the state most worth carrying across restarts. An entry is
//! persisted as its template key (name + structural fingerprint), the
//! binding it was captured for, the sketches themselves and — crucially —
//! the per-table **capture epochs** the sketches were maintained to. On
//! import (`pbds-core`'s `SketchCatalog::import`) an entry is only accepted
//! when every recorded epoch still matches the recovered database, which
//! makes a stale sketch structurally unreachable across restarts exactly as
//! it is within a process.
//!
//! Layout: a [`FileKind::Catalog`] header frame, a meta frame (entry
//! count), then one frame per entry. Written atomically like snapshots.

use crate::codec::{decode_sketch, encode_sketch, ByteReader, ByteWriter};
use crate::frame::{check_header, file_header, read_frame, write_frame, FileKind, FrameRead};
use crate::io::{Io, RealIo};
use crate::snapshot::write_atomically;
use crate::PersistError;
use pbds_provenance::ProvenanceSketch;
use pbds_storage::Value;
use std::path::Path;

/// Default catalog file name inside a durability directory.
pub const CATALOG_FILE: &str = "catalog.pbds";

/// One persisted catalog entry.
#[derive(Debug, Clone)]
pub struct PersistedCatalogEntry {
    /// The catalog's template key (template name + structural fingerprint).
    pub template_key: String,
    /// The binding the sketches were captured for.
    pub binding: Vec<Value>,
    /// The stored sketches (one per partitioned relation).
    pub sketches: Vec<ProvenanceSketch>,
    /// Per sketched table, the data epoch the sketches were maintained to.
    pub capture_epochs: Vec<(String, u64)>,
}

/// A persisted sketch catalog: the restart-surviving part of the store.
#[derive(Debug, Clone, Default)]
pub struct PersistedCatalog {
    /// The persisted entries.
    pub entries: Vec<PersistedCatalogEntry>,
}

fn encode_entry(entry: &PersistedCatalogEntry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&entry.template_key);
    w.values(&entry.binding);
    w.u32(entry.sketches.len() as u32);
    for s in &entry.sketches {
        encode_sketch(&mut w, s);
    }
    w.u32(entry.capture_epochs.len() as u32);
    for (table, epoch) in &entry.capture_epochs {
        w.str(table);
        w.u64(*epoch);
    }
    w.into_bytes()
}

fn decode_entry(payload: &[u8]) -> Result<PersistedCatalogEntry, PersistError> {
    let mut r = ByteReader::new(payload);
    let template_key = r.str()?;
    let binding = r.values()?;
    let n_sketches = r.u32()? as usize;
    let n_sketches = r.count(n_sketches, "sketch")?;
    let mut sketches = Vec::with_capacity(n_sketches);
    for _ in 0..n_sketches {
        sketches.push(decode_sketch(&mut r)?);
    }
    let n_epochs = r.u32()? as usize;
    let n_epochs = r.count(n_epochs, "capture epoch")?;
    let mut capture_epochs = Vec::with_capacity(n_epochs);
    for _ in 0..n_epochs {
        let table = r.str()?;
        let epoch = r.u64()?;
        capture_epochs.push((table, epoch));
    }
    r.finish("catalog entry")?;
    Ok(PersistedCatalogEntry {
        template_key,
        binding,
        sketches,
        capture_epochs,
    })
}

/// Write a persisted catalog to `path` atomically.
pub fn write_catalog(path: &Path, catalog: &PersistedCatalog) -> Result<(), PersistError> {
    write_catalog_with(&RealIo, path, catalog)
}

/// [`write_catalog`] through an injectable [`Io`].
pub fn write_catalog_with(
    io: &dyn Io,
    path: &Path,
    catalog: &PersistedCatalog,
) -> Result<(), PersistError> {
    write_atomically(io, path, |out| {
        write_frame(out, &file_header(FileKind::Catalog))?;
        let mut meta = ByteWriter::new();
        meta.u32(catalog.entries.len() as u32);
        write_frame(out, &meta.into_bytes())?;
        for entry in &catalog.entries {
            write_frame(out, &encode_entry(entry))?;
        }
        Ok(())
    })
}

/// Read a persisted catalog. A missing file reads as an empty catalog (a
/// server that never checkpointed a catalog simply starts cold).
pub fn read_catalog(path: &Path) -> Result<PersistedCatalog, PersistError> {
    read_catalog_with(&RealIo, path)
}

/// [`read_catalog`] through an injectable [`Io`].
pub fn read_catalog_with(io: &dyn Io, path: &Path) -> Result<PersistedCatalog, PersistError> {
    let bytes = match io.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(PersistedCatalog::default())
        }
        Err(e) => return Err(e.into()),
    };
    let mut pos = 0;
    let mut next = |what: &str| -> Result<&[u8], PersistError> {
        match read_frame(&bytes, pos) {
            FrameRead::Frame { payload, next } => {
                pos = next;
                Ok(payload)
            }
            _ => Err(PersistError::corrupt(format!(
                "catalog {}: missing or torn {what} frame",
                path.display()
            ))),
        }
    };
    check_header(next("header")?, FileKind::Catalog)?;
    let mut meta = ByteReader::new(next("meta")?);
    let count = meta.u32()? as usize;
    meta.finish("catalog meta")?;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        entries.push(decode_entry(next("entry")?)?);
    }
    if read_frame(&bytes, pos) != FrameRead::End {
        return Err(PersistError::corrupt("catalog has trailing frames"));
    }
    Ok(PersistedCatalog { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use pbds_storage::{Partition, PartitionRef, RangePartition};
    use std::fs;
    use std::sync::Arc;

    fn sample_catalog() -> PersistedCatalog {
        let part: PartitionRef = Arc::new(Partition::Range(RangePartition::from_uppers(
            "sales",
            "grp",
            vec![Value::Int(10), Value::Int(20), Value::Int(30)],
        )));
        let mut sketch = ProvenanceSketch::empty(part);
        sketch.add_fragment(1);
        sketch.add_fragment(3);
        PersistedCatalog {
            entries: vec![
                PersistedCatalogEntry {
                    template_key: "sales-having#00deadbeef000000".into(),
                    binding: vec![Value::Int(50_000)],
                    sketches: vec![sketch.clone()],
                    capture_epochs: vec![("sales".into(), 17)],
                },
                PersistedCatalogEntry {
                    template_key: "other#0000000000000001".into(),
                    binding: vec![Value::from("CA"), Value::Null],
                    sketches: vec![sketch],
                    capture_epochs: vec![("sales".into(), 17), ("cities".into(), 4)],
                },
            ],
        }
    }

    #[test]
    fn catalog_round_trip() {
        let dir = test_dir("catalog_round_trip");
        let path = dir.join(CATALOG_FILE);
        let catalog = sample_catalog();
        write_catalog(&path, &catalog).unwrap();
        let read = read_catalog(&path).unwrap();
        assert_eq!(read.entries.len(), catalog.entries.len());
        for (a, b) in read.entries.iter().zip(&catalog.entries) {
            assert_eq!(a.template_key, b.template_key);
            assert_eq!(a.binding, b.binding);
            assert_eq!(a.capture_epochs, b.capture_epochs);
            assert_eq!(a.sketches.len(), b.sketches.len());
            for (x, y) in a.sketches.iter().zip(&b.sketches) {
                assert_eq!(x.selected_fragments(), y.selected_fragments());
                assert_eq!(x.num_fragments(), y.num_fragments());
                assert_eq!(x.table(), y.table());
            }
        }
    }

    #[test]
    fn missing_catalog_reads_empty_and_truncation_errors() {
        let dir = test_dir("catalog_missing");
        assert!(read_catalog(&dir.join("nope.pbds"))
            .unwrap()
            .entries
            .is_empty());
        let path = dir.join(CATALOG_FILE);
        write_catalog(&path, &sample_catalog()).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert!(read_catalog(&path).is_err());
    }
}
