//! Binary encoders and decoders for the engine's durable types.
//!
//! Everything here targets the frame payloads of [`crate::frame`]: a
//! [`ByteWriter`] assembles a payload, a [`ByteReader`] walks one, and the
//! free `encode_*` / `decode_*` pairs define the layout of each type. The
//! container is offline (no serde), so layouts are spelled out by hand:
//! little-endian fixed-width integers, `u32`-length-prefixed strings and
//! sequences, and one tag byte per enum variant. [`pbds_storage::Value`]
//! supplies its own canonical encoding (`Value::encode_into`), which keeps
//! float identity — NaN payloads, `-0.0` — bit-exact across a round trip.
//!
//! Decoders never panic on malformed input: every structural violation
//! (truncation, unknown tag, arity mismatch, out-of-range fragment ids)
//! surfaces as [`PersistError::Corrupt`].

use crate::PersistError;
use pbds_algebra::{BinOp, Expr, RangeLookup};
use pbds_provenance::{FragmentBitset, ProvenanceSketch};
use pbds_storage::{
    CompositePartition, DataType, Partition, PartitionRef, RangePartition, Row, Schema, TableImage,
    Value, ValueRange,
};
use std::sync::Arc;

/// Builds a frame payload.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Start an empty payload.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Finish, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a [`Value`] in its canonical encoding.
    pub fn value(&mut self, v: &Value) {
        v.encode_into(&mut self.buf);
    }

    /// Append a `u32`-count-prefixed sequence of values.
    pub fn values(&mut self, vs: &[Value]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.value(v);
        }
    }
}

/// Walks a frame payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Validate a decoded element count against the remaining payload:
    /// every countable element of this format consumes at least one byte,
    /// so a count exceeding the remaining bytes is corrupt. This bounds
    /// both loop iterations and `Vec` pre-allocation by the actual payload
    /// size — a tiny corrupt-but-checksummed frame cannot claim 2^32
    /// elements and hang or OOM the reader.
    pub fn count(&self, n: usize, what: &str) -> Result<usize, PersistError> {
        if n > self.remaining() {
            return Err(PersistError::corrupt(format!(
                "{what} count {n} exceeds the {} remaining payload bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Error out unless the payload was consumed exactly.
    pub fn finish(self, context: &str) -> Result<(), PersistError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(PersistError::corrupt(format!(
                "{context}: {} trailing bytes",
                self.bytes.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| PersistError::corrupt(format!("truncated {what}")))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::corrupt(format!("bad bool byte {other}"))),
        }
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let raw = self.take(len, "string")?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| PersistError::corrupt("string is not valid UTF-8"))
    }

    /// Read a [`Value`] in its canonical encoding.
    pub fn value(&mut self) -> Result<Value, PersistError> {
        let (v, used) = Value::decode_from(&self.bytes[self.pos..])
            .ok_or_else(|| PersistError::corrupt("malformed value"))?;
        self.pos += used;
        Ok(v)
    }

    /// Read a `u32`-count-prefixed sequence of values.
    pub fn values(&mut self) -> Result<Vec<Value>, PersistError> {
        let n = self.u32()? as usize;
        let n = self.count(n, "value")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Schemas and tables
// ---------------------------------------------------------------------------

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType, PersistError> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        other => Err(PersistError::corrupt(format!("unknown data type {other}"))),
    }
}

/// Encode a schema (column names and declared types, in order).
pub fn encode_schema(w: &mut ByteWriter, schema: &Schema) {
    w.u32(schema.arity() as u32);
    for col in schema.columns() {
        w.str(&col.name);
        w.u8(dtype_tag(col.dtype));
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut ByteReader<'_>) -> Result<Schema, PersistError> {
    let n = r.u32()? as usize;
    let n = r.count(n, "schema column")?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        columns.push(pbds_storage::Column::new(name, dtype));
    }
    Ok(Schema::new(columns))
}

/// Encode a table image: name, schema, epochs, physical design and rows.
pub fn encode_table_image(w: &mut ByteWriter, image: &TableImage) {
    w.str(&image.name);
    encode_schema(w, &image.schema);
    w.u64(image.epoch);
    w.u64(image.data_epoch);
    w.u64(image.block_size as u64);
    w.bool(image.with_zone_map);
    w.u32(image.index_columns.len() as u32);
    for c in &image.index_columns {
        w.str(c);
    }
    w.u64(image.rows.len() as u64);
    for row in &image.rows {
        // Row arity equals the schema arity by `Table` invariant, so rows
        // are written back-to-back without per-row counts.
        for v in row {
            w.value(v);
        }
    }
}

/// Decode a table image (validating block size and row arity).
pub fn decode_table_image(r: &mut ByteReader<'_>) -> Result<TableImage, PersistError> {
    let name = r.str()?;
    let schema = decode_schema(r)?;
    let epoch = r.u64()?;
    let data_epoch = r.u64()?;
    let block_size = r.u64()? as usize;
    if block_size == 0 {
        return Err(PersistError::corrupt(format!(
            "table {name}: zero block size"
        )));
    }
    let with_zone_map = r.bool()?;
    let n_idx = r.u32()? as usize;
    let n_idx = r.count(n_idx, "index column")?;
    let mut index_columns = Vec::with_capacity(n_idx);
    for _ in 0..n_idx {
        index_columns.push(r.str()?);
    }
    let n_rows = r.u64()? as usize;
    let arity = schema.arity();
    if arity == 0 && n_rows > 0 {
        // A zero-column row consumes zero payload bytes, so an unbounded
        // row count could never be caught by truncation errors below.
        return Err(PersistError::corrupt(format!(
            "table {name}: {n_rows} rows under a zero-column schema"
        )));
    }
    let n_rows = r.count(n_rows, "row")?;
    let mut rows: Vec<Row> = Vec::new();
    rows.try_reserve(n_rows)
        .map_err(|_| PersistError::corrupt("row count overflows memory"))?;
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(r.value()?);
        }
        rows.push(row);
    }
    Ok(TableImage {
        name,
        schema,
        rows,
        epoch,
        data_epoch,
        block_size,
        with_zone_map,
        index_columns,
    })
}

// ---------------------------------------------------------------------------
// Partitions, bitsets, sketches
// ---------------------------------------------------------------------------

/// Encode a partition (range or composite).
pub fn encode_partition(w: &mut ByteWriter, p: &Partition) {
    match p {
        Partition::Range(rp) => {
            w.u8(0);
            w.str(rp.table());
            w.str(rp.attr());
            w.values(rp.uppers());
        }
        Partition::Composite(cp) => {
            w.u8(1);
            w.str(cp.table());
            w.u32(cp.attrs().len() as u32);
            for a in cp.attrs() {
                w.str(a);
            }
            w.u32(cp.keys().len() as u32);
            for key in cp.keys() {
                // Key arity equals the attribute count; no per-key prefix.
                for v in key {
                    w.value(v);
                }
            }
        }
    }
}

/// Decode a partition.
pub fn decode_partition(r: &mut ByteReader<'_>) -> Result<Partition, PersistError> {
    match r.u8()? {
        0 => {
            let table = r.str()?;
            let attr = r.str()?;
            let uppers = r.values()?;
            if !uppers.windows(2).all(|w| w[0] < w[1]) {
                return Err(PersistError::corrupt(
                    "range partition uppers are not strictly increasing",
                ));
            }
            Ok(Partition::Range(RangePartition::from_uppers(
                table, attr, uppers,
            )))
        }
        1 => {
            let table = r.str()?;
            let n_attrs = r.u32()? as usize;
            let n_attrs = r.count(n_attrs, "partition attribute")?;
            if n_attrs == 0 {
                // A zero-attribute key consumes zero bytes per key, which
                // would unbound the loop below (and the partition would be
                // degenerate anyway).
                return Err(PersistError::corrupt(
                    "composite partition with no attributes",
                ));
            }
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                attrs.push(r.str()?);
            }
            let n_keys = r.u32()? as usize;
            let n_keys = r.count(n_keys, "partition key")?;
            let mut keys = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                let mut key = Vec::with_capacity(n_attrs);
                for _ in 0..n_attrs {
                    key.push(r.value()?);
                }
                keys.push(key);
            }
            CompositePartition::from_keys(table, attrs, keys)
                .map(Partition::Composite)
                .ok_or_else(|| PersistError::corrupt("invalid composite partition image"))
        }
        other => Err(PersistError::corrupt(format!(
            "unknown partition kind {other}"
        ))),
    }
}

/// Encode a fragment bitset (bit length plus raw words).
pub fn encode_bitset(w: &mut ByteWriter, bits: &FragmentBitset) {
    w.u64(bits.len() as u64);
    w.u32(bits.words().len() as u32);
    for &word in bits.words() {
        w.u64(word);
    }
}

/// Decode a fragment bitset.
pub fn decode_bitset(r: &mut ByteReader<'_>) -> Result<FragmentBitset, PersistError> {
    let nbits = r.u64()? as usize;
    let n_words = r.u32()? as usize;
    let n_words = r.count(n_words, "bitset word")?;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    FragmentBitset::from_words(nbits, words)
        .ok_or_else(|| PersistError::corrupt("invalid fragment bitset image"))
}

/// Encode a provenance sketch (its partition plus the fragment bitset).
pub fn encode_sketch(w: &mut ByteWriter, sketch: &ProvenanceSketch) {
    encode_partition(w, sketch.partition());
    encode_bitset(w, sketch.bitset());
}

/// Decode a provenance sketch.
pub fn decode_sketch(r: &mut ByteReader<'_>) -> Result<ProvenanceSketch, PersistError> {
    let partition = decode_partition(r)?;
    let bits = decode_bitset(r)?;
    if partition.num_fragments() != bits.len() {
        return Err(PersistError::corrupt(
            "sketch bitset width disagrees with its partition",
        ));
    }
    let partition: PartitionRef = Arc::new(partition);
    Ok(ProvenanceSketch::new(partition, bits))
}

// ---------------------------------------------------------------------------
// Expressions (for WAL delete predicates)
// ---------------------------------------------------------------------------

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => 0,
        BinOp::Ne => 1,
        BinOp::Lt => 2,
        BinOp::Le => 3,
        BinOp::Gt => 4,
        BinOp::Ge => 5,
        BinOp::Add => 6,
        BinOp::Sub => 7,
        BinOp::Mul => 8,
        BinOp::Div => 9,
    }
}

fn binop_from_tag(tag: u8) -> Result<BinOp, PersistError> {
    Ok(match tag {
        0 => BinOp::Eq,
        1 => BinOp::Ne,
        2 => BinOp::Lt,
        3 => BinOp::Le,
        4 => BinOp::Gt,
        5 => BinOp::Ge,
        6 => BinOp::Add,
        7 => BinOp::Sub,
        8 => BinOp::Mul,
        9 => BinOp::Div,
        other => {
            return Err(PersistError::corrupt(format!(
                "unknown binary operator {other}"
            )))
        }
    })
}

fn encode_value_range(w: &mut ByteWriter, range: &ValueRange) {
    for bound in [&range.lo, &range.hi] {
        match bound {
            Some(v) => {
                w.u8(1);
                w.value(v);
            }
            None => w.u8(0),
        }
    }
}

fn decode_value_range(r: &mut ByteReader<'_>) -> Result<ValueRange, PersistError> {
    let mut bounds = [None, None];
    for b in &mut bounds {
        *b = match r.u8()? {
            0 => None,
            1 => Some(r.value()?),
            other => {
                return Err(PersistError::corrupt(format!(
                    "bad range bound marker {other}"
                )))
            }
        };
    }
    let [lo, hi] = bounds;
    Ok(ValueRange { lo, hi })
}

/// Encode a scalar / boolean expression tree.
pub fn encode_expr(w: &mut ByteWriter, e: &Expr) {
    match e {
        Expr::Column(c) => {
            w.u8(0);
            w.str(c);
        }
        Expr::Literal(v) => {
            w.u8(1);
            w.value(v);
        }
        Expr::Param(i) => {
            w.u8(2);
            w.u64(*i as u64);
        }
        Expr::Binary { op, left, right } => {
            w.u8(3);
            w.u8(binop_tag(*op));
            encode_expr(w, left);
            encode_expr(w, right);
        }
        Expr::And(es) => {
            w.u8(4);
            w.u32(es.len() as u32);
            for x in es {
                encode_expr(w, x);
            }
        }
        Expr::Or(es) => {
            w.u8(5);
            w.u32(es.len() as u32);
            for x in es {
                encode_expr(w, x);
            }
        }
        Expr::Not(x) => {
            w.u8(6);
            encode_expr(w, x);
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            w.u8(7);
            w.u32(branches.len() as u32);
            for (c, res) in branches {
                encode_expr(w, c);
                encode_expr(w, res);
            }
            encode_expr(w, otherwise);
        }
        Expr::InRanges {
            column,
            ranges,
            lookup,
        } => {
            w.u8(8);
            w.str(column);
            w.u32(ranges.len() as u32);
            for range in ranges {
                encode_value_range(w, range);
            }
            w.u8(match lookup {
                RangeLookup::Linear => 0,
                RangeLookup::BinarySearch => 1,
            });
        }
        Expr::InList { columns, keys } => {
            w.u8(9);
            w.u32(columns.len() as u32);
            for c in columns {
                w.str(c);
            }
            w.u32(keys.len() as u32);
            for key in keys {
                for v in key {
                    w.value(v);
                }
            }
        }
        Expr::IsNull(x) => {
            w.u8(10);
            encode_expr(w, x);
        }
    }
}

/// Maximum expression nesting depth accepted by [`decode_expr`]; guards
/// against stack exhaustion on adversarial input.
const MAX_EXPR_DEPTH: usize = 512;

/// Decode an expression tree.
pub fn decode_expr(r: &mut ByteReader<'_>) -> Result<Expr, PersistError> {
    decode_expr_at(r, 0)
}

fn decode_expr_at(r: &mut ByteReader<'_>, depth: usize) -> Result<Expr, PersistError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(PersistError::corrupt("expression nests too deeply"));
    }
    Ok(match r.u8()? {
        0 => Expr::Column(r.str()?),
        1 => Expr::Literal(r.value()?),
        2 => Expr::Param(r.u64()? as usize),
        3 => {
            let op = binop_from_tag(r.u8()?)?;
            let left = Box::new(decode_expr_at(r, depth + 1)?);
            let right = Box::new(decode_expr_at(r, depth + 1)?);
            Expr::Binary { op, left, right }
        }
        4 => {
            let n = r.u32()? as usize;
            let n = r.count(n, "conjunct")?;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(decode_expr_at(r, depth + 1)?);
            }
            Expr::And(es)
        }
        5 => {
            let n = r.u32()? as usize;
            let n = r.count(n, "disjunct")?;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(decode_expr_at(r, depth + 1)?);
            }
            Expr::Or(es)
        }
        6 => Expr::Not(Box::new(decode_expr_at(r, depth + 1)?)),
        7 => {
            let n = r.u32()? as usize;
            let n = r.count(n, "case branch")?;
            let mut branches = Vec::with_capacity(n);
            for _ in 0..n {
                let c = decode_expr_at(r, depth + 1)?;
                let res = decode_expr_at(r, depth + 1)?;
                branches.push((c, res));
            }
            let otherwise = Box::new(decode_expr_at(r, depth + 1)?);
            Expr::Case {
                branches,
                otherwise,
            }
        }
        8 => {
            let column = r.str()?;
            let n = r.u32()? as usize;
            let n = r.count(n, "range")?;
            let mut ranges = Vec::with_capacity(n);
            for _ in 0..n {
                ranges.push(decode_value_range(r)?);
            }
            let lookup = match r.u8()? {
                0 => RangeLookup::Linear,
                1 => RangeLookup::BinarySearch,
                other => {
                    return Err(PersistError::corrupt(format!(
                        "unknown range lookup {other}"
                    )))
                }
            };
            Expr::InRanges {
                column,
                ranges,
                lookup,
            }
        }
        9 => {
            let n_cols = r.u32()? as usize;
            let n_cols = r.count(n_cols, "in-list column")?;
            if n_cols == 0 {
                // Zero-width keys would unbound the key loop below.
                return Err(PersistError::corrupt("in-list with no columns"));
            }
            let mut columns = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                columns.push(r.str()?);
            }
            let n_keys = r.u32()? as usize;
            let n_keys = r.count(n_keys, "in-list key")?;
            let mut keys = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                let mut key = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    key.push(r.value()?);
                }
                keys.push(key);
            }
            Expr::InList { columns, keys }
        }
        10 => Expr::IsNull(Box::new(decode_expr_at(r, depth + 1)?)),
        other => {
            return Err(PersistError::corrupt(format!(
                "unknown expression tag {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param};
    use pbds_storage::{Table, TableBuilder};

    fn round_trip_expr(e: &Expr) -> Expr {
        let mut w = ByteWriter::new();
        encode_expr(&mut w, e);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = decode_expr(&mut r).expect("decodable");
        r.finish("expr").unwrap();
        out
    }

    #[test]
    fn expr_round_trips_every_variant() {
        let exprs = vec![
            col("a").gt(lit(5)),
            col("a")
                .between(lit(1), lit(10))
                .and(col("s").eq(lit("CA"))),
            col("a").add(col("b")).mul(lit(2.5)).le(param(0)),
            Expr::Or(vec![
                Expr::IsNull(Box::new(col("x"))),
                Expr::Not(Box::new(col("y").eq(lit(false)))),
            ]),
            Expr::Case {
                branches: vec![(col("a").gt(lit(0)), lit(1))],
                otherwise: Box::new(lit(0)),
            },
            Expr::InRanges {
                column: "k".into(),
                ranges: vec![
                    ValueRange {
                        lo: None,
                        hi: Some(Value::Int(5)),
                    },
                    ValueRange {
                        lo: Some(Value::Int(9)),
                        hi: None,
                    },
                ],
                lookup: RangeLookup::BinarySearch,
            },
            Expr::InList {
                columns: vec!["a".into(), "b".into()],
                keys: vec![
                    vec![Value::Int(1), Value::from("x")],
                    vec![Value::Int(2), Value::Null],
                ],
            },
        ];
        for e in exprs {
            assert_eq!(round_trip_expr(&e), e);
        }
    }

    #[test]
    fn table_image_round_trips_with_exotic_floats() {
        let schema = Schema::from_pairs(&[("f", DataType::Float), ("s", DataType::Str)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(2).index("f");
        for f in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.5] {
            b.push(vec![Value::Float(f), Value::from("x")]);
        }
        b.push(vec![Value::Null, Value::Null]);
        let table = b.build();
        let image = table.image();
        let mut w = ByteWriter::new();
        encode_table_image(&mut w, &image);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = decode_table_image(&mut r).unwrap();
        r.finish("table").unwrap();
        let restored = Table::restore(decoded);
        assert_eq!(restored.rows().len(), table.rows().len());
        for (a, b) in restored.rows().iter().zip(table.rows()) {
            for (x, y) in a.iter().zip(b) {
                // Bit-exact: NaN and -0.0 keep their identity.
                match (x, y) {
                    (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    _ => assert_eq!(x, y),
                }
            }
        }
        assert_eq!(restored.epoch(), table.epoch());
        assert_eq!(restored.data_epoch(), table.data_epoch());
        assert_eq!(restored.indexed_columns(), table.indexed_columns());
    }

    #[test]
    fn sketches_round_trip_over_both_partition_kinds() {
        let range: PartitionRef = Arc::new(Partition::Range(RangePartition::from_uppers(
            "t",
            "a",
            vec![Value::Int(10), Value::Int(20)],
        )));
        let mut sketch = ProvenanceSketch::empty(range);
        sketch.add_fragment(0);
        sketch.add_fragment(2);

        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::from("x")],
            vec![Value::Int(2), Value::from("y")],
        ];
        let comp: PartitionRef = Arc::new(Partition::Composite(
            CompositePartition::build("t", &schema, &rows, &["a", "b"]).unwrap(),
        ));
        let mut comp_sketch = ProvenanceSketch::empty(comp);
        comp_sketch.add_fragment(1);

        for s in [&sketch, &comp_sketch] {
            let mut w = ByteWriter::new();
            encode_sketch(&mut w, s);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let d = decode_sketch(&mut r).unwrap();
            r.finish("sketch").unwrap();
            assert_eq!(d.table(), s.table());
            assert_eq!(d.attrs(), s.attrs());
            assert_eq!(d.num_fragments(), s.num_fragments());
            assert_eq!(d.selected_fragments(), s.selected_fragments());
        }
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        encode_expr(&mut w, &col("a").between(lit(1), lit(10)));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                decode_expr(&mut r).is_err() || !r.is_done(),
                "prefix {cut} decoded cleanly"
            );
        }
    }

    #[test]
    fn absurd_element_counts_are_rejected_not_allocated() {
        // A tiny corrupt-but-checksummed payload claiming a huge element
        // count must fail fast, not loop for 2^32+ iterations or allocate
        // gigabytes. Zero-width elements (0-column rows, 0-attribute keys,
        // 0-column in-list keys) are the dangerous case: they consume no
        // payload, so only an explicit guard can bound them.
        // 1. Table image: zero-column schema + huge row count.
        let mut w = ByteWriter::new();
        w.str("t"); // name
        w.u32(0); // zero columns
        w.u64(1); // epoch
        w.u64(1); // data epoch
        w.u64(8); // block size
        w.bool(false);
        w.u32(0); // no index columns
        w.u64(u64::MAX); // absurd row count, zero bytes each
        let bytes = w.into_bytes();
        assert!(decode_table_image(&mut ByteReader::new(&bytes)).is_err());
        // 2. Composite partition with zero attributes.
        let mut w = ByteWriter::new();
        w.u8(1);
        w.str("t");
        w.u32(0); // zero attrs -> zero-width keys
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(decode_partition(&mut ByteReader::new(&bytes)).is_err());
        // 3. In-list expression with zero columns.
        let mut w = ByteWriter::new();
        w.u8(9);
        w.u32(0); // zero columns
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(decode_expr(&mut ByteReader::new(&bytes)).is_err());
        // 4. Nonzero-width elements with a count far past the payload end.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX); // value count in a 4-byte payload
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).values().is_err());
    }

    #[test]
    fn corrupt_structures_are_rejected() {
        // A bitset with a stray bit beyond nbits.
        let mut w = ByteWriter::new();
        w.u64(3);
        w.u32(1);
        w.u64(0b1000);
        let bytes = w.into_bytes();
        assert!(decode_bitset(&mut ByteReader::new(&bytes)).is_err());
        // A composite partition with duplicate keys.
        let mut w = ByteWriter::new();
        w.u8(1);
        w.str("t");
        w.u32(1);
        w.str("a");
        w.u32(2);
        w.value(&Value::Int(1));
        w.value(&Value::Int(1));
        let bytes = w.into_bytes();
        assert!(decode_partition(&mut ByteReader::new(&bytes)).is_err());
        // Unsorted range uppers.
        let mut w = ByteWriter::new();
        w.u8(0);
        w.str("t");
        w.str("a");
        w.values(&[Value::Int(5), Value::Int(1)]);
        let bytes = w.into_bytes();
        assert!(decode_partition(&mut ByteReader::new(&bytes)).is_err());
    }
}
