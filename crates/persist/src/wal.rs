//! The mutation write-ahead log.
//!
//! Every data mutation the serving middleware applies between checkpoints is
//! appended here as one checksummed frame and fsynced before the mutation is
//! acknowledged, so a crash loses at most the in-flight record — and a
//! record it *did* acknowledge is always replayable. The log is
//! **torn-tail tolerant**: a crash mid-append leaves a trailing partial
//! frame, which [`MutationWal::open`] detects via the frame CRC, truncates
//! away, and resumes appending after. Recovery therefore always lands on
//! the state of the *longest whole-record prefix* of the log.
//!
//! Records carry a monotone sequence number. The snapshot stores the highest
//! sequence it includes ([`crate::snapshot::write_snapshot`]), so replay
//! after a restart skips records the snapshot already covers — a crash
//! between "snapshot renamed" and "WAL truncated" can never double-apply an
//! append.

use crate::codec::{decode_expr, encode_expr, ByteReader, ByteWriter};
use crate::frame::{check_header, file_header, frame_bytes, read_frame, FileKind, FrameRead};
use crate::PersistError;
use pbds_algebra::Expr;
use pbds_storage::Row;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Default WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.pbds";

/// A logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Rows appended at the tail of `table`.
    Append {
        /// The mutated table.
        table: String,
        /// The appended rows.
        rows: Vec<Row>,
    },
    /// Rows deleted from `table` by predicate.
    DeleteWhere {
        /// The mutated table.
        table: String,
        /// The delete predicate (re-evaluated deterministically on replay
        /// against the same pre-mutation state).
        predicate: Expr,
    },
}

/// One WAL record: a sequence number plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number (1-based; snapshots record the highest
    /// sequence they include).
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// A borrowed view of a WAL operation, so callers can encode a record
/// without cloning its payload (a bulk append's rows can be encoded straight
/// from the caller's buffer — or the table's tail — before ownership moves).
#[derive(Debug, Clone, Copy)]
pub enum WalOpRef<'a> {
    /// Rows appended at the tail of `table`.
    Append {
        /// The mutated table.
        table: &'a str,
        /// The appended rows.
        rows: &'a [Row],
    },
    /// Rows deleted from `table` by predicate.
    DeleteWhere {
        /// The mutated table.
        table: &'a str,
        /// The delete predicate.
        predicate: &'a Expr,
    },
}

impl WalOp {
    fn as_ref(&self) -> WalOpRef<'_> {
        match self {
            WalOp::Append { table, rows } => WalOpRef::Append { table, rows },
            WalOp::DeleteWhere { table, predicate } => WalOpRef::DeleteWhere { table, predicate },
        }
    }
}

/// Encode a WAL operation body (everything but the sequence number), for use
/// with [`MutationWal::append_encoded`].
pub fn encode_op(op: WalOpRef<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match op {
        WalOpRef::Append { table, rows } => {
            w.u8(0);
            w.str(table);
            w.u32(rows.len() as u32);
            for row in rows {
                w.values(row);
            }
        }
        WalOpRef::DeleteWhere { table, predicate } => {
            w.u8(1);
            w.str(table);
            encode_expr(&mut w, predicate);
        }
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, PersistError> {
    let mut r = ByteReader::new(payload);
    let seq = r.u64()?;
    let op = match r.u8()? {
        0 => {
            let table = r.str()?;
            let n = r.u32()? as usize;
            let n = r.count(n, "appended row")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.values()?);
            }
            WalOp::Append { table, rows }
        }
        1 => {
            let table = r.str()?;
            let predicate = decode_expr(&mut r)?;
            WalOp::DeleteWhere { table, predicate }
        }
        other => return Err(PersistError::corrupt(format!("unknown WAL op {other}"))),
    };
    r.finish("WAL record")?;
    Ok(WalRecord { seq, op })
}

/// Scan a WAL file, returning every whole valid record and the byte length
/// of the valid prefix (header included). A missing file reads as empty.
/// The first torn or corrupt frame ends the scan — it and everything after
/// it are treated as the torn tail.
pub fn read_records(path: &Path) -> Result<(Vec<WalRecord>, u64), PersistError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e.into()),
    };
    let mut pos = 0;
    // Header: a torn header (crash during the very first creation) makes the
    // whole file an empty log.
    match read_frame(&bytes, pos) {
        FrameRead::Frame { payload, next } => {
            check_header(payload, FileKind::Wal)?;
            pos = next;
        }
        FrameRead::End | FrameRead::Torn => return Ok((Vec::new(), 0)),
    }
    let mut records = Vec::new();
    while let FrameRead::Frame { payload, next } = read_frame(&bytes, pos) {
        // A frame that checksums but does not decode is corruption in the
        // middle of the log only if more valid frames follow; we cannot
        // know, so treat it like a torn tail as well — the prefix before it
        // is still the longest trustworthy state.
        let Ok(record) = decode_record(payload) else {
            break;
        };
        records.push(record);
        pos = next;
    }
    Ok((records, pos as u64))
}

/// An open, appendable mutation WAL.
#[derive(Debug)]
pub struct MutationWal {
    path: PathBuf,
    file: fs::File,
    /// Length of the valid prefix (header + whole records). A failed append
    /// rolls the file back to this point, so later appends can never land
    /// after a torn frame in the middle of the log.
    len: u64,
    /// Cleared when a failed append could not be rolled back; further
    /// appends are refused rather than silently written after torn bytes.
    healthy: bool,
}

impl MutationWal {
    /// Open (creating if needed) the WAL at `path`. Existing whole records
    /// are returned; a torn tail is truncated away so subsequent appends
    /// extend the valid prefix.
    pub fn open(path: &Path) -> Result<(MutationWal, Vec<WalRecord>), PersistError> {
        let (records, valid_len) = read_records(path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let len = if valid_len == 0 {
            // Fresh (or unusable) log: start over with a clean header.
            file.set_len(0)?;
            write_header(&mut file)?
        } else {
            file.set_len(valid_len)?;
            file.sync_all()?;
            valid_len
        };
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(len))?;
        Ok((
            MutationWal {
                path: path.to_path_buf(),
                file,
                len,
                healthy: true,
            },
            records,
        ))
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and fsync it. On return the record is durable.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), PersistError> {
        self.append_encoded(record.seq, &encode_op(record.op.as_ref()))
    }

    /// Append a record from its pre-encoded operation body (see
    /// [`encode_op`]) and fsync it. Equivalent to a one-record
    /// [`MutationWal::append_batch`].
    pub fn append_encoded(&mut self, seq: u64, op_bytes: &[u8]) -> Result<(), PersistError> {
        self.append_batch(&[(seq, op_bytes)])
    }

    /// Group commit: append every record in `records` (sequence number +
    /// pre-encoded operation body, see [`encode_op`]) as consecutive
    /// per-record CRC frames, then issue **one** `sync_data` for the whole
    /// batch. The on-disk format is byte-identical to appending each record
    /// with [`MutationWal::append_encoded`] — torn-tail recovery and
    /// seq-skipping replay see individual records, never batch boundaries —
    /// but the durability cost is amortized: one fsync covers them all.
    ///
    /// On success every record is durable. On error the file is rolled back
    /// to the last previously-acknowledged whole record, so nothing of the
    /// failed batch (not even its leading records) can survive a later
    /// replay — all-or-nothing, matching the "tickets complete only after
    /// the batch is durable" contract. An empty batch is a no-op (no write,
    /// no fsync).
    pub fn append_batch<B: AsRef<[u8]>>(
        &mut self,
        records: &[(u64, B)],
    ) -> Result<(), PersistError> {
        if !self.healthy {
            return Err(PersistError::Io(
                "WAL is unusable: a failed append or truncate could not be rolled back".into(),
            ));
        }
        if records.is_empty() {
            return Ok(());
        }
        // Frame the whole batch into one buffer so the kernel sees a single
        // contiguous write followed by a single flush.
        let total: usize = records
            .iter()
            .map(|(_, b)| 8 + 8 + b.as_ref().len() + 4)
            .sum();
        let mut buf = Vec::with_capacity(total);
        for (seq, op_bytes) in records {
            let op_bytes = op_bytes.as_ref();
            let payload_len = 8 + op_bytes.len();
            let len = u32::try_from(payload_len).map_err(|_| {
                PersistError::corrupt(format!(
                    "WAL record payload of {payload_len} bytes exceeds the u32 length prefix"
                ))
            })?;
            let seq_bytes = seq.to_le_bytes();
            let crc = crate::frame::crc32_finish(crate::frame::crc32_extend(
                crate::frame::crc32_extend(crate::frame::crc32_start(), &seq_bytes),
                op_bytes,
            ));
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&seq_bytes);
            buf.extend_from_slice(op_bytes);
            buf.extend_from_slice(&crc.to_le_bytes());
        }
        let wrote = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data());
        match wrote {
            Ok(()) => {
                self.len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                // A partial write would otherwise sit *between* the valid
                // prefix and any future (successful, acknowledged) append,
                // and recovery would truncate those acknowledged records
                // away at the torn frame. Roll back to the whole-record
                // prefix; if even that fails, poison the log.
                use std::io::Seek;
                let rolled = self
                    .file
                    .set_len(self.len)
                    .and_then(|()| self.file.seek(std::io::SeekFrom::Start(self.len)))
                    .and_then(|_| self.file.sync_data());
                if rolled.is_err() {
                    self.healthy = false;
                }
                Err(e.into())
            }
        }
    }

    /// Drop every record (after a checkpoint made them redundant), keeping
    /// the file header. A fully successful truncation also restores a
    /// poisoned log to health (it removes whatever torn bytes a failed
    /// rollback left behind); a truncation that fails partway — e.g. a
    /// half-written header — poisons the log instead, so no later append
    /// can land bytes that recovery would misparse or discard.
    pub fn truncate(&mut self) -> Result<(), PersistError> {
        let result = (|| {
            self.file.set_len(0)?;
            use std::io::Seek;
            self.file.seek(std::io::SeekFrom::Start(0))?;
            write_header(&mut self.file)
        })();
        match result {
            Ok(header_len) => {
                self.len = header_len;
                self.healthy = true;
                Ok(())
            }
            Err(e) => {
                self.healthy = false;
                Err(e)
            }
        }
    }
}

/// Write the WAL header frame; returns the header length in bytes.
fn write_header(file: &mut fs::File) -> Result<u64, PersistError> {
    let header = frame_bytes(&file_header(FileKind::Wal))?;
    file.write_all(&header)?;
    file.sync_all()?;
    Ok(header.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use pbds_algebra::{col, lit};
    use pbds_storage::Value;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                op: WalOp::Append {
                    table: "t".into(),
                    rows: vec![
                        vec![Value::Int(1), Value::from("a")],
                        vec![Value::Float(-0.0), Value::Null],
                    ],
                },
            },
            WalRecord {
                seq: 2,
                op: WalOp::DeleteWhere {
                    table: "t".into(),
                    predicate: col("v").between(lit(3), lit(9)),
                },
            },
            WalRecord {
                seq: 3,
                op: WalOp::Append {
                    table: "u".into(),
                    rows: vec![],
                },
            },
        ]
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = test_dir("wal_round_trip");
        let path = dir.join(WAL_FILE);
        let (mut wal, existing) = MutationWal::open(&path).unwrap();
        assert!(existing.is_empty());
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let (_, records) = MutationWal::open(&path).unwrap();
        assert_eq!(records, sample_records());
    }

    #[test]
    fn every_byte_truncation_recovers_the_longest_whole_prefix() {
        let dir = test_dir("wal_torn_tail");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let all = sample_records();
        // Record the valid length after each whole record.
        let mut boundaries = vec![fs::metadata(&path).unwrap().len()];
        for r in &all {
            wal.append(r).unwrap();
            boundaries.push(fs::metadata(&path).unwrap().len());
        }
        drop(wal);
        let bytes = fs::read(&path).unwrap();
        let torn = dir.join("torn.pbds");
        for cut in 0..=bytes.len() {
            fs::write(&torn, &bytes[..cut]).unwrap();
            // A cut inside the header leaves no whole record (and no header).
            let whole = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .count()
                .saturating_sub(1);
            let (records, valid_len) = read_records(&torn).unwrap();
            assert_eq!(records.len(), whole, "cut at {cut}");
            assert_eq!(&records[..], &all[..whole], "cut at {cut}");
            if whole > 0 {
                assert_eq!(valid_len, boundaries[whole], "cut at {cut}");
            }
        }
    }

    #[test]
    fn appends_after_torn_tail_truncation_are_readable() {
        let dir = test_dir("wal_torn_then_append");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let all = sample_records();
        wal.append(&all[0]).unwrap();
        wal.append(&all[1]).unwrap();
        drop(wal);
        // Tear the last record.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, records) = MutationWal::open(&path).unwrap();
        assert_eq!(&records[..], &all[..1]);
        wal.append(&all[2]).unwrap();
        drop(wal);
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![all[0].clone(), all[2].clone()]);
    }

    #[test]
    fn truncate_empties_the_log_but_keeps_it_appendable() {
        let dir = test_dir("wal_truncate");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.truncate().unwrap();
        let extra = WalRecord {
            seq: 9,
            op: WalOp::Append {
                table: "t".into(),
                rows: vec![vec![Value::Int(5)]],
            },
        };
        wal.append(&extra).unwrap();
        drop(wal);
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![extra]);
    }

    #[test]
    fn batched_append_is_byte_identical_to_sequential_appends() {
        let dir = test_dir("wal_batch_identical");
        let all = sample_records();
        let encoded: Vec<(u64, Vec<u8>)> = all
            .iter()
            .map(|r| (r.seq, encode_op(r.op.as_ref())))
            .collect();

        let one_by_one = dir.join("sequential.pbds");
        let (mut wal, _) = MutationWal::open(&one_by_one).unwrap();
        for (seq, bytes) in &encoded {
            wal.append_encoded(*seq, bytes).unwrap();
        }
        drop(wal);

        let batched = dir.join("batched.pbds");
        let (mut wal, _) = MutationWal::open(&batched).unwrap();
        wal.append_batch(&encoded).unwrap();
        drop(wal);

        assert_eq!(fs::read(&one_by_one).unwrap(), fs::read(&batched).unwrap());
        let (records, _) = read_records(&batched).unwrap();
        assert_eq!(records, all);
    }

    #[test]
    fn torn_tail_inside_a_batch_recovers_the_whole_record_prefix() {
        // A crash mid-batch must land recovery on a *record* boundary within
        // the batch, never a partial record — batches are a durability
        // optimization, not a recovery unit.
        let dir = test_dir("wal_batch_torn");
        let path = dir.join(WAL_FILE);
        let all = sample_records();
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let encoded: Vec<(u64, Vec<u8>)> = all
            .iter()
            .map(|r| (r.seq, encode_op(r.op.as_ref())))
            .collect();
        wal.append_batch(&encoded).unwrap();
        drop(wal);
        let bytes = fs::read(&path).unwrap();
        let torn = dir.join("torn.pbds");
        let mut seen_partial_prefixes = 0;
        for cut in 0..=bytes.len() {
            fs::write(&torn, &bytes[..cut]).unwrap();
            let (records, _) = read_records(&torn).unwrap();
            assert_eq!(&records[..], &all[..records.len()], "cut at {cut}");
            if !records.is_empty() && records.len() < all.len() {
                seen_partial_prefixes += 1;
            }
        }
        // Some cut points really do land between records of the batch.
        assert!(seen_partial_prefixes > 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dir = test_dir("wal_batch_empty");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let before = fs::metadata(&path).unwrap().len();
        wal.append_batch::<&[u8]>(&[]).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), before);
        let (records, _) = read_records(&path).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = test_dir("wal_missing");
        let (records, len) = read_records(&dir.join("nope.pbds")).unwrap();
        assert!(records.is_empty());
        assert_eq!(len, 0);
    }
}
