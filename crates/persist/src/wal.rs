//! The mutation write-ahead log.
//!
//! Every data mutation the serving middleware applies between checkpoints is
//! appended here as one checksummed frame and fsynced before the mutation is
//! acknowledged, so a crash loses at most the in-flight record — and a
//! record it *did* acknowledge is always replayable. The log is
//! **torn-tail tolerant**: a crash mid-append leaves a trailing partial
//! frame, which [`MutationWal::open`] detects via the frame CRC, truncates
//! away, and resumes appending after. Recovery therefore always lands on
//! the state of the *longest whole-record prefix* of the log.
//!
//! Records carry a monotone sequence number. The snapshot stores the highest
//! sequence it includes ([`crate::snapshot::write_snapshot`]), so replay
//! after a restart skips records the snapshot already covers — a crash
//! between "snapshot renamed" and "WAL truncated" can never double-apply an
//! append.
//!
//! Torn-tail tolerance is deliberately narrow: only damage with the *shape a
//! crash produces* (the file ends inside a frame, with nothing after) is
//! truncated away. A complete frame with a failing checksum, or a torn frame
//! *followed by* valid frames, means bytes the log once held were altered —
//! truncating there would silently drop acknowledged records, so recovery
//! fails with [`PersistError::Corrupt`] instead ([`read_records`]).
//!
//! Failed fsyncs follow the *fsyncgate* model: after `sync_data` fails, the
//! durable state of everything written since the last successful sync is
//! unknown, and a retried fsync on the same descriptor may report success
//! without the data. [`MutationWal::append_batch`] therefore poisons the
//! handle on sync failure; the owner must [`MutationWal::reopen_and_verify`]
//! — fresh descriptor, re-scan, truncate to the verified prefix — before any
//! further append.

use crate::codec::{decode_expr, encode_expr, ByteReader, ByteWriter};
use crate::frame::{check_header, file_header, frame_bytes, read_frame, FileKind, FrameRead};
use crate::io::{DurableFile, Io, RealIo};
use crate::PersistError;
use pbds_algebra::Expr;
use pbds_storage::Row;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.pbds";

/// A logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Rows appended at the tail of `table`.
    Append {
        /// The mutated table.
        table: String,
        /// The appended rows.
        rows: Vec<Row>,
    },
    /// Rows deleted from `table` by predicate.
    DeleteWhere {
        /// The mutated table.
        table: String,
        /// The delete predicate (re-evaluated deterministically on replay
        /// against the same pre-mutation state).
        predicate: Expr,
    },
}

/// One WAL record: a sequence number plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number (1-based; snapshots record the highest
    /// sequence they include).
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// A borrowed view of a WAL operation, so callers can encode a record
/// without cloning its payload (a bulk append's rows can be encoded straight
/// from the caller's buffer — or the table's tail — before ownership moves).
#[derive(Debug, Clone, Copy)]
pub enum WalOpRef<'a> {
    /// Rows appended at the tail of `table`.
    Append {
        /// The mutated table.
        table: &'a str,
        /// The appended rows.
        rows: &'a [Row],
    },
    /// Rows deleted from `table` by predicate.
    DeleteWhere {
        /// The mutated table.
        table: &'a str,
        /// The delete predicate.
        predicate: &'a Expr,
    },
}

impl WalOp {
    fn as_ref(&self) -> WalOpRef<'_> {
        match self {
            WalOp::Append { table, rows } => WalOpRef::Append { table, rows },
            WalOp::DeleteWhere { table, predicate } => WalOpRef::DeleteWhere { table, predicate },
        }
    }
}

/// Encode a WAL operation body (everything but the sequence number), for use
/// with [`MutationWal::append_encoded`].
pub fn encode_op(op: WalOpRef<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match op {
        WalOpRef::Append { table, rows } => {
            w.u8(0);
            w.str(table);
            w.u32(rows.len() as u32);
            for row in rows {
                w.values(row);
            }
        }
        WalOpRef::DeleteWhere { table, predicate } => {
            w.u8(1);
            w.str(table);
            encode_expr(&mut w, predicate);
        }
    }
    w.into_bytes()
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, PersistError> {
    let mut r = ByteReader::new(payload);
    let seq = r.u64()?;
    let op = match r.u8()? {
        0 => {
            let table = r.str()?;
            let n = r.u32()? as usize;
            let n = r.count(n, "appended row")?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.values()?);
            }
            WalOp::Append { table, rows }
        }
        1 => {
            let table = r.str()?;
            let predicate = decode_expr(&mut r)?;
            WalOp::DeleteWhere { table, predicate }
        }
        other => return Err(PersistError::corrupt(format!("unknown WAL op {other}"))),
    };
    r.finish("WAL record")?;
    Ok(WalRecord { seq, op })
}

/// Scan a WAL file, returning every whole valid record and the byte length
/// of the valid prefix (header included). A missing file reads as empty.
/// A genuinely torn tail (the file ends inside the last frame and nothing
/// valid follows) ends the scan; a checksum-complete-but-wrong frame, or a
/// torn frame with whole frames after it, is corruption and errors — see
/// the module docs for why the distinction matters.
pub fn read_records(path: &Path) -> Result<(Vec<WalRecord>, u64), PersistError> {
    read_records_with(&RealIo, path)
}

/// [`read_records`] through an injectable [`Io`].
pub fn read_records_with(io: &dyn Io, path: &Path) -> Result<(Vec<WalRecord>, u64), PersistError> {
    let bytes = match io.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e.into()),
    };
    let mut pos = 0;
    // Header: a torn header (crash during the very first creation) makes the
    // whole file an empty log — unless record frames follow it, in which
    // case the header was damaged *after* being written, i.e. corruption.
    match read_frame(&bytes, pos) {
        FrameRead::Frame { payload, next } => {
            check_header(payload, FileKind::Wal)?;
            pos = next;
        }
        FrameRead::End => return Ok((Vec::new(), 0)),
        FrameRead::Torn => {
            if frames_follow(&bytes, pos) {
                return Err(PersistError::corrupt(
                    "WAL header is torn but whole record frames follow it",
                ));
            }
            return Ok((Vec::new(), 0));
        }
        FrameRead::Corrupt => {
            return Err(PersistError::corrupt(
                "WAL header frame is complete but fails its checksum",
            ))
        }
    }
    let mut records = Vec::new();
    loop {
        match read_frame(&bytes, pos) {
            FrameRead::Frame { payload, next } => {
                // A frame whose checksum passes always decodes (the writer
                // checksummed exactly what it encoded); one that does not is
                // altered or foreign bytes, never a crash artifact.
                let record = decode_record(payload).map_err(|e| {
                    PersistError::corrupt(format!(
                        "checksum-valid WAL frame at byte {pos} does not decode: {e}"
                    ))
                })?;
                records.push(record);
                pos = next;
            }
            FrameRead::End => break,
            FrameRead::Torn => {
                // Only a *tail* may be torn. Valid frames after the torn
                // point mean the log was damaged in the middle; truncating
                // here would drop the acknowledged records that follow.
                if frames_follow(&bytes, pos + 1) {
                    return Err(PersistError::corrupt(format!(
                        "WAL frame at byte {pos} is torn but whole frames follow it"
                    )));
                }
                break;
            }
            FrameRead::Corrupt => {
                return Err(PersistError::corrupt(format!(
                    "WAL frame at byte {pos} is complete but fails its checksum"
                )))
            }
        }
    }
    Ok((records, pos as u64))
}

/// Resync scan: does a whole, checksum-valid, **record-decoding** frame
/// start at any byte offset >= `from`? Used to tell a torn tail (nothing
/// after) from mid-log damage (acknowledged records after). The decode
/// requirement matters: eight consecutive zero bytes — common inside
/// sequence numbers and row counts — parse as a checksum-valid *empty*
/// frame (`crc32("") == 0`), so structural validity alone would see
/// phantom frames inside any torn record. O(bytes²) worst case, but only
/// runs on the already-rare damaged-log path.
fn frames_follow(bytes: &[u8], from: usize) -> bool {
    (from..bytes.len()).any(|q| match read_frame(bytes, q) {
        FrameRead::Frame { payload, .. } => decode_record(payload).is_ok(),
        _ => false,
    })
}

/// An open, appendable mutation WAL.
#[derive(Debug)]
pub struct MutationWal {
    io: Arc<dyn Io>,
    path: PathBuf,
    file: Box<dyn DurableFile>,
    /// Length of the valid prefix (header + whole records). A failed append
    /// rolls the file back to this point, so later appends can never land
    /// after a torn frame in the middle of the log.
    len: u64,
    /// Cleared when the durable state of this handle became unknown — a
    /// failed fsync (fsyncgate: a retry on the same descriptor can lie), or
    /// a failed write that could not be rolled back. Further appends are
    /// refused until [`MutationWal::reopen_and_verify`] re-establishes a
    /// verified prefix on a fresh descriptor.
    healthy: bool,
}

impl MutationWal {
    /// Open (creating if needed) the WAL at `path`. Existing whole records
    /// are returned; a torn tail is truncated away so subsequent appends
    /// extend the valid prefix.
    pub fn open(path: &Path) -> Result<(MutationWal, Vec<WalRecord>), PersistError> {
        Self::open_with(Arc::new(RealIo), path)
    }

    /// [`MutationWal::open`] through an injectable [`Io`].
    pub fn open_with(
        io: Arc<dyn Io>,
        path: &Path,
    ) -> Result<(MutationWal, Vec<WalRecord>), PersistError> {
        let (records, valid_len) = read_records_with(io.as_ref(), path)?;
        let mut file = io.open_rw(path)?;
        let len = if valid_len == 0 {
            // Fresh (or unusable) log: start over with a clean header.
            file.set_len(0)?;
            write_header(file.as_mut())?
        } else {
            file.set_len(valid_len)?;
            file.sync_all()?;
            valid_len
        };
        file.seek_to(len)?;
        Ok((
            MutationWal {
                io,
                path: path.to_path_buf(),
                file,
                len,
                healthy: true,
            },
            records,
        ))
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether this handle will accept appends. `false` after a failed fsync
    /// or an un-rollbackable write; see [`MutationWal::reopen_and_verify`].
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// Recover a poisoned handle: open a **fresh** descriptor, re-scan the
    /// file, truncate to the longest verified whole-record prefix and resume
    /// appending there. This is the only correct response to a failed fsync
    /// — retrying on the old descriptor can report success for data the
    /// kernel already dropped (fsyncgate). Returns the records the verified
    /// prefix holds so the caller can reconcile durable state against its
    /// own; errors if the file is corrupt (not merely torn).
    pub fn reopen_and_verify(&mut self) -> Result<Vec<WalRecord>, PersistError> {
        let (wal, records) = MutationWal::open_with(Arc::clone(&self.io), &self.path)?;
        *self = wal;
        Ok(records)
    }

    /// Append one record and fsync it. On return the record is durable.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), PersistError> {
        self.append_encoded(record.seq, &encode_op(record.op.as_ref()))
    }

    /// Append a record from its pre-encoded operation body (see
    /// [`encode_op`]) and fsync it. Equivalent to a one-record
    /// [`MutationWal::append_batch`].
    pub fn append_encoded(&mut self, seq: u64, op_bytes: &[u8]) -> Result<(), PersistError> {
        self.append_batch(&[(seq, op_bytes)])
    }

    /// Group commit: append every record in `records` (sequence number +
    /// pre-encoded operation body, see [`encode_op`]) as consecutive
    /// per-record CRC frames, then issue **one** `sync_data` for the whole
    /// batch. The on-disk format is byte-identical to appending each record
    /// with [`MutationWal::append_encoded`] — torn-tail recovery and
    /// seq-skipping replay see individual records, never batch boundaries —
    /// but the durability cost is amortized: one fsync covers them all.
    ///
    /// On success every record is durable. On error the file is rolled back
    /// to the last previously-acknowledged whole record, so nothing of the
    /// failed batch (not even its leading records) can survive a later
    /// replay — all-or-nothing, matching the "tickets complete only after
    /// the batch is durable" contract. An empty batch is a no-op (no write,
    /// no fsync).
    pub fn append_batch<B: AsRef<[u8]>>(
        &mut self,
        records: &[(u64, B)],
    ) -> Result<(), PersistError> {
        if !self.healthy {
            return Err(PersistError::Io(
                "WAL handle is poisoned (failed fsync or un-rollbackable write); \
                 reopen_and_verify() before appending"
                    .into(),
            ));
        }
        if records.is_empty() {
            return Ok(());
        }
        // Frame the whole batch into one buffer so the kernel sees a single
        // contiguous write followed by a single flush.
        let total: usize = records
            .iter()
            .map(|(_, b)| 8 + 8 + b.as_ref().len() + 4)
            .sum();
        let mut buf = Vec::with_capacity(total);
        for (seq, op_bytes) in records {
            let op_bytes = op_bytes.as_ref();
            let payload_len = 8 + op_bytes.len();
            let len = u32::try_from(payload_len).map_err(|_| {
                PersistError::corrupt(format!(
                    "WAL record payload of {payload_len} bytes exceeds the u32 length prefix"
                ))
            })?;
            let seq_bytes = seq.to_le_bytes();
            let crc = crate::frame::crc32_finish(crate::frame::crc32_extend(
                crate::frame::crc32_extend(crate::frame::crc32_start(), &seq_bytes),
                op_bytes,
            ));
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&seq_bytes);
            buf.extend_from_slice(op_bytes);
            buf.extend_from_slice(&crc.to_le_bytes());
        }
        if let Err(e) = self.file.write_all(&buf) {
            // A failed *write* (short write, ENOSPC) left the descriptor's
            // sync state trustworthy — only the file tail is suspect. A
            // partial write would otherwise sit *between* the valid prefix
            // and any future (successful, acknowledged) append, and recovery
            // would refuse the log as mid-damaged. Roll back to the
            // whole-record prefix; if even that fails, poison the handle.
            let rolled = self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.seek_to(self.len))
                .and_then(|()| self.file.sync_data());
            if rolled.is_err() {
                self.healthy = false;
            }
            return Err(e.into());
        }
        if let Err(e) = self.file.sync_data() {
            // fsyncgate: the durable state of everything written since the
            // last successful sync is now UNKNOWN — the kernel may have
            // dropped the dirty pages, and a retried fsync on this same
            // descriptor can report success without them. No rollback is
            // attempted (set_len + sync on this descriptor proves nothing);
            // the handle is poisoned until reopen_and_verify().
            self.healthy = false;
            return Err(e.into());
        }
        self.len += buf.len() as u64;
        Ok(())
    }

    /// Drop every record (after a checkpoint made them redundant), keeping
    /// the file header. A fully successful truncation also restores a
    /// poisoned log to health — but never on the poisoned descriptor
    /// itself: a handle whose fsync lied once may lie again, so the
    /// truncation happens on a freshly opened one. A truncation that fails
    /// partway — e.g. a half-written header — poisons the log instead, so
    /// no later append can land bytes that recovery would misparse or
    /// discard.
    pub fn truncate(&mut self) -> Result<(), PersistError> {
        if !self.healthy {
            // Discard the poisoned descriptor first (fsyncgate: its syncs
            // can no longer be trusted to report loss).
            self.file = self.io.open_rw(&self.path)?;
        }
        let result = (|| {
            self.file.set_len(0)?;
            self.file.seek_to(0)?;
            write_header(self.file.as_mut())
        })();
        match result {
            Ok(header_len) => {
                self.len = header_len;
                self.healthy = true;
                Ok(())
            }
            Err(e) => {
                self.healthy = false;
                Err(e)
            }
        }
    }
}

/// Write the WAL header frame; returns the header length in bytes.
fn write_header(file: &mut dyn DurableFile) -> Result<u64, PersistError> {
    let header = frame_bytes(&file_header(FileKind::Wal))?;
    file.write_all(&header)?;
    file.sync_all()?;
    Ok(header.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultInjector, FaultIo, FaultKind, FaultSpec, FileClass};
    use crate::test_dir;
    use pbds_algebra::{col, lit};
    use pbds_storage::Value;
    use std::fs;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                op: WalOp::Append {
                    table: "t".into(),
                    rows: vec![
                        vec![Value::Int(1), Value::from("a")],
                        vec![Value::Float(-0.0), Value::Null],
                    ],
                },
            },
            WalRecord {
                seq: 2,
                op: WalOp::DeleteWhere {
                    table: "t".into(),
                    predicate: col("v").between(lit(3), lit(9)),
                },
            },
            WalRecord {
                seq: 3,
                op: WalOp::Append {
                    table: "u".into(),
                    rows: vec![],
                },
            },
        ]
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = test_dir("wal_round_trip");
        let path = dir.join(WAL_FILE);
        let (mut wal, existing) = MutationWal::open(&path).unwrap();
        assert!(existing.is_empty());
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let (_, records) = MutationWal::open(&path).unwrap();
        assert_eq!(records, sample_records());
    }

    #[test]
    fn every_byte_truncation_recovers_the_longest_whole_prefix() {
        let dir = test_dir("wal_torn_tail");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let all = sample_records();
        // Record the valid length after each whole record.
        let mut boundaries = vec![fs::metadata(&path).unwrap().len()];
        for r in &all {
            wal.append(r).unwrap();
            boundaries.push(fs::metadata(&path).unwrap().len());
        }
        drop(wal);
        let bytes = fs::read(&path).unwrap();
        let torn = dir.join("torn.pbds");
        for cut in 0..=bytes.len() {
            fs::write(&torn, &bytes[..cut]).unwrap();
            // A cut inside the header leaves no whole record (and no header).
            let whole = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .count()
                .saturating_sub(1);
            let (records, valid_len) = read_records(&torn).unwrap();
            assert_eq!(records.len(), whole, "cut at {cut}");
            assert_eq!(&records[..], &all[..whole], "cut at {cut}");
            if whole > 0 {
                assert_eq!(valid_len, boundaries[whole], "cut at {cut}");
            }
        }
    }

    #[test]
    fn appends_after_torn_tail_truncation_are_readable() {
        let dir = test_dir("wal_torn_then_append");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let all = sample_records();
        wal.append(&all[0]).unwrap();
        wal.append(&all[1]).unwrap();
        drop(wal);
        // Tear the last record.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, records) = MutationWal::open(&path).unwrap();
        assert_eq!(&records[..], &all[..1]);
        wal.append(&all[2]).unwrap();
        drop(wal);
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![all[0].clone(), all[2].clone()]);
    }

    #[test]
    fn truncate_empties_the_log_but_keeps_it_appendable() {
        let dir = test_dir("wal_truncate");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.truncate().unwrap();
        let extra = WalRecord {
            seq: 9,
            op: WalOp::Append {
                table: "t".into(),
                rows: vec![vec![Value::Int(5)]],
            },
        };
        wal.append(&extra).unwrap();
        drop(wal);
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![extra]);
    }

    #[test]
    fn batched_append_is_byte_identical_to_sequential_appends() {
        let dir = test_dir("wal_batch_identical");
        let all = sample_records();
        let encoded: Vec<(u64, Vec<u8>)> = all
            .iter()
            .map(|r| (r.seq, encode_op(r.op.as_ref())))
            .collect();

        let one_by_one = dir.join("sequential.pbds");
        let (mut wal, _) = MutationWal::open(&one_by_one).unwrap();
        for (seq, bytes) in &encoded {
            wal.append_encoded(*seq, bytes).unwrap();
        }
        drop(wal);

        let batched = dir.join("batched.pbds");
        let (mut wal, _) = MutationWal::open(&batched).unwrap();
        wal.append_batch(&encoded).unwrap();
        drop(wal);

        assert_eq!(fs::read(&one_by_one).unwrap(), fs::read(&batched).unwrap());
        let (records, _) = read_records(&batched).unwrap();
        assert_eq!(records, all);
    }

    #[test]
    fn torn_tail_inside_a_batch_recovers_the_whole_record_prefix() {
        // A crash mid-batch must land recovery on a *record* boundary within
        // the batch, never a partial record — batches are a durability
        // optimization, not a recovery unit.
        let dir = test_dir("wal_batch_torn");
        let path = dir.join(WAL_FILE);
        let all = sample_records();
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let encoded: Vec<(u64, Vec<u8>)> = all
            .iter()
            .map(|r| (r.seq, encode_op(r.op.as_ref())))
            .collect();
        wal.append_batch(&encoded).unwrap();
        drop(wal);
        let bytes = fs::read(&path).unwrap();
        let torn = dir.join("torn.pbds");
        let mut seen_partial_prefixes = 0;
        for cut in 0..=bytes.len() {
            fs::write(&torn, &bytes[..cut]).unwrap();
            let (records, _) = read_records(&torn).unwrap();
            assert_eq!(&records[..], &all[..records.len()], "cut at {cut}");
            if !records.is_empty() && records.len() < all.len() {
                seen_partial_prefixes += 1;
            }
        }
        // Some cut points really do land between records of the batch.
        assert!(seen_partial_prefixes > 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dir = test_dir("wal_batch_empty");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let before = fs::metadata(&path).unwrap().len();
        wal.append_batch::<&[u8]>(&[]).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), before);
        let (records, _) = read_records(&path).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = test_dir("wal_missing");
        let (records, len) = read_records(&dir.join("nope.pbds")).unwrap();
        assert!(records.is_empty());
        assert_eq!(len, 0);
    }

    #[test]
    fn mid_log_bit_flip_is_corruption_not_silent_truncation() {
        let dir = test_dir("wal_mid_log_corruption");
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = MutationWal::open(&path).unwrap();
        let all = sample_records();
        let mut boundaries = vec![fs::metadata(&path).unwrap().len() as usize];
        for r in &all {
            wal.append(r).unwrap();
            boundaries.push(fs::metadata(&path).unwrap().len() as usize);
        }
        drop(wal);
        let bytes = fs::read(&path).unwrap();
        // Flip one bit inside the FIRST record (an acknowledged mutation
        // with more acknowledged mutations after it). Torn-tail truncation
        // here would silently drop records 1..; recovery must refuse.
        for offset in [
            boundaries[0] + 6, // first record's payload
            boundaries[1] + 6, // second record's payload
            bytes.len() - 6,   // last record's payload (complete frame)
            boundaries[0] + 1, // first record's length prefix (shrinks)
        ] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x01;
            fs::write(&path, &bad).unwrap();
            let err = read_records(&path);
            assert!(
                err.is_err(),
                "bit flip at byte {offset} was silently tolerated: {err:?}"
            );
            assert!(
                MutationWal::open(&path).is_err(),
                "open accepted flip at {offset}"
            );
        }
    }

    #[test]
    fn failed_fsync_poisons_the_handle_until_reopen_and_verify() {
        let dir = test_dir("wal_fsyncgate");
        let path = dir.join(WAL_FILE);
        let inj = FaultInjector::new(1234);
        let io: Arc<dyn Io> = Arc::new(FaultIo::new(Arc::clone(&inj)));
        let (mut wal, _) = MutationWal::open_with(Arc::clone(&io), &path).unwrap();
        let all = sample_records();
        wal.append(&all[0]).unwrap();
        inj.inject(FaultSpec {
            kind: FaultKind::FsyncFail,
            class: FileClass::Wal,
            skip: 0,
        });
        // The batch fails, and the handle refuses everything after.
        assert!(wal.append(&all[1]).is_err());
        assert!(!wal.is_healthy());
        let refused = wal.append(&all[2]).unwrap_err();
        assert!(refused.to_string().contains("poisoned"), "{refused}");
        // reopen_and_verify lands on a verified whole-record prefix: record
        // 0 for sure (synced before the fault), record 1 only if the seeded
        // page loss happened to keep all its bytes.
        let records = wal.reopen_and_verify().unwrap();
        assert!(!records.is_empty() && records[0] == all[0]);
        assert!(records.len() <= 2);
        assert!(wal.is_healthy());
        // Appends resume and the log stays fully readable.
        wal.append(&all[2]).unwrap();
        drop(wal);
        let (recovered, _) = read_records(&path).unwrap();
        assert_eq!(recovered.len(), records.len() + 1);
        assert_eq!(recovered.last().unwrap(), &all[2]);
    }

    #[test]
    fn truncate_reopens_a_poisoned_descriptor_before_reuse() {
        let dir = test_dir("wal_truncate_heals");
        let path = dir.join(WAL_FILE);
        let inj = FaultInjector::new(99);
        let io: Arc<dyn Io> = Arc::new(FaultIo::new(Arc::clone(&inj)));
        let (mut wal, _) = MutationWal::open_with(Arc::clone(&io), &path).unwrap();
        let all = sample_records();
        wal.append(&all[0]).unwrap();
        inj.inject(FaultSpec {
            kind: FaultKind::FsyncFail,
            class: FileClass::Wal,
            skip: 0,
        });
        assert!(wal.append(&all[1]).is_err());
        assert!(!wal.is_healthy());
        // A checkpoint-driven truncate restores health on a fresh fd.
        wal.truncate().unwrap();
        assert!(wal.is_healthy());
        wal.append(&all[2]).unwrap();
        drop(wal);
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![all[2].clone()]);
    }

    #[test]
    fn short_write_rolls_back_to_the_acknowledged_prefix() {
        let dir = test_dir("wal_short_write_rollback");
        let path = dir.join(WAL_FILE);
        let inj = FaultInjector::new(7);
        let io: Arc<dyn Io> = Arc::new(FaultIo::new(Arc::clone(&inj)));
        let (mut wal, _) = MutationWal::open_with(Arc::clone(&io), &path).unwrap();
        let all = sample_records();
        wal.append(&all[0]).unwrap();
        let acked_len = fs::metadata(&path).unwrap().len();
        inj.inject(FaultSpec {
            kind: FaultKind::ShortWrite,
            class: FileClass::Wal,
            skip: 0,
        });
        assert!(wal.append(&all[1]).is_err());
        // A failed write is rolled back in place: no torn bytes on disk,
        // the handle stays healthy, the next append succeeds.
        assert_eq!(fs::metadata(&path).unwrap().len(), acked_len);
        assert!(wal.is_healthy());
        wal.append(&all[2]).unwrap();
        drop(wal);
        let (records, _) = read_records(&path).unwrap();
        assert_eq!(records, vec![all[0].clone(), all[2].clone()]);
    }
}
