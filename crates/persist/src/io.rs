//! Injectable I/O: the seam the fault-injection harness plugs into.
//!
//! Every durable write in this crate — WAL appends, snapshot and catalog
//! replacement — goes through the [`Io`] / [`DurableFile`] traits instead of
//! `std::fs` directly. Production uses [`RealIo`], a zero-cost passthrough.
//! Tests use [`FaultIo`], which wraps the real filesystem but consults a
//! seeded [`FaultInjector`] before each operation, so a test can arrange for
//! *exactly* the n-th fsync on the WAL to fail, or the next snapshot write
//! to hit ENOSPC, and replay the same schedule deterministically from its
//! seed.
//!
//! The injector models the failure semantics that actually bite real
//! systems, not idealized ones:
//!
//! * **Failed fsync ([`FaultKind::FsyncFail`])** follows the *fsyncgate*
//!   model: when fsync fails, an unknown subset of the not-yet-synced bytes
//!   made it to disk (a seeded prefix here), the rest are gone, and — the
//!   treacherous part — a *retried* fsync on the same descriptor reports
//!   success without bringing the lost bytes back. Callers must treat the
//!   handle as unusable and re-open-and-verify.
//! * **Short writes ([`FaultKind::ShortWrite`])** persist a seeded prefix of
//!   the buffer and fail, modelling a torn write at crash or a partial
//!   `write(2)` the caller failed to resume.
//! * **ENOSPC ([`FaultKind::Enospc`])** fails before any byte is written.
//! * **Read corruption ([`FaultKind::ReadCorrupt`])** flips one seeded bit
//!   in the bytes returned by a read, which the frame CRCs must catch.

use std::fmt;
use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pbds_sync::TrackedMutex;

/// A writable durable file handle, behind the real `File` in production.
///
/// Object-safe so [`MutationWal`](crate::MutationWal) and the atomic
/// replacement path can hold `Box<dyn DurableFile>` without generics
/// leaking into their public types.
pub trait DurableFile: Send + fmt::Debug {
    /// Write the whole buffer (or fail, possibly after a partial write).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate or extend the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Position the write cursor at absolute offset `pos`.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

/// The filesystem operations the durability layer performs, as an injectable
/// seam. [`RealIo`] passes straight through to `std::fs`; [`FaultIo`]
/// interposes a [`FaultInjector`].
pub trait Io: Send + Sync + fmt::Debug {
    /// Whether a file exists. Faults are never injected here: existence is
    /// a pure metadata probe both implementations answer from the real
    /// filesystem.
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    /// Read an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create (truncating) a file for writing — the temp-file half of
    /// atomic replacement.
    fn create(&self, path: &Path) -> io::Result<Box<dyn DurableFile>>;
    /// Open (creating if missing, *not* truncating) a read/write file — the
    /// WAL's append handle.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn DurableFile>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory so a rename within it is durable. Best-effort on
    /// platforms where directories cannot be opened.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Recursively create a directory. Metadata-only, so the default
    /// passthrough suits every implementation; it exists on the trait so
    /// callers (e.g. `pbds-core`'s store bootstrap) never touch `std::fs`
    /// directly.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
}

/// The production [`Io`]: a zero-state passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

#[derive(Debug)]
struct RealFile(fs::File);

impl DurableFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

fn open_rw_options(path: &Path) -> io::Result<fs::File> {
    fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .read(true)
        .write(true)
        .open(path)
}

impl Io for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(RealFile(fs::File::create(path)?)))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(RealFile(open_rw_options(path)?)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        fs::File::open(dir)?.sync_all()
    }
}

/// Which durability file an operation touches, classified from its path so
/// fault specs can target "the WAL" or "the snapshot" without plumbing
/// context through every call site. Temp files inherit the class of the
/// file they will be renamed to (`snapshot.tmp` is a [`FileClass::Snapshot`]
/// operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// The mutation WAL.
    Wal,
    /// A database snapshot (including its temp file).
    Snapshot,
    /// A persisted sketch catalog (including its temp file).
    Catalog,
    /// Anything else.
    Other,
}

impl FileClass {
    /// Classify a path by its file name.
    pub fn of(path: &Path) -> FileClass {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.contains("wal") {
            FileClass::Wal
        } else if name.contains("snapshot") {
            FileClass::Snapshot
        } else if name.contains("catalog") {
            FileClass::Catalog
        } else {
            FileClass::Other
        }
    }
}

/// The injectable failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// fsync/fdatasync fails; a seeded subset of unsynced bytes is lost and
    /// later fsyncs on the same handle falsely succeed (fsyncgate).
    FsyncFail,
    /// A write persists only a seeded prefix of its buffer, then fails.
    ShortWrite,
    /// A write fails before persisting anything (disk full).
    Enospc,
    /// A read returns its bytes with one seeded bit flipped.
    ReadCorrupt,
}

/// One armed fault: fire `kind` on the (`skip`+1)-th matching operation
/// against a file of `class`. Each spec fires exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The failure to inject.
    pub kind: FaultKind,
    /// Which durability file to target.
    pub class: FileClass,
    /// How many matching operations to let through first.
    pub skip: u64,
}

#[derive(Debug)]
struct InjectorState {
    armed: Vec<(FaultSpec, u64)>,
    rng: u64,
    fired: Vec<String>,
}

/// A deterministic, seeded source of injected I/O faults, shared (via
/// `Arc`) between the [`FaultIo`] handles of one test schedule.
///
/// Arm faults with [`FaultInjector::inject`]; each fires once, on the
/// (`skip`+1)-th matching operation. Where a fault needs a quantity — how
/// much of a short write survives, which bit of a read flips — it draws from
/// a splitmix64 stream seeded at construction, so the same seed replays the
/// same damage byte-for-byte.
#[derive(Debug)]
pub struct FaultInjector {
    state: TrackedMutex<InjectorState>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum WriteFault {
    None,
    Short(usize),
    Enospc,
}

impl FaultInjector {
    /// A new injector with no faults armed, drawing quantities from `seed`.
    pub fn new(seed: u64) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            state: TrackedMutex::new(
                "persist.fault_injector",
                InjectorState {
                    armed: Vec::new(),
                    rng: seed ^ 0xA076_1D64_78BD_642F,
                    fired: Vec::new(),
                },
            ),
        })
    }

    /// Arm one fault. Multiple faults may be armed; each fires at most once.
    pub fn inject(&self, spec: FaultSpec) {
        let mut s = self.state.lock();
        let skip = spec.skip;
        s.armed.push((spec, skip));
    }

    /// Descriptions of every fault that has fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.state.lock().fired.clone()
    }

    /// How many armed faults have not fired yet.
    pub fn armed_remaining(&self) -> usize {
        self.state.lock().armed.len()
    }

    /// Find an armed spec matching (kinds, class); count the operation
    /// against its skip budget and pop it if it fires.
    fn take(&self, kinds: &[FaultKind], class: FileClass) -> Option<(FaultKind, u64)> {
        let mut s = self.state.lock();
        let idx = s
            .armed
            .iter()
            .position(|(spec, _)| kinds.contains(&spec.kind) && spec.class == class)?;
        if s.armed[idx].1 > 0 {
            s.armed[idx].1 -= 1;
            return None;
        }
        let (spec, _) = s.armed.remove(idx);
        let draw = splitmix64(&mut s.rng);
        s.fired.push(format!(
            "{:?} on {:?} (skip {})",
            spec.kind, class, spec.skip
        ));
        Some((spec.kind, draw))
    }

    fn decide_write(&self, class: FileClass, len: usize) -> WriteFault {
        match self.take(&[FaultKind::ShortWrite, FaultKind::Enospc], class) {
            Some((FaultKind::ShortWrite, draw)) => {
                // Keep a strict prefix so the failure is visible on disk.
                WriteFault::Short(if len == 0 { 0 } else { draw as usize % len })
            }
            Some((FaultKind::Enospc, _)) => WriteFault::Enospc,
            _ => WriteFault::None,
        }
    }

    fn decide_sync(&self, class: FileClass) -> Option<u64> {
        self.take(&[FaultKind::FsyncFail], class).map(|(_, d)| d)
    }

    fn decide_read(&self, class: FileClass) -> Option<u64> {
        self.take(&[FaultKind::ReadCorrupt], class).map(|(_, d)| d)
    }
}

/// An [`Io`] that performs real filesystem operations but consults a
/// [`FaultInjector`] before each one.
#[derive(Debug, Clone)]
pub struct FaultIo {
    injector: Arc<FaultInjector>,
}

impl FaultIo {
    /// Wrap the real filesystem with `injector`.
    pub fn new(injector: Arc<FaultInjector>) -> FaultIo {
        FaultIo { injector }
    }

    /// The shared injector, for arming faults and inspecting what fired.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl Io for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = fs::read(path)?;
        if let Some(draw) = self.injector.decide_read(FileClass::of(path)) {
            if !bytes.is_empty() {
                let idx = (draw as usize) % bytes.len();
                let bit = 1u8 << ((draw >> 32) % 8);
                bytes[idx] ^= bit;
            }
        }
        Ok(bytes)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(FaultFile {
            file: fs::File::create(path)?,
            path: path.to_path_buf(),
            class: FileClass::of(path),
            injector: Arc::clone(&self.injector),
            synced_len: 0,
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn DurableFile>> {
        let file = open_rw_options(path)?;
        let synced_len = file.metadata()?.len();
        Ok(Box::new(FaultFile {
            file,
            path: path.to_path_buf(),
            class: FileClass::of(path),
            injector: Arc::clone(&self.injector),
            synced_len,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        fs::File::open(dir)?.sync_all()
    }
}

/// A real file that injects faults. Tracks `synced_len` — the length known
/// to be on stable storage — to model fsyncgate: an injected fsync failure
/// drops a seeded suffix of the unsynced bytes *and marks the rest synced*,
/// so a retried fsync on this handle reports success without restoring
/// anything.
#[derive(Debug)]
struct FaultFile {
    file: fs::File,
    #[allow(dead_code)] // diagnostic context for Debug output
    path: PathBuf,
    class: FileClass,
    injector: Arc<FaultInjector>,
    synced_len: u64,
}

impl DurableFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.injector.decide_write(self.class, buf.len()) {
            WriteFault::None => self.file.write_all(buf),
            WriteFault::Short(keep) => {
                self.file.write_all(&buf[..keep])?;
                Err(injected("short write"))
            }
            WriteFault::Enospc => Err(injected("no space left on device")),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.sync(false)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.sync(true)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.synced_len = self.synced_len.min(len);
        Ok(())
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl FaultFile {
    fn sync(&mut self, all: bool) -> io::Result<()> {
        if let Some(draw) = self.injector.decide_sync(self.class) {
            // fsyncgate: the kernel dropped the dirty pages. A seeded prefix
            // of the unsynced bytes survives on disk; the rest are gone for
            // good, and this handle will never report the loss again.
            let len = self.file.metadata()?.len();
            if len > self.synced_len {
                let keep = draw % (len - self.synced_len + 1);
                self.file.set_len(self.synced_len + keep)?;
            }
            self.synced_len = self.file.metadata()?.len();
            return Err(injected("fsync failure (unsynced bytes lost)"));
        }
        let result = if all {
            self.file.sync_all()
        } else {
            self.file.sync_data()
        };
        if result.is_ok() {
            self.synced_len = self.file.metadata()?.len();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.pbds")
    }

    #[test]
    fn real_io_round_trips() {
        let dir = test_dir("io_real_round_trip");
        let path = wal_path(&dir);
        let io = RealIo;
        let mut f = io.create(&path).unwrap();
        f.write_all(b"hello durable world").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello durable world");
        let mut f = io.open_rw(&path).unwrap();
        f.seek_to(6).unwrap();
        f.write_all(b"DURABLE").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello DURABLE world");
    }

    #[test]
    fn file_class_covers_temp_files() {
        assert_eq!(FileClass::of(Path::new("/x/wal.pbds")), FileClass::Wal);
        assert_eq!(
            FileClass::of(Path::new("/x/snapshot.pbds")),
            FileClass::Snapshot
        );
        assert_eq!(
            FileClass::of(Path::new("/x/snapshot.tmp")),
            FileClass::Snapshot
        );
        assert_eq!(
            FileClass::of(Path::new("/x/catalog.tmp")),
            FileClass::Catalog
        );
        assert_eq!(FileClass::of(Path::new("/x/other.bin")), FileClass::Other);
    }

    #[test]
    fn short_write_keeps_a_strict_prefix_and_fails() {
        let dir = test_dir("io_short_write");
        let path = wal_path(&dir);
        let inj = FaultInjector::new(7);
        inj.inject(FaultSpec {
            kind: FaultKind::ShortWrite,
            class: FileClass::Wal,
            skip: 0,
        });
        let io = FaultIo::new(Arc::clone(&inj));
        let mut f = io.create(&path).unwrap();
        let err = f.write_all(&[0xAB; 64]).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        let on_disk = fs::read(&path).unwrap();
        assert!(on_disk.len() < 64, "whole buffer persisted");
        assert!(on_disk.iter().all(|&b| b == 0xAB));
        assert_eq!(inj.fired().len(), 1);
        assert_eq!(inj.armed_remaining(), 0);
        // The fault was one-shot: the next write succeeds.
        f.write_all(&[0xCD; 8]).unwrap();
    }

    #[test]
    fn enospc_persists_nothing() {
        let dir = test_dir("io_enospc");
        let path = wal_path(&dir);
        let inj = FaultInjector::new(3);
        inj.inject(FaultSpec {
            kind: FaultKind::Enospc,
            class: FileClass::Wal,
            skip: 0,
        });
        let io = FaultIo::new(inj);
        let mut f = io.create(&path).unwrap();
        let err = f.write_all(&[1; 32]).unwrap_err();
        assert!(err.to_string().contains("no space"), "{err}");
        assert_eq!(fs::read(&path).unwrap().len(), 0);
    }

    #[test]
    fn failed_fsync_loses_unsynced_bytes_and_then_lies() {
        let dir = test_dir("io_fsyncgate");
        let path = wal_path(&dir);
        let inj = FaultInjector::new(42);
        inj.inject(FaultSpec {
            kind: FaultKind::FsyncFail,
            class: FileClass::Wal,
            skip: 0,
        });
        let io = FaultIo::new(Arc::clone(&inj));
        let mut f = io.create(&path).unwrap();
        f.write_all(&[1; 100]).unwrap();
        assert!(f.sync_data().is_err());
        let after_fail = fs::metadata(&path).unwrap().len();
        assert!(after_fail <= 100, "failed fsync extended the file");
        // The treacherous retry: reports success, restores nothing.
        f.sync_data().unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), after_fail);
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn skip_counts_matching_operations_only() {
        let dir = test_dir("io_skip");
        let inj = FaultInjector::new(9);
        inj.inject(FaultSpec {
            kind: FaultKind::FsyncFail,
            class: FileClass::Wal,
            skip: 2,
        });
        let io = FaultIo::new(Arc::clone(&inj));
        // Syncs on a snapshot file never count against a Wal spec.
        let mut snap = io.create(&dir.join("snapshot.tmp")).unwrap();
        snap.write_all(b"s").unwrap();
        snap.sync_all().unwrap();
        let mut f = io.create(&wal_path(&dir)).unwrap();
        f.write_all(b"a").unwrap();
        f.sync_data().unwrap(); // skip 1
        f.sync_data().unwrap(); // skip 2
        assert!(f.sync_data().is_err()); // fires
        assert_eq!(inj.armed_remaining(), 0);
    }

    #[test]
    fn read_corruption_flips_exactly_one_bit_deterministically() {
        let dir = test_dir("io_read_corrupt");
        let path = dir.join("catalog.pbds");
        fs::write(&path, [0u8; 256]).unwrap();
        let corrupt_with = |seed: u64| {
            let inj = FaultInjector::new(seed);
            inj.inject(FaultSpec {
                kind: FaultKind::ReadCorrupt,
                class: FileClass::Catalog,
                skip: 0,
            });
            FaultIo::new(inj).read(&path).unwrap()
        };
        let a = corrupt_with(5);
        let b = corrupt_with(5);
        let c = corrupt_with(6);
        assert_eq!(a, b, "same seed, different damage");
        let flipped: u32 = a.iter().map(|&byte| byte.count_ones()).sum();
        assert_eq!(flipped, 1, "expected exactly one flipped bit");
        // A different seed lands (with overwhelming probability) elsewhere.
        assert_ne!(a, c);
        // An unarmed injector reads clean.
        let clean = FaultIo::new(FaultInjector::new(5)).read(&path).unwrap();
        assert_eq!(clean, vec![0u8; 256]);
    }
}
