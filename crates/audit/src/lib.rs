//! # pbds-audit
//!
//! A workspace invariant linter for PBDS. PRs 4–8 built the system's
//! correctness story on *conventions* — all file I/O flows through
//! `pbds-persist::io`'s injectable traits, diagnostics land in
//! `RobustnessEvents`, health transitions go through `settle_health`,
//! `Table` mutators route through `invalidate_derived`, and lock guards
//! never `.unwrap()` the poison flag. This crate turns those conventions
//! into machine-checked lints:
//!
//! | Lint | Rule |
//! |------|------|
//! | `L1` | no `std::fs` / `File::open` / `OpenOptions` outside `pbds-persist::io` |
//! | `L2` | no `println!` / `eprintln!` in library crates |
//! | `L3` | no `.unwrap()` / `.expect()` on lock-guard results |
//! | `L4` | no direct mutating ops on the health `AtomicU8` outside `settle_health` / `degrade` |
//! | `L5` | every `&mut self` fn in `impl Table` calls `invalidate_derived` |
//! | `L6` | no `Instant::now` / `SystemTime::now` outside `pbds-telemetry` |
//!
//! The scanner is a hand-rolled **token-level lexer** (the build
//! environment is offline, so no `syn`): comments, strings (incl. raw and
//! byte strings), char literals and lifetimes are recognized and stripped,
//! and lints match on the remaining identifier/punctuation stream, so a
//! `println!` inside a doc comment or a `"std::fs"` inside a string never
//! fires. `#[cfg(test)]`-style regions (any attribute containing the
//! `test` identifier without `not`) are masked: test code may use
//! `std::fs` and `unwrap` freely.
//!
//! Suppression is two-level and both levels are committed to the repo:
//! a root `audit.allow` file with `LINT path` entries for whole files
//! (e.g. this crate's own `std::fs` use), and in-source
//! `audit:allow(L1)` comment markers on (or immediately above) a line
//! for point exemptions.
//!
//! Run it as `cargo run -p pbds-audit --release`; the binary exits
//! non-zero with `file:line` diagnostics on any unsuppressed violation.

#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of one workspace lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// `std::fs` / `File::open` / `OpenOptions` outside `pbds-persist::io`.
    L1,
    /// `println!` / `eprintln!` in a library crate.
    L2,
    /// `.unwrap()` / `.expect()` on a lock-guard result.
    L3,
    /// Direct mutating op on the health `AtomicU8` outside
    /// `settle_health` / `degrade`.
    L4,
    /// `&mut self` fn in `impl Table` that never calls
    /// `invalidate_derived`.
    L5,
    /// `Instant::now` / `SystemTime::now` outside `pbds-telemetry` —
    /// all clock reads must go through the `pbds_telemetry::clock` seam.
    L6,
}

impl Lint {
    /// The short id used in diagnostics, `audit.allow` and
    /// `audit:allow(..)` markers.
    pub fn id(self) -> &'static str {
        match self {
            Lint::L1 => "L1",
            Lint::L2 => "L2",
            Lint::L3 => "L3",
            Lint::L4 => "L4",
            Lint::L5 => "L5",
            Lint::L6 => "L6",
        }
    }

    fn from_id(s: &str) -> Option<Lint> {
        match s {
            "L1" => Some(Lint::L1),
            "L2" => Some(Lint::L2),
            "L3" => Some(Lint::L3),
            "L4" => Some(Lint::L4),
            "L5" => Some(Lint::L5),
            "L6" => Some(Lint::L6),
            _ => None,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint violation, pointing at a `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.lint, self.path, self.line, self.message
        )
    }
}

/// Result of auditing the whole workspace.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed violations (empty means the audit passes).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations suppressed by `audit.allow` entries.
    pub suppressed: usize,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    line: usize,
    tok: Tok,
}

impl Token {
    fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(i) => Some(i.as_str()),
            Tok::Punct(_) => None,
        }
    }
}

/// An `audit:allow(..)` marker found in a comment. A marker trailing code
/// on the same line suppresses that line only; a marker on its own line
/// also suppresses the line below.
#[derive(Debug)]
struct Marker {
    line: usize,
    lints: Vec<Lint>,
    trailing: bool,
}

struct Lexed {
    tokens: Vec<Token>,
    markers: Vec<Marker>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extract `audit:allow(L1, L3)`-style markers from comment text.
fn scan_comment_markers(text: &str, line: usize, trailing: bool, markers: &mut Vec<Marker>) {
    let mut rest = text;
    while let Some(pos) = rest.find("audit:allow(") {
        rest = &rest[pos + "audit:allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        let lints: Vec<Lint> = rest[..end]
            .split(',')
            .filter_map(|s| Lint::from_id(s.trim()))
            .collect();
        if !lints.is_empty() {
            markers.push(Marker {
                line,
                lints,
                trailing,
            });
        }
        rest = &rest[end..];
    }
}

/// Tokenize Rust source: comments, string/char literals and lifetimes are
/// recognized and dropped; identifiers and punctuation survive with line
/// numbers. Good enough for pattern lints; not a full parser.
fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut markers = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let n = chars.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let trailing = tokens.last().is_some_and(|t: &Token| t.line == line);
                scan_comment_markers(&text, line, trailing, &mut markers);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let trailing = tokens.last().is_some_and(|t: &Token| t.line == start_line);
                scan_comment_markers(&text, start_line, trailing, &mut markers);
            }
            '"' => {
                // Plain string literal with escapes.
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // Lifetime or char literal.
                if i + 1 < n && chars[i + 1] == '\\' {
                    // Escaped char literal: '\n', '\'', '\u{..}'.
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                    // 'x' — plain char literal.
                    i += 3;
                } else if i + 1 < n && is_ident_start(chars[i + 1]) {
                    // 'a — lifetime; consume the identifier, emit nothing.
                    i += 1;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                } else {
                    // Multi-char unicode literal like '∆' or stray quote.
                    i += 1;
                    while i < n && chars[i] != '\'' && chars[i] != '\n' {
                        i += 1;
                    }
                    if i < n && chars[i] == '\'' {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                // Number literal (incl. 1_000u64, 0xff, 1.5e3); dropped.
                i += 1;
                while i < n {
                    let d = chars[i];
                    if is_ident_continue(d)
                        || (d == '.' && i + 1 < n && chars[i + 1].is_ascii_digit())
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            c if is_ident_start(c) => {
                // Check raw-string / byte-string / raw-identifier prefixes.
                if (c == 'r' || c == 'b') && raw_string_at(&chars, i) {
                    let consumed = consume_raw_or_byte_string(&chars, i);
                    line += count_lines(&chars[i..i + consumed]);
                    i += consumed;
                    continue;
                }
                if c == 'r'
                    && i + 1 < n
                    && chars[i + 1] == '#'
                    && i + 2 < n
                    && is_ident_start(chars[i + 2])
                {
                    // r#ident raw identifier: emit without the prefix.
                    i += 2;
                    let start = i;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        line,
                        tok: Tok::Ident(chars[start..i].iter().collect()),
                    });
                    continue;
                }
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    line,
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                });
            }
            other => {
                tokens.push(Token {
                    line,
                    tok: Tok::Punct(other),
                });
                i += 1;
            }
        }
    }
    Lexed { tokens, markers }
}

/// Does a raw/byte string literal start at `i` (which holds 'r' or 'b')?
fn raw_string_at(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == 'r' {
            j += 1;
        }
    } else {
        // 'r'
        j += 1;
    }
    while j < n && chars[j] == '#' {
        j += 1;
    }
    j < n && chars[j] == '"'
}

/// Consume a raw/byte string starting at `i`; returns chars consumed.
fn consume_raw_or_byte_string(chars: &[char], i: usize) -> usize {
    let n = chars.len();
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && chars[j] == '"');
    j += 1; // opening quote
    if raw {
        // Terminated by '"' followed by `hashes` '#'s; no escapes.
        while j < n {
            if chars[j] == '"' && chars[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
            {
                j += 1 + hashes;
                break;
            }
            j += 1;
        }
    } else {
        // b"..." with escapes.
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
    }
    j - i
}

// ---------------------------------------------------------------------------
// Test-region masking
// ---------------------------------------------------------------------------

/// Mark token ranges covered by `#[cfg(test)]`-style attributes (any outer
/// attribute whose tokens include the identifier `test` but not `not`) plus
/// the item that follows, through its balanced `{..}` body or trailing `;`.
fn mask_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let attr_start = i;
            let Some(attr_end) = matching(tokens, i + 1, '[', ']') else {
                break;
            };
            let has_test = tokens[attr_start..=attr_end]
                .iter()
                .any(|t| t.is_ident("test"));
            let has_not = tokens[attr_start..=attr_end]
                .iter()
                .any(|t| t.is_ident("not"));
            if has_test && !has_not {
                // Mask the attribute, any further attributes, and the item.
                let mut j = attr_end + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                // Find the item's body `{` or terminating `;`.
                let mut end = tokens.len().saturating_sub(1);
                let mut k = j;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        end = k;
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        end = matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                        break;
                    }
                    k += 1;
                }
                for m in &mut masked[attr_start..=end.min(tokens.len() - 1)] {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    masked
}

/// Index of the token closing the bracket opened at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Lint passes
// ---------------------------------------------------------------------------

/// Methods that mutate an atomic; loads are fine anywhere.
const ATOMIC_MUTATORS: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Guard-producing methods for L3.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

struct FileCtx<'a> {
    rel: &'a str,
    tokens: &'a [Token],
    masked: &'a [bool],
}

impl FileCtx<'_> {
    fn live(&self, i: usize) -> Option<&Token> {
        if i < self.tokens.len() && !self.masked[i] {
            Some(&self.tokens[i])
        } else {
            None
        }
    }
}

fn lint_l1(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        let Some(t) = ctx.live(i) else { continue };
        // std :: fs
        if t.is_ident("std")
            && ctx.live(i + 1).is_some_and(|t| t.is_punct(':'))
            && ctx.live(i + 2).is_some_and(|t| t.is_punct(':'))
            && ctx.live(i + 3).is_some_and(|t| t.is_ident("fs"))
        {
            out.push(Violation {
                lint: Lint::L1,
                path: ctx.rel.to_string(),
                line: t.line,
                message: "`std::fs` outside pbds-persist::io — route file I/O through the \
                          injectable `Io`/`DurableFile` traits"
                    .to_string(),
            });
        }
        // File :: open
        if t.is_ident("File")
            && ctx.live(i + 1).is_some_and(|t| t.is_punct(':'))
            && ctx.live(i + 2).is_some_and(|t| t.is_punct(':'))
            && ctx.live(i + 3).is_some_and(|t| t.is_ident("open"))
        {
            out.push(Violation {
                lint: Lint::L1,
                path: ctx.rel.to_string(),
                line: t.line,
                message: "`File::open` outside pbds-persist::io — use the `Io` trait".to_string(),
            });
        }
        if t.is_ident("OpenOptions") {
            out.push(Violation {
                lint: Lint::L1,
                path: ctx.rel.to_string(),
                line: t.line,
                message: "`OpenOptions` outside pbds-persist::io — use the `Io` trait".to_string(),
            });
        }
    }
}

fn lint_l2(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        let Some(t) = ctx.live(i) else { continue };
        let Some(name) = t.ident() else { continue };
        if (name == "println" || name == "eprintln")
            && ctx.live(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            out.push(Violation {
                lint: Lint::L2,
                path: ctx.rel.to_string(),
                line: t.line,
                message: format!(
                    "`{name}!` in a library crate — route diagnostics through RobustnessEvents/stats"
                ),
            });
        }
    }
}

fn lint_l3(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 1..ctx.tokens.len() {
        let Some(t) = ctx.live(i) else { continue };
        let Some(m) = t.ident() else { continue };
        if !GUARD_METHODS.contains(&m) {
            continue;
        }
        // .lock().unwrap() / .read().expect(..) / .write().unwrap()
        let preceded_by_dot = ctx.live(i - 1).is_some_and(|t| t.is_punct('.'));
        if !preceded_by_dot {
            continue;
        }
        if ctx.live(i + 1).is_some_and(|t| t.is_punct('('))
            && ctx.live(i + 2).is_some_and(|t| t.is_punct(')'))
            && ctx.live(i + 3).is_some_and(|t| t.is_punct('.'))
        {
            if let Some(next) = ctx.live(i + 4).and_then(Token::ident) {
                if next == "unwrap" || next == "expect" {
                    out.push(Violation {
                        lint: Lint::L3,
                        path: ctx.rel.to_string(),
                        line: t.line,
                        message: format!(
                            "`.{m}().{next}(..)` on a lock guard — honoring the poison flag \
                             wedges the subsystem; use the pbds-sync tracked wrappers \
                             (poison-recovering) instead"
                        ),
                    });
                }
            }
        }
    }
}

/// Innermost enclosing `fn` name per token, for L4.
fn enclosing_fns(ctx: &FileCtx<'_>) -> Vec<Option<String>> {
    let mut out: Vec<Option<String>> = vec![None; ctx.tokens.len()];
    let mut depth = 0usize;
    let mut bracket_depth = 0isize; // () and [] nesting, to ignore `;` in `[u8; 3]`
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut pending: Option<String> = None;
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = fn_stack.last().map(|(n, _)| n.clone());
        let Some(t) = ctx.live(i) else { continue };
        match &t.tok {
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ctx.live(i + 1).and_then(Token::ident) {
                    pending = Some(name.to_string());
                }
            }
            Tok::Punct('(') | Tok::Punct('[') => bracket_depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => bracket_depth -= 1,
            Tok::Punct('{') => {
                depth += 1;
                if let Some(name) = pending.take() {
                    fn_stack.push((name, depth));
                }
            }
            Tok::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') if bracket_depth == 0 => {
                // Trait method declaration without a body.
                pending = None;
            }
            _ => {}
        }
    }
    out
}

fn lint_l4(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let fns = enclosing_fns(ctx);
    for i in 0..ctx.tokens.len() {
        let Some(t) = ctx.live(i) else { continue };
        if !t.is_ident("health") {
            continue;
        }
        if !ctx.live(i + 1).is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let Some(op) = ctx.live(i + 2).and_then(Token::ident) else {
            continue;
        };
        if !ATOMIC_MUTATORS.contains(&op) {
            continue;
        }
        let in_allowed = fns
            .get(i + 2)
            .and_then(|f| f.as_deref())
            .is_some_and(|f| f == "settle_health" || f == "degrade");
        if !in_allowed {
            out.push(Violation {
                lint: Lint::L4,
                path: ctx.rel.to_string(),
                line: t.line,
                message: format!(
                    "direct `health.{op}(..)` outside settle_health/degrade — health \
                     transitions must go through the monotone helpers"
                ),
            });
        }
    }
}

fn lint_l5(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let tokens = ctx.tokens;
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        // `impl Table {` (the inherent impl; `impl Clone for Table` etc.
        // have an intervening trait path and don't match).
        if ctx.live(i).is_some_and(|t| t.is_ident("impl"))
            && ctx.live(i + 1).is_some_and(|t| t.is_ident("Table"))
            && ctx.live(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let Some(block_end) = matching(tokens, i + 2, '{', '}') else {
                break;
            };
            let mut j = i + 3;
            while j < block_end {
                if !ctx.live(j).is_some_and(|t| t.is_ident("fn")) {
                    j += 1;
                    continue;
                }
                let Some(name) = ctx.live(j + 1).and_then(Token::ident) else {
                    j += 1;
                    continue;
                };
                let name = name.to_string();
                let fn_line = tokens[j].line;
                // Parameter list.
                let mut p = j + 2;
                while p < block_end && !tokens[p].is_punct('(') {
                    p += 1;
                }
                let Some(params_end) = matching(tokens, p, '(', ')') else {
                    break;
                };
                // `&mut self` receiver: first three significant tokens of
                // the parameter list (lifetimes are dropped by the lexer,
                // so `&'a mut self` still matches).
                let takes_mut_self = tokens[p + 1].is_punct('&')
                    && tokens.get(p + 2).is_some_and(|t| t.is_ident("mut"))
                    && tokens.get(p + 3).is_some_and(|t| t.is_ident("self"));
                // Body.
                let mut b = params_end + 1;
                while b < block_end && !tokens[b].is_punct('{') && !tokens[b].is_punct(';') {
                    b += 1;
                }
                if b >= block_end || tokens[b].is_punct(';') {
                    j = b + 1;
                    continue;
                }
                let body_end = matching(tokens, b, '{', '}').unwrap_or(block_end);
                if takes_mut_self && name != "invalidate_derived" {
                    let calls_invalidate = (b..=body_end).any(|k| {
                        ctx.live(k)
                            .is_some_and(|t| t.is_ident("invalidate_derived"))
                    });
                    if !calls_invalidate {
                        out.push(Violation {
                            lint: Lint::L5,
                            path: ctx.rel.to_string(),
                            line: fn_line,
                            message: format!(
                                "`&mut self` fn `{name}` in impl Table never calls \
                                 `invalidate_derived` — derived caches (zone maps, indexes, \
                                 sketch epochs) would go stale"
                            ),
                        });
                    }
                }
                j = body_end + 1;
            }
            i = block_end + 1;
            continue;
        }
        i += 1;
    }
}

fn lint_l6(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for i in 0..ctx.tokens.len() {
        let Some(t) = ctx.live(i) else { continue };
        let Some(ty) = t.ident() else { continue };
        if ty != "Instant" && ty != "SystemTime" {
            continue;
        }
        // Instant :: now / SystemTime :: now
        if ctx.live(i + 1).is_some_and(|t| t.is_punct(':'))
            && ctx.live(i + 2).is_some_and(|t| t.is_punct(':'))
            && ctx.live(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(Violation {
                lint: Lint::L6,
                path: ctx.rel.to_string(),
                line: t.line,
                message: format!(
                    "`{ty}::now()` outside pbds-telemetry — read the clock through \
                     `pbds_telemetry::clock` (`clock::now`, `clock::system_now`, \
                     `Stopwatch`) so time flows through one seam"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Per-file scan
// ---------------------------------------------------------------------------

/// Is this path a binary target (allowed to print and touch files)?
fn is_binary_target(rel: &str) -> bool {
    rel.ends_with("/src/main.rs") || rel.contains("/src/bin/")
}

/// Scan one file's source. `rel_path` (forward slashes, workspace-relative)
/// selects which lints apply:
///
/// * `crates/persist/src/io.rs` is exempt from L1 (it is the I/O seam);
/// * binary targets (`src/main.rs`, `src/bin/**`) are exempt from L1/L2/L6;
/// * L4 runs only in `crates/core` (the health atom lives there);
/// * L5 runs only on `crates/storage/src/table.rs`;
/// * `crates/telemetry/**` is exempt from L6 (it is the clock seam).
///
/// In-source `audit:allow(Lx)` markers on the same or preceding line
/// suppress matching violations; the `audit.allow` file is applied by
/// [`audit_workspace`], not here.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let masked = mask_test_regions(&lexed.tokens);
    let ctx = FileCtx {
        rel: rel_path,
        tokens: &lexed.tokens,
        masked: &masked,
    };
    let mut out = Vec::new();
    let is_bin = is_binary_target(rel_path);
    if rel_path != "crates/persist/src/io.rs" && !is_bin {
        lint_l1(&ctx, &mut out);
    }
    if !is_bin {
        lint_l2(&ctx, &mut out);
    }
    lint_l3(&ctx, &mut out);
    if rel_path.starts_with("crates/core/") {
        lint_l4(&ctx, &mut out);
    }
    if rel_path == "crates/storage/src/table.rs" {
        lint_l5(&ctx, &mut out);
    }
    if !rel_path.starts_with("crates/telemetry/") && !is_bin {
        lint_l6(&ctx, &mut out);
    }
    out.retain(|v| {
        !lexed.markers.iter().any(|m| {
            m.lints.contains(&v.lint) && (m.line == v.line || (!m.trailing && m.line + 1 == v.line))
        })
    });
    out.sort_by(|a, b| (a.line, a.lint.id()).cmp(&(b.line, b.lint.id())));
    out
}

// ---------------------------------------------------------------------------
// Workspace walk + allowlist
// ---------------------------------------------------------------------------

/// One `LINT path` entry from `audit.allow`.
#[derive(Debug, PartialEq, Eq)]
struct AllowEntry {
    lint: Lint,
    path: String,
}

fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (lint, path) = l.split_once(char::is_whitespace)?;
            Some(AllowEntry {
                lint: Lint::from_id(lint)?,
                path: path.trim().to_string(),
            })
        })
        .collect()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audit every library/binary source tree in the workspace rooted at
/// `root`: `crates/*/src/**.rs` (excluding the vendored `crates/shims/*`)
/// plus the meta crate's `src/`. Applies the root `audit.allow` file.
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let allow = match std::fs::read_to_string(root.join("audit.allow")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_dir() || entry.file_name() == "shims" {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    let meta_src = root.join("src");
    if meta_src.is_dir() {
        collect_rs_files(&meta_src, &mut files)?;
    }
    files.sort();

    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    let files_scanned = files.len();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&file)?;
        for v in scan_source(&rel, &source) {
            if allow.iter().any(|a| a.lint == v.lint && a.path == v.path) {
                suppressed += 1;
            } else {
                violations.push(v);
            }
        }
    }
    Ok(Report {
        violations,
        files_scanned,
        suppressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1_FIXTURE: &str = include_str!("../fixtures/l1_fs.rs");
    const L2_FIXTURE: &str = include_str!("../fixtures/l2_println.rs");
    const L3_FIXTURE: &str = include_str!("../fixtures/l3_lock_unwrap.rs");
    const L4_FIXTURE: &str = include_str!("../fixtures/l4_health_store.rs");
    const L5_FIXTURE: &str = include_str!("../fixtures/l5_missing_invalidate.rs");
    const L6_FIXTURE: &str = include_str!("../fixtures/l6_instant_now.rs");
    const CLEAN_FIXTURE: &str = include_str!("../fixtures/clean.rs");

    fn lints(vs: &[Violation]) -> Vec<Lint> {
        vs.iter().map(|v| v.lint).collect()
    }

    #[test]
    fn l1_fires_on_fs_use() {
        let vs = scan_source("crates/example/src/bad.rs", L1_FIXTURE);
        assert!(lints(&vs).contains(&Lint::L1), "violations: {vs:?}");
        // std::fs, File::open and OpenOptions each fire.
        assert!(vs.iter().filter(|v| v.lint == Lint::L1).count() >= 3);
        assert!(vs.iter().all(|v| v.line > 0));
    }

    #[test]
    fn l1_exempt_in_io_seam_and_bins() {
        assert!(scan_source("crates/persist/src/io.rs", L1_FIXTURE)
            .iter()
            .all(|v| v.lint != Lint::L1));
        assert!(scan_source("crates/example/src/main.rs", L1_FIXTURE)
            .iter()
            .all(|v| v.lint != Lint::L1));
    }

    #[test]
    fn l2_fires_on_println() {
        let vs = scan_source("crates/example/src/bad.rs", L2_FIXTURE);
        assert_eq!(
            vs.iter().filter(|v| v.lint == Lint::L2).count(),
            2,
            "println! and eprintln! each fire once: {vs:?}"
        );
        // ...but not in a binary target.
        assert!(scan_source("crates/example/src/bin/tool.rs", L2_FIXTURE).is_empty());
    }

    #[test]
    fn l3_fires_on_guard_unwrap() {
        let vs = scan_source("crates/example/src/bad.rs", L3_FIXTURE);
        let l3: Vec<_> = vs.iter().filter(|v| v.lint == Lint::L3).collect();
        assert_eq!(l3.len(), 3, "lock/read/write each fire: {vs:?}");
    }

    #[test]
    fn l4_fires_outside_settle_health() {
        let vs = scan_source("crates/core/src/bad.rs", L4_FIXTURE);
        let l4: Vec<_> = vs.iter().filter(|v| v.lint == Lint::L4).collect();
        assert_eq!(l4.len(), 2, "store+fetch_max outside helpers fire: {vs:?}");
        // The same source scanned as a non-core crate is exempt.
        assert!(scan_source("crates/example/src/bad.rs", L4_FIXTURE)
            .iter()
            .all(|v| v.lint != Lint::L4));
    }

    #[test]
    fn l5_fires_on_missing_invalidate() {
        let vs = scan_source("crates/storage/src/table.rs", L5_FIXTURE);
        let l5: Vec<_> = vs.iter().filter(|v| v.lint == Lint::L5).collect();
        assert_eq!(l5.len(), 1, "only the delinquent mutator fires: {vs:?}");
        assert!(l5[0].message.contains("rename_me_bad_mutator"));
    }

    #[test]
    fn l6_fires_on_direct_clock_reads() {
        let vs = scan_source("crates/example/src/bad.rs", L6_FIXTURE);
        let l6: Vec<_> = vs.iter().filter(|v| v.lint == Lint::L6).collect();
        assert_eq!(
            l6.len(),
            2,
            "Instant::now and SystemTime::now each fire once: {vs:?}"
        );
        // The clock seam itself and binary targets are exempt.
        assert!(scan_source("crates/telemetry/src/clock.rs", L6_FIXTURE)
            .iter()
            .all(|v| v.lint != Lint::L6));
        assert!(scan_source("crates/example/src/main.rs", L6_FIXTURE)
            .iter()
            .all(|v| v.lint != Lint::L6));
    }

    #[test]
    fn clean_fixture_is_clean() {
        // Exercises test-masking, markers, strings/comments containing
        // lint-looking text, and poison-recovering lock use.
        let vs = scan_source("crates/core/src/clean.rs", CLEAN_FIXTURE);
        assert!(vs.is_empty(), "violations: {vs:?}");
    }

    #[test]
    fn marker_suppresses_same_and_next_line() {
        let src = "fn f() {\n    // audit:allow(L2)\n    println!(\"x\");\n    println!(\"y\"); // audit:allow(L2)\n    println!(\"z\");\n}\n";
        let vs = scan_source("crates/example/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 5);
    }

    #[test]
    fn test_regions_are_masked() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::fs;\n    fn f() { println!(\"ok\"); }\n}\n#[cfg(test)]\npub(crate) fn test_dir() { std::fs::create_dir_all(\"x\").unwrap(); }\nfn live() { std::fs::read(\"y\").unwrap(); }\n";
        let vs = scan_source("crates/example/src/lib.rs", src);
        assert_eq!(vs.len(), 1, "only the live fn fires: {vs:?}");
        assert_eq!(vs[0].line, 8);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() { println!(\"x\"); }\n";
        let vs = scan_source("crates/example/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // println! std::fs .lock().unwrap()\n    /* OpenOptions */\n    let c = '\"';\n    let _ = c;\n    let r = r#\"println!(\"hi\") std::fs OpenOptions\"#;\n    r\n}\n";
        let vs = scan_source("crates/example/src/lib.rs", src);
        assert!(vs.is_empty(), "violations: {vs:?}");
    }

    #[test]
    fn allowlist_parses_and_filters() {
        let entries = parse_allowlist("# comment\nL1 crates/audit/src/lib.rs\n\nL3 a/b.rs\n");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lint, Lint::L1);
        assert_eq!(entries[0].path, "crates/audit/src/lib.rs");
    }

    #[test]
    fn workspace_audit_is_clean() {
        // The committed tree must pass its own audit — this is the same
        // check CI runs via `cargo run -p pbds-audit --release`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = audit_workspace(&root).expect("workspace readable");
        assert!(
            report.violations.is_empty(),
            "workspace audit violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned > 20);
    }
}
