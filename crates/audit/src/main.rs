//! CLI entry point: audit the PBDS workspace and exit non-zero on any
//! violation not covered by `audit.allow` or an in-source
//! `audit:allow(..)` marker.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // crates/audit/src/main.rs → repo root is two levels above the
    // manifest dir. Resolved at compile time, so the binary runs the same
    // from any working directory inside the checkout.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolvable from CARGO_MANIFEST_DIR");
    match pbds_audit::audit_workspace(&root) {
        Ok(report) => {
            for v in &report.violations {
                eprintln!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "pbds-audit: OK ({} files scanned, {} allowlisted)",
                    report.files_scanned, report.suppressed
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "pbds-audit: {} violation(s) in {} files scanned ({} allowlisted)",
                    report.violations.len(),
                    report.files_scanned,
                    report.suppressed
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("pbds-audit: error: {err}");
            ExitCode::FAILURE
        }
    }
}
