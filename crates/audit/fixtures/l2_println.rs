//! Fixture: lint L2 — stdout/stderr printing from a library crate.
//! Scanned by the pbds-audit tests; never compiled.

pub fn report(value: u64) {
    println!("value = {value}");
}

pub fn warn(value: u64) {
    eprintln!("warning: value = {value}");
}
