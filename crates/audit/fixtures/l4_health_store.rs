//! Fixture: lint L4 — direct mutation of the health `AtomicU8` outside
//! the `settle_health` / `degrade` helpers. Scanned by the pbds-audit
//! tests as `crates/core/src/bad.rs`; never compiled.

use std::sync::atomic::{AtomicU8, Ordering};

pub struct Shared {
    health: AtomicU8,
}

impl Shared {
    pub fn sneaky_store(&self) {
        self.health.store(3, Ordering::SeqCst);
    }

    pub fn sneaky_escalate(&self) {
        self.health.fetch_max(2, Ordering::SeqCst);
    }

    pub fn peek(&self) -> u8 {
        // Loads are fine anywhere.
        self.health.load(Ordering::SeqCst)
    }

    fn settle_health(&self) {
        // Allowed: the designated monotone helper.
        let _ = self
            .health
            .compare_exchange(1, 0, Ordering::SeqCst, Ordering::SeqCst);
    }

    fn degrade(&self) {
        // Allowed: monotone escalation helper.
        self.health.fetch_max(1, Ordering::SeqCst);
    }
}
