//! Fixture: lint L3 — honoring the poison flag on lock guards.
//! Scanned by the pbds-audit tests; never compiled.

use std::sync::{Mutex, RwLock};

pub fn bad(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    let a = *m.lock().unwrap();
    let b = *rw.read().expect("poisoned");
    *rw.write().unwrap() += 1;
    a + b
}

pub fn fine(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
