//! L6 fixture: direct clock reads in a library crate. The string and
//! comment mentions of Instant::now() below must NOT fire.

use std::time::{Duration, Instant, SystemTime};

pub fn timed_work() -> Duration {
    let start = Instant::now(); // fires: monotonic read outside the seam
    busy();
    start.elapsed()
}

pub fn stamp() -> SystemTime {
    SystemTime::now() // fires: wall-clock read outside the seam
}

pub fn holds_an_instant(at: Instant) -> Instant {
    // Storing or passing an `Instant` is fine; only `::now` is the seam.
    at
}

fn busy() {
    // "Instant::now()" inside a string literal is inert:
    let _doc = "call Instant::now() to get the time";
    /* SystemTime::now() in a block comment is inert too */
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn tests_may_read_the_clock() {
        let _ = Instant::now(); // masked: test region
    }
}
