//! Fixture: lint L5 — a `&mut self` fn in `impl Table` that never calls
//! `invalidate_derived`, letting derived caches (zone maps, indexes,
//! sketch epochs) go stale. Scanned by the pbds-audit tests as
//! `crates/storage/src/table.rs`; never compiled.

pub struct Table {
    rows: Vec<u64>,
    epoch: u64,
}

impl Table {
    pub fn invalidate_derived(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    pub fn append_ok(&mut self, row: u64) {
        self.rows.push(row);
        self.invalidate_derived();
    }

    pub fn rename_me_bad_mutator(&mut self, row: u64) {
        self.rows.push(row);
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}
