//! Fixture: lint L1 — raw filesystem access outside the pbds-persist I/O
//! seam. Scanned by the pbds-audit tests as `crates/example/src/bad.rs`;
//! never compiled.

use std::io::Read;

pub fn read_config(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_default()
}

pub fn open_raw(path: &str) -> usize {
    use std::fs::File;
    let mut buf = Vec::new();
    if let Ok(mut f) = File::open(path) {
        let _ = f.read_to_end(&mut buf);
    }
    buf.len()
}

pub fn append_raw(path: &str) {
    let _ = OpenOptions::new().append(true).open(path);
}
