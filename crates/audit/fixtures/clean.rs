//! Fixture: no lint fires here — exercises test-region masking, in-source
//! `audit:allow` markers, and lint-looking text inside strings, comments
//! and doc comments. Scanned by the pbds-audit tests as
//! `crates/core/src/clean.rs`; never compiled.

use std::sync::{Mutex, PoisonError};

/// Doc comments mentioning `println!`, `std::fs` or `OpenOptions` are not
/// code and must not fire.
pub fn fine(m: &Mutex<u32>) -> u32 {
    // Comment with OpenOptions and .lock().unwrap() — also not code.
    let s = "println!(\"not code\") std::fs";
    let r = r#"File::open OpenOptions .read().unwrap()"#;
    let quote = '"';
    let _ = (s, r, quote);
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn marked() {
    // audit:allow(L2)
    println!("explicitly allowed diagnostic");
}

#[cfg(test)]
pub(crate) fn test_scratch_dir() -> std::path::PathBuf {
    // std::fs in test-only helpers is fine.
    let dir = std::path::PathBuf::from("scratch");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn tests_may_do_anything() {
        println!("test output is fine");
        let _ = std::fs::read("x");
        let m = Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
