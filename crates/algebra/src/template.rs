//! Parameterized query templates (Sec. 6 of the paper).
//!
//! A template is a logical plan whose selection conditions may refer to
//! parameters `$0, $1, …`. Applications typically run many instances of few
//! templates, which is what makes capturing a provenance sketch for one
//! instance and reusing it for later instances worthwhile.

use crate::expr::Expr;
use crate::plan::LogicalPlan;
use pbds_storage::Value;

/// A named parameterized query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    name: String,
    plan: LogicalPlan,
    num_params: usize,
    fingerprint: u64,
}

impl QueryTemplate {
    /// Create a template from a plan containing `Expr::Param` placeholders.
    ///
    /// The number of parameters is derived from the largest parameter index
    /// used in the plan.
    pub fn new(name: impl Into<String>, plan: LogicalPlan) -> Self {
        let num_params = plan.params().iter().max().map(|m| m + 1).unwrap_or(0);
        let fingerprint = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            format!("{plan:?}").hash(&mut h);
            h.finish()
        };
        QueryTemplate {
            name: name.into(),
            plan,
            num_params,
            fingerprint,
        }
    }

    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Structural fingerprint of the parameterized plan, computed once at
    /// construction. Two templates that share a *name* but differ in query
    /// shape have different fingerprints — stores keyed by templates (e.g.
    /// the sketch catalog) combine name and fingerprint so a sketch captured
    /// for one shape can never be offered to another.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The parameterized plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Number of parameters the template expects.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Instantiate the template with a parameter binding.
    ///
    /// # Panics
    /// Panics if fewer values than `num_params()` are supplied.
    pub fn instantiate(&self, binding: &[Value]) -> LogicalPlan {
        assert!(
            binding.len() >= self.num_params,
            "template {} expects {} parameters, got {}",
            self.name,
            self.num_params,
            binding.len()
        );
        self.plan.bind_params(binding)
    }

    /// Base tables accessed by the template.
    pub fn tables(&self) -> Vec<String> {
        self.plan.tables()
    }
}

/// Turn an ad-hoc (closed) query into a template by replacing every literal
/// that appears on the right-hand side of a comparison inside selection
/// predicates with a fresh parameter; returns the template and the extracted
/// binding that re-creates the original query.
///
/// The paper notes (Sec. 6) that even ad-hoc analytics workloads repeat
/// query *patterns*; this helper performs that pattern extraction.
pub fn templatize(name: impl Into<String>, plan: &LogicalPlan) -> (QueryTemplate, Vec<Value>) {
    use std::cell::RefCell;
    let extracted: RefCell<Vec<Value>> = RefCell::new(Vec::new());

    fn rewrite_pred(e: &Expr, extracted: &RefCell<Vec<Value>>) -> Expr {
        match e {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let new_right = match &**right {
                    Expr::Literal(v) => {
                        let mut ex = extracted.borrow_mut();
                        ex.push(v.clone());
                        Expr::Param(ex.len() - 1)
                    }
                    other => rewrite_pred(other, extracted),
                };
                Expr::Binary {
                    op: *op,
                    left: left.clone(),
                    right: Box::new(new_right),
                }
            }
            Expr::And(es) => Expr::And(es.iter().map(|x| rewrite_pred(x, extracted)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|x| rewrite_pred(x, extracted)).collect()),
            Expr::Not(x) => Expr::Not(Box::new(rewrite_pred(x, extracted))),
            other => other.clone(),
        }
    }

    fn rewrite_plan(p: &LogicalPlan, extracted: &RefCell<Vec<Value>>) -> LogicalPlan {
        match p {
            LogicalPlan::Selection { predicate, input } => LogicalPlan::Selection {
                predicate: rewrite_pred(predicate, extracted),
                input: Box::new(rewrite_plan(input, extracted)),
            },
            LogicalPlan::Projection { exprs, input } => LogicalPlan::Projection {
                exprs: exprs.clone(),
                input: Box::new(rewrite_plan(input, extracted)),
            },
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => LogicalPlan::Aggregate {
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
                input: Box::new(rewrite_plan(input, extracted)),
            },
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => LogicalPlan::Join {
                left: Box::new(rewrite_plan(left, extracted)),
                right: Box::new(rewrite_plan(right, extracted)),
                left_col: left_col.clone(),
                right_col: right_col.clone(),
            },
            LogicalPlan::CrossProduct { left, right } => LogicalPlan::CrossProduct {
                left: Box::new(rewrite_plan(left, extracted)),
                right: Box::new(rewrite_plan(right, extracted)),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(rewrite_plan(input, extracted)),
            },
            LogicalPlan::TopK {
                order_by,
                limit,
                input,
            } => LogicalPlan::TopK {
                order_by: order_by.clone(),
                limit: *limit,
                input: Box::new(rewrite_plan(input, extracted)),
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(rewrite_plan(left, extracted)),
                right: Box::new(rewrite_plan(right, extracted)),
            },
            LogicalPlan::TableScan { .. } => p.clone(),
        }
    }

    let plan = rewrite_plan(plan, &extracted);
    (QueryTemplate::new(name, plan), extracted.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, param};
    use crate::plan::{AggExpr, AggFunc};

    /// The parameterized query T from Fig. 5 of the paper.
    fn fig5_template() -> QueryTemplate {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(param(0)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cntcity")],
            )
            .filter(col("cntcity").gt(param(1)));
        QueryTemplate::new("fig5", plan)
    }

    #[test]
    fn template_counts_params() {
        let t = fig5_template();
        assert_eq!(t.num_params(), 2);
        assert_eq!(t.tables(), vec!["cities".to_string()]);
    }

    #[test]
    fn fingerprint_distinguishes_shapes_not_names() {
        let a = QueryTemplate::new(
            "q",
            LogicalPlan::scan("cities").filter(col("popden").gt(param(0))),
        );
        let b = QueryTemplate::new(
            "q",
            LogicalPlan::scan("cities").filter(col("popden").lt(param(0))),
        );
        let a2 = QueryTemplate::new("other", a.plan().clone());
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "different shapes, same name"
        );
        assert_eq!(
            a.fingerprint(),
            a2.fingerprint(),
            "same shape, different name"
        );
    }

    #[test]
    fn instantiation_binds_all_params() {
        let t = fig5_template();
        let q = t.instantiate(&[Value::Int(100), Value::Int(10)]);
        assert!(q.params().is_empty());
    }

    #[test]
    #[should_panic(expected = "expects 2 parameters")]
    fn instantiation_with_too_few_params_panics() {
        fig5_template().instantiate(&[Value::Int(100)]);
    }

    #[test]
    fn templatize_extracts_selection_constants() {
        let q = LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(100)).and(col("state").eq(lit("CA"))))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .filter(col("cnt").gt(lit(10)));
        let (template, binding) = templatize("adhoc", &q);
        assert_eq!(template.num_params(), 3);
        let mut sorted = binding.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![Value::Int(10), Value::Int(100), Value::from("CA")]
        );
        // Re-instantiating with the extracted binding reproduces the query.
        assert_eq!(template.instantiate(&binding), q);
    }

    #[test]
    fn templatize_of_constant_free_query_has_no_params() {
        let q = LogicalPlan::scan("cities").aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
        );
        let (template, binding) = templatize("noparams", &q);
        assert_eq!(template.num_params(), 0);
        assert!(binding.is_empty());
        assert_eq!(template.instantiate(&[]), q);
    }
}
