//! Scalar and boolean expressions used in selections, projections and
//! aggregation arguments.
//!
//! Expressions support query *parameters* (`$n` placeholders) because the
//! paper's reuse technique (Sec. 6) reasons about parameterized queries, and
//! two kinds of set-membership predicates that PBDS generates when applying a
//! sketch (Sec. 8): [`Expr::InRanges`] for range-partition sketches and
//! [`Expr::InList`] for composite (PSMIX) sketches.

use pbds_storage::{Value, ValueRange};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// True for comparison operators (result is boolean).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// How an [`Expr::InRanges`] membership test is evaluated at runtime.
///
/// The paper compares translating a sketch into an explicit `OR` of range
/// conditions against a binary-search membership test (Sec. 8.1, Fig. 11c);
/// both strategies are available here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeLookup {
    /// Test ranges one by one (models the `OR` of `BETWEEN` conditions).
    Linear,
    /// Binary search over the ordered ranges (the paper's `BS` method).
    #[default]
    BinarySearch,
}

/// A scalar / boolean expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column of the input.
    Column(String),
    /// A literal constant.
    Literal(Value),
    /// A query parameter `$n` (0-based), bound at instantiation time.
    Param(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction of predicates.
    And(Vec<Expr>),
    /// Disjunction of predicates.
    Or(Vec<Expr>),
    /// Negation of a predicate.
    Not(Box<Expr>),
    /// `CASE WHEN c1 THEN e1 ... ELSE e END` (used by the naive sketch
    /// initialization the paper compares against in Fig. 12a).
    Case {
        /// `(condition, result)` branches, evaluated in order.
        branches: Vec<(Expr, Expr)>,
        /// Result when no branch matches.
        otherwise: Box<Expr>,
    },
    /// Membership of a column in a set of value ranges; generated when a
    /// range-partition provenance sketch is applied to a query.
    InRanges {
        /// Tested column.
        column: String,
        /// Ordered, non-overlapping ranges.
        ranges: Vec<ValueRange>,
        /// Evaluation strategy.
        lookup: RangeLookup,
    },
    /// Membership of a composite key in a list of keys; generated when a
    /// composite (PSMIX) sketch is applied.
    InList {
        /// Tested columns (in key order).
        columns: Vec<String>,
        /// Allowed composite keys, in ascending order (the evaluator uses
        /// binary search).
        keys: Vec<Vec<Value>>,
    },
    /// IS NULL test.
    IsNull(Box<Expr>),
}

impl Expr {
    /// All column names referenced by this expression.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_columns(out);
                }
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, r) in branches {
                    c.collect_columns(out);
                    r.collect_columns(out);
                }
                otherwise.collect_columns(out);
            }
            Expr::InRanges { column, .. } => out.push(column.clone()),
            Expr::InList { columns, .. } => out.extend(columns.iter().cloned()),
        }
    }

    /// All parameter indices referenced by this expression.
    pub fn params(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Param(i) => out.push(*i),
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_params(out);
                right.collect_params(out);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_params(out);
                }
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_params(out),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, r) in branches {
                    c.collect_params(out);
                    r.collect_params(out);
                }
                otherwise.collect_params(out);
            }
            Expr::InRanges { .. } | Expr::InList { .. } => {}
        }
    }

    /// Substitute parameters with the given binding, producing a closed
    /// expression. Parameters without a binding are left in place.
    pub fn bind_params(&self, binding: &[Value]) -> Expr {
        self.transform(&|e| match e {
            Expr::Param(i) if *i < binding.len() => Some(Expr::Literal(binding[*i].clone())),
            _ => None,
        })
    }

    /// Bottom-up rewrite: `f` returns `Some(replacement)` to replace a node or
    /// `None` to keep it (children are always rewritten first).
    pub fn transform(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match self {
            Expr::Column(_)
            | Expr::Literal(_)
            | Expr::Param(_)
            | Expr::InRanges { .. }
            | Expr::InList { .. } => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::And(es) => Expr::And(es.iter().map(|e| e.transform(f)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.transform(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.transform(f))),
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                otherwise: Box::new(otherwise.transform(f)),
            },
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// Split a conjunction into its conjuncts (a non-`And` expression is its
    /// own single conjunct).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(es) => es.iter().flat_map(|e| e.conjuncts()).collect(),
            other => vec![other],
        }
    }

    // ------------------------------------------------------------------
    // Fluent constructors
    // ------------------------------------------------------------------

    fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }
    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        self.binary(BinOp::Ne, other)
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinOp::Lt, other)
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        self.binary(BinOp::Le, other)
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinOp::Gt, other)
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        self.binary(BinOp::Ge, other)
    }
    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinOp::Add, other)
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinOp::Sub, other)
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinOp::Mul, other)
    }
    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        self.binary(BinOp::Div, other)
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        match self {
            Expr::And(mut es) => {
                es.push(other);
                Expr::And(es)
            }
            s => Expr::And(vec![s, other]),
        }
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        match self {
            Expr::Or(mut es) => {
                es.push(other);
                Expr::Or(es)
            }
            s => Expr::Or(vec![s, other]),
        }
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self BETWEEN lo AND hi` (inclusive).
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        self.clone().ge(lo).and(self.le(hi))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Param(i) => write!(f, "${i}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::And(es) => {
                let parts: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            Expr::Or(es) => {
                let parts: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" OR "))
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
            Expr::InRanges {
                column,
                ranges,
                lookup,
            } => {
                let method = match lookup {
                    RangeLookup::Linear => "OR",
                    RangeLookup::BinarySearch => "BS",
                };
                write!(f, "{column} IN_RANGES[{method}](")?;
                for (i, r) in ranges.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match (&r.lo, &r.hi) {
                        (Some(lo), Some(hi)) => write!(f, "({lo},{hi}]")?,
                        (None, Some(hi)) => write!(f, "(-inf,{hi}]")?,
                        (Some(lo), None) => write!(f, "({lo},+inf)")?,
                        (None, None) => write!(f, "(-inf,+inf)")?,
                    }
                }
                write!(f, ")")
            }
            Expr::InList { columns, keys } => {
                write!(f, "({}) IN <{} keys>", columns.join(","), keys.len())
            }
        }
    }
}

/// Column reference helper.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Literal helper.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// Parameter helper.
pub fn param(i: usize) -> Expr {
    Expr::Param(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_builders_compose() {
        let e = col("state").eq(lit("CA")).and(col("popden").gt(lit(1000)));
        assert_eq!(e.columns(), vec!["popden".to_string(), "state".to_string()]);
        assert_eq!(e.conjuncts().len(), 2);
    }

    #[test]
    fn params_are_collected_and_bound() {
        let e = col("a").gt(param(0)).and(col("b").le(param(1)));
        assert_eq!(e.params(), vec![0, 1]);
        let bound = e.bind_params(&[Value::Int(10), Value::Int(20)]);
        assert!(bound.params().is_empty());
        assert_eq!(bound.conjuncts()[0], &col("a").gt(lit(10)),);
    }

    #[test]
    fn partial_binding_leaves_unbound_params() {
        let e = col("a").gt(param(1));
        let bound = e.bind_params(&[Value::Int(5)]);
        assert_eq!(bound.params(), vec![1]);
    }

    #[test]
    fn between_expands_to_conjunction() {
        let e = col("state").between(lit("AL"), lit("DE"));
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn display_is_sql_like() {
        let e = col("state").eq(lit("CA"));
        assert_eq!(e.to_string(), "(state = 'CA')");
        let c = Expr::Case {
            branches: vec![(col("a").lt(lit(1)), lit(0))],
            otherwise: Box::new(lit(1)),
        };
        assert!(c.to_string().starts_with("CASE WHEN"));
    }

    #[test]
    fn transform_rewrites_bottom_up() {
        let e = col("a").add(lit(1)).gt(lit(5));
        let rewritten = e.transform(&|x| match x {
            Expr::Column(c) if c == "a" => Some(col("b")),
            _ => None,
        });
        assert_eq!(rewritten.columns(), vec!["b".to_string()]);
    }

    #[test]
    fn in_ranges_reports_column() {
        let e = Expr::InRanges {
            column: "state".into(),
            ranges: vec![ValueRange {
                lo: None,
                hi: Some(Value::from("DE")),
            }],
            lookup: RangeLookup::BinarySearch,
        };
        assert_eq!(e.columns(), vec!["state".to_string()]);
        assert!(e.to_string().contains("IN_RANGES"));
    }
}
