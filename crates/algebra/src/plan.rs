//! Logical query plans: the bag relational algebra of Fig. 2 in the paper.
//!
//! Supported operators: table access, selection (σ), projection (Π, with
//! computed expressions and renaming), aggregation with group-by (γ),
//! duplicate elimination (δ), join (⋈), cross product (×), bag union (∪) and
//! the top-k operator (τ, i.e. `ORDER BY ... LIMIT k`).

use crate::expr::Expr;
use pbds_storage::{Column, DataType, Database, Schema, StorageError, Value};
use std::fmt;

/// Aggregation functions supported by γ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (counts all rows of the group).
    Count,
    /// Sum of the argument.
    Sum,
    /// Average of the argument.
    Avg,
    /// Minimum of the argument.
    Min,
    /// Maximum of the argument.
    Max,
}

impl AggFunc {
    /// Monotone aggregation functions grow (or stay equal) when rows are
    /// added to a group — the distinction the safety rules of Fig. 3 rely on.
    pub fn is_monotone_under_insertion(&self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Max)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// One aggregation expression `f(e) AS alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Aggregation function.
    pub func: AggFunc,
    /// Argument expression (ignored for `Count`).
    pub input: Expr,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Create an aggregation expression.
    pub fn new(func: AggFunc, input: Expr, alias: impl Into<String>) -> Self {
        AggExpr {
            func,
            input,
            alias: alias.into(),
        }
    }
}

/// A sort key for the top-k operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Column to sort on.
    pub column: String,
    /// Sort direction.
    pub descending: bool,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            descending: false,
        }
    }

    /// Descending sort key.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            descending: true,
        }
    }
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Access of a base table.
    TableScan {
        /// Table name.
        table: String,
    },
    /// Selection σ_θ.
    Selection {
        /// Filter predicate.
        predicate: Expr,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Generalized projection Π (computed expressions with output names).
    Projection {
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Aggregation γ with group-by.
    Aggregate {
        /// Group-by columns (empty = single global group).
        group_by: Vec<String>,
        /// Aggregation expressions.
        aggregates: Vec<AggExpr>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Equi-join on a single column pair.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join column from the left input.
        left_col: String,
        /// Join column from the right input.
        right_col: String,
    },
    /// Cross product ×.
    CrossProduct {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Duplicate elimination δ.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Top-k operator τ (`ORDER BY ... LIMIT k`).
    TopK {
        /// Sort keys.
        order_by: Vec<SortKey>,
        /// Number of rows to keep.
        limit: usize,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Bag union ∪.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Scan a base table.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: table.into(),
        }
    }

    /// Wrap this plan in a selection.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Selection {
            predicate,
            input: Box::new(self),
        }
    }

    /// Wrap this plan in a projection.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> LogicalPlan {
        LogicalPlan::Projection {
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
            input: Box::new(self),
        }
    }

    /// Wrap this plan in an aggregation.
    pub fn aggregate(self, group_by: Vec<&str>, aggregates: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            group_by: group_by.into_iter().map(|s| s.to_string()).collect(),
            aggregates,
            input: Box::new(self),
        }
    }

    /// Wrap this plan in a top-k operator.
    pub fn top_k(self, order_by: Vec<SortKey>, limit: usize) -> LogicalPlan {
        LogicalPlan::TopK {
            order_by,
            limit,
            input: Box::new(self),
        }
    }

    /// Wrap this plan in duplicate elimination.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }

    /// Equi-join with another plan.
    pub fn join(self, right: LogicalPlan, left_col: &str, right_col: &str) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_col: left_col.to_string(),
            right_col: right_col.to_string(),
        }
    }

    /// Cross product with another plan.
    pub fn cross(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::CrossProduct {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Bag union with another plan.
    pub fn union(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. } => vec![],
            LogicalPlan::Selection { input, .. }
            | LogicalPlan::Projection { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::CrossProduct { left, right }
            | LogicalPlan::Union { left, right } => vec![left, right],
        }
    }

    /// Names of all base tables accessed by this plan (in scan order,
    /// deduplicated).
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|t| seen.insert(t.clone()));
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        if let LogicalPlan::TableScan { table } = self {
            out.push(table.clone());
        }
        for c in self.children() {
            c.collect_tables(out);
        }
    }

    /// True if the plan contains an aggregation operator anywhere.
    pub fn contains_aggregate(&self) -> bool {
        matches!(self, LogicalPlan::Aggregate { .. })
            || self.children().iter().any(|c| c.contains_aggregate())
    }

    /// True if the plan contains a top-k operator anywhere.
    pub fn contains_top_k(&self) -> bool {
        matches!(self, LogicalPlan::TopK { .. })
            || self.children().iter().any(|c| c.contains_top_k())
    }

    /// All parameters used anywhere in the plan.
    pub fn params(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_exprs(&mut |e| out.extend(e.params()));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Visit every expression in the plan (selection predicates, projection
    /// expressions, aggregation arguments).
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            LogicalPlan::Selection { predicate, input } => {
                f(predicate);
                input.visit_exprs(f);
            }
            LogicalPlan::Projection { exprs, input } => {
                for (e, _) in exprs {
                    f(e);
                }
                input.visit_exprs(f);
            }
            LogicalPlan::Aggregate {
                aggregates, input, ..
            } => {
                for a in aggregates {
                    f(&a.input);
                }
                input.visit_exprs(f);
            }
            _ => {
                for c in self.children() {
                    c.visit_exprs(f);
                }
            }
        }
    }

    /// Bind query parameters everywhere in the plan, returning a closed plan.
    pub fn bind_params(&self, binding: &[Value]) -> LogicalPlan {
        self.transform_exprs(&|e| e.bind_params(binding))
    }

    /// Rewrite every expression in the plan with `f`.
    pub fn transform_exprs(&self, f: &impl Fn(&Expr) -> Expr) -> LogicalPlan {
        match self {
            LogicalPlan::TableScan { .. } => self.clone(),
            LogicalPlan::Selection { predicate, input } => LogicalPlan::Selection {
                predicate: f(predicate),
                input: Box::new(input.transform_exprs(f)),
            },
            LogicalPlan::Projection { exprs, input } => LogicalPlan::Projection {
                exprs: exprs.iter().map(|(e, n)| (f(e), n.clone())).collect(),
                input: Box::new(input.transform_exprs(f)),
            },
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => LogicalPlan::Aggregate {
                group_by: group_by.clone(),
                aggregates: aggregates
                    .iter()
                    .map(|a| AggExpr {
                        func: a.func,
                        input: f(&a.input),
                        alias: a.alias.clone(),
                    })
                    .collect(),
                input: Box::new(input.transform_exprs(f)),
            },
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => LogicalPlan::Join {
                left: Box::new(left.transform_exprs(f)),
                right: Box::new(right.transform_exprs(f)),
                left_col: left_col.clone(),
                right_col: right_col.clone(),
            },
            LogicalPlan::CrossProduct { left, right } => LogicalPlan::CrossProduct {
                left: Box::new(left.transform_exprs(f)),
                right: Box::new(right.transform_exprs(f)),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(input.transform_exprs(f)),
            },
            LogicalPlan::TopK {
                order_by,
                limit,
                input,
            } => LogicalPlan::TopK {
                order_by: order_by.clone(),
                limit: *limit,
                input: Box::new(input.transform_exprs(f)),
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(left.transform_exprs(f)),
                right: Box::new(right.transform_exprs(f)),
            },
        }
    }

    /// Rewrite table-scan nodes; `f` receives the table name and returns the
    /// replacement subtree (used by the PBDS use-phase to inject sketch
    /// filters above the relevant scans, Sec. 8).
    pub fn rewrite_scans(&self, f: &impl Fn(&str) -> Option<LogicalPlan>) -> LogicalPlan {
        match self {
            LogicalPlan::TableScan { table } => f(table).unwrap_or_else(|| self.clone()),
            LogicalPlan::Selection { predicate, input } => LogicalPlan::Selection {
                predicate: predicate.clone(),
                input: Box::new(input.rewrite_scans(f)),
            },
            LogicalPlan::Projection { exprs, input } => LogicalPlan::Projection {
                exprs: exprs.clone(),
                input: Box::new(input.rewrite_scans(f)),
            },
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => LogicalPlan::Aggregate {
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
                input: Box::new(input.rewrite_scans(f)),
            },
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => LogicalPlan::Join {
                left: Box::new(left.rewrite_scans(f)),
                right: Box::new(right.rewrite_scans(f)),
                left_col: left_col.clone(),
                right_col: right_col.clone(),
            },
            LogicalPlan::CrossProduct { left, right } => LogicalPlan::CrossProduct {
                left: Box::new(left.rewrite_scans(f)),
                right: Box::new(right.rewrite_scans(f)),
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(input.rewrite_scans(f)),
            },
            LogicalPlan::TopK {
                order_by,
                limit,
                input,
            } => LogicalPlan::TopK {
                order_by: order_by.clone(),
                limit: *limit,
                input: Box::new(input.rewrite_scans(f)),
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(left.rewrite_scans(f)),
                right: Box::new(right.rewrite_scans(f)),
            },
        }
    }

    /// Derive the output schema of this plan against a database catalog.
    pub fn schema(&self, db: &Database) -> Result<Schema, StorageError> {
        match self {
            LogicalPlan::TableScan { table } => Ok(db.table(table)?.schema().clone()),
            LogicalPlan::Selection { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::TopK { input, .. } => input.schema(db),
            LogicalPlan::Projection { exprs, input } => {
                let in_schema = input.schema(db)?;
                let cols = exprs
                    .iter()
                    .map(|(e, name)| Column::new(name.clone(), infer_type(e, &in_schema)))
                    .collect();
                Ok(Schema::new(cols))
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => {
                let in_schema = input.schema(db)?;
                let mut cols = Vec::new();
                for g in group_by {
                    let dtype = in_schema
                        .column(g)
                        .map(|c| c.dtype)
                        .unwrap_or(DataType::Str);
                    cols.push(Column::new(g.clone(), dtype));
                }
                for a in aggregates {
                    let dtype = match a.func {
                        AggFunc::Count => DataType::Int,
                        AggFunc::Avg => DataType::Float,
                        AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                            infer_type(&a.input, &in_schema)
                        }
                    };
                    cols.push(Column::new(a.alias.clone(), dtype));
                }
                Ok(Schema::new(cols))
            }
            LogicalPlan::Join { left, right, .. } | LogicalPlan::CrossProduct { left, right } => {
                Ok(left.schema(db)?.concat(&right.schema(db)?))
            }
            LogicalPlan::Union { left, .. } => left.schema(db),
        }
    }

    /// Human-readable indented plan tree.
    pub fn display_tree(&self) -> String {
        let mut s = String::new();
        self.fmt_tree(&mut s, 0);
        s
    }

    fn fmt_tree(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let line = match self {
            LogicalPlan::TableScan { table } => format!("TableScan[{table}]"),
            LogicalPlan::Selection { predicate, .. } => format!("Selection[{predicate}]"),
            LogicalPlan::Projection { exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Projection[{}]", cols.join(", "))
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}({}) AS {}", a.func, a.input, a.alias))
                    .collect();
                format!(
                    "Aggregate[group_by=({}), {}]",
                    group_by.join(", "),
                    aggs.join(", ")
                )
            }
            LogicalPlan::Join {
                left_col,
                right_col,
                ..
            } => format!("Join[{left_col} = {right_col}]"),
            LogicalPlan::CrossProduct { .. } => "CrossProduct".to_string(),
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::TopK {
                order_by, limit, ..
            } => {
                let keys: Vec<String> = order_by
                    .iter()
                    .map(|k| format!("{}{}", k.column, if k.descending { " DESC" } else { "" }))
                    .collect();
                format!("TopK[order_by=({}), limit={limit}]", keys.join(", "))
            }
            LogicalPlan::Union { .. } => "Union".to_string(),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.fmt_tree(out, indent + 1);
        }
    }
}

/// Infer the result type of an expression against a schema; defaults to
/// `Float` for arithmetic and `Bool` for comparisons when unknown.
pub fn infer_type(expr: &Expr, schema: &Schema) -> DataType {
    match expr {
        Expr::Column(c) => schema.column(c).map(|c| c.dtype).unwrap_or(DataType::Str),
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Str),
        Expr::Param(_) => DataType::Float,
        Expr::Binary { op, left, right } => {
            if op.is_comparison() {
                DataType::Bool
            } else if *op == crate::expr::BinOp::Div {
                DataType::Float
            } else {
                let lt = infer_type(left, schema);
                let rt = infer_type(right, schema);
                if lt == DataType::Int && rt == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
        }
        Expr::And(_) | Expr::Or(_) | Expr::Not(_) | Expr::IsNull(_) => DataType::Bool,
        Expr::Case {
            branches,
            otherwise,
        } => branches
            .first()
            .map(|(_, r)| infer_type(r, schema))
            .unwrap_or_else(|| infer_type(otherwise, schema)),
        Expr::InRanges { .. } | Expr::InList { .. } => DataType::Bool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use pbds_storage::{Table, TableBuilder};

    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        b.push(vec![
            Value::Int(4200),
            Value::from("Anchorage"),
            Value::from("AK"),
        ]);
        let table: Table = b.build();
        let mut db = Database::new();
        db.add_table(table);
        db
    }

    /// Q2 from Fig. 1a: state with the highest average population density.
    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    #[test]
    fn schema_derivation_for_aggregate_topk() {
        let db = cities_db();
        let schema = q2().schema(&db).unwrap();
        assert_eq!(schema.names(), vec!["state", "avgden"]);
        assert_eq!(schema.column("avgden").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn tables_and_structure_queries() {
        let plan = q2();
        assert_eq!(plan.tables(), vec!["cities".to_string()]);
        assert!(plan.contains_aggregate());
        assert!(plan.contains_top_k());
        assert!(!LogicalPlan::scan("cities").contains_aggregate());
    }

    #[test]
    fn join_schema_concatenates() {
        let schema_a = Schema::from_pairs(&[("id", DataType::Int)]);
        let schema_b = Schema::from_pairs(&[("ref_id", DataType::Int), ("x", DataType::Int)]);
        let mut db = Database::new();
        db.add_table(Table::new("a", schema_a, vec![]));
        db.add_table(Table::new("b", schema_b, vec![]));
        let plan = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), "id", "ref_id");
        assert_eq!(plan.schema(&db).unwrap().names(), vec!["id", "ref_id", "x"]);
    }

    #[test]
    fn params_collected_across_plan() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(crate::expr::param(0)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .filter(col("cnt").gt(crate::expr::param(1)));
        assert_eq!(plan.params(), vec![0, 1]);
        let bound = plan.bind_params(&[Value::Int(100), Value::Int(10)]);
        assert!(bound.params().is_empty());
    }

    #[test]
    fn rewrite_scans_replaces_only_requested_tables() {
        let plan = q2();
        let rewritten = plan.rewrite_scans(&|t| {
            (t == "cities").then(|| LogicalPlan::scan("cities").filter(col("state").eq(lit("CA"))))
        });
        // The scan is now wrapped in a selection.
        let found_selection_over_scan = matches!(
            &rewritten,
            LogicalPlan::TopK { input, .. }
                if matches!(&**input, LogicalPlan::Aggregate { input, .. }
                    if matches!(&**input, LogicalPlan::Selection { .. }))
        );
        assert!(found_selection_over_scan);
    }

    #[test]
    fn display_tree_contains_operators() {
        let text = q2().display_tree();
        assert!(text.contains("TopK"));
        assert!(text.contains("Aggregate"));
        assert!(text.contains("TableScan[cities]"));
    }

    #[test]
    fn unknown_table_schema_error() {
        let db = Database::new();
        assert!(LogicalPlan::scan("nope").schema(&db).is_err());
    }

    #[test]
    fn projection_type_inference() {
        let db = cities_db();
        let plan = LogicalPlan::scan("cities").project(vec![
            (col("popden").mul(lit(2)), "double_den"),
            (col("popden").div(lit(2)), "half_den"),
            (col("state"), "state"),
        ]);
        let schema = plan.schema(&db).unwrap();
        assert_eq!(schema.column("double_den").unwrap().dtype, DataType::Int);
        assert_eq!(schema.column("half_den").unwrap().dtype, DataType::Float);
        assert_eq!(schema.column("state").unwrap().dtype, DataType::Str);
    }
}
