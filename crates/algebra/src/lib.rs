//! # pbds-algebra
//!
//! Bag relational algebra for the PBDS reproduction: expressions (with query
//! parameters and the sketch-membership predicates PBDS generates), logical
//! query plans for the operators of Fig. 2 in the paper, and parameterized
//! query templates used by the sketch-reuse machinery of Sec. 6.

#![warn(missing_docs)]

pub mod expr;
pub mod plan;
pub mod template;

pub use expr::{col, lit, param, BinOp, Expr, RangeLookup};
pub use plan::{infer_type, AggExpr, AggFunc, LogicalPlan, SortKey};
pub use template::{templatize, QueryTemplate};
