//! # pbds-solver
//!
//! A small, self-contained validity checker for quantifier-free linear
//! arithmetic. It stands in for the SMT solver (Z3) the paper uses to
//! discharge the proof obligations of the sketch-safety check (Sec. 5) and
//! the sketch-reuse check (Sec. 6).
//!
//! The decision procedure — negate, normalize to DNF, refute each disjunct
//! with Fourier–Motzkin elimination — is sound and complete for the formulas
//! the PBDS rules generate (conjunctions/disjunctions/implications of
//! comparisons between linear combinations of attribute variables and
//! constants), and answers `Unknown` instead of guessing when a formula would
//! blow up, which downstream checks treat conservatively.

#![warn(missing_docs)]

pub mod formula;
pub mod solve;

pub use formula::{Atom, CmpOp, Formula, LinExpr};
pub use solve::{implies, is_satisfiable, is_valid, SolverResult};
