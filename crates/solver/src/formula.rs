//! Quantifier-free linear-arithmetic formulas.
//!
//! The safety check (Sec. 5) and the reuse check (Sec. 6) of the paper
//! construct universally quantified implications over attribute values and
//! discharge them with an SMT solver. The formulas they build are small:
//! conjunctions/disjunctions of comparisons between linear combinations of
//! attribute variables and constants. This module provides the formula AST;
//! [`crate::solve`] decides validity.

use std::collections::BTreeMap;
use std::fmt;

/// A linear expression: `Σ coeff_i · var_i + constant`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    /// Variable coefficients (variables with coefficient zero are dropped).
    terms: BTreeMap<String, f64>,
    /// Constant offset.
    constant: f64,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The variable expression `1·name`.
    pub fn var(name: impl Into<String>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), 1.0);
        LinExpr {
            terms,
            constant: 0.0,
        }
    }

    /// Variable coefficients.
    pub fn terms(&self) -> &BTreeMap<String, f64> {
        &self.terms
    }

    /// Constant offset.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// All variables mentioned.
    pub fn variables(&self) -> Vec<&str> {
        self.terms.keys().map(|s| s.as_str()).collect()
    }

    /// True when the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Coefficient of a variable (0 when absent).
    pub fn coeff(&self, var: &str) -> f64 {
        self.terms.get(var).copied().unwrap_or(0.0)
    }

    /// `self + other`
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += other.constant;
        for (v, c) in &other.terms {
            *out.terms.entry(v.clone()).or_insert(0.0) += c;
        }
        out.normalize();
        out
    }

    /// `self - other`
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1.0))
    }

    /// `k · self`
    pub fn scale(&self, k: f64) -> LinExpr {
        let mut out = LinExpr {
            terms: self.terms.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            constant: self.constant * k,
        };
        out.normalize();
        out
    }

    fn normalize(&mut self) {
        self.terms.retain(|_, c| c.abs() > 1e-12);
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if (*c - 1.0).abs() < 1e-12 {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if (*c - 1.0).abs() < 1e-12 {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.abs() > 1e-12 {
            write!(f, " + {}", self.constant)?;
        }
        Ok(())
    }
}

/// Comparison operators for atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// The negation of this comparison.
    pub fn negate(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An atomic comparison `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Left-hand side.
    pub lhs: LinExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: LinExpr,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A quantifier-free formula over linear-arithmetic atoms.
///
/// Free variables are interpreted as universally quantified when checking
/// validity (matching the paper's usage: "a universally quantified formula is
/// true if its negation is unsatisfiable").
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic comparison.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Atomic comparison constructor.
    pub fn cmp(lhs: LinExpr, op: CmpOp, rhs: LinExpr) -> Formula {
        Formula::Atom(Atom { lhs, op, rhs })
    }

    /// `var op constant`
    pub fn var_cmp_const(var: &str, op: CmpOp, c: f64) -> Formula {
        Formula::cmp(LinExpr::var(var), op, LinExpr::constant(c))
    }

    /// `var1 op var2`
    pub fn var_cmp_var(a: &str, op: CmpOp, b: &str) -> Formula {
        Formula::cmp(LinExpr::var(a), op, LinExpr::var(b))
    }

    /// n-ary conjunction, flattening nested `And`s and dropping `True`.
    pub fn and_all(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(mut inner) => flat.append(&mut inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().unwrap(),
            _ => Formula::And(flat),
        }
    }

    /// n-ary disjunction, flattening nested `Or`s and dropping `False`.
    pub fn or_all(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(mut inner) => flat.append(&mut inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().unwrap(),
            _ => Formula::Or(flat),
        }
    }

    /// Implication constructor.
    pub fn implies(premise: Formula, conclusion: Formula) -> Formula {
        Formula::Implies(Box::new(premise), Box::new(conclusion))
    }

    /// Negation constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjoin with another formula.
    pub fn and(self, other: Formula) -> Formula {
        Formula::and_all(vec![self, other])
    }

    /// All variables mentioned in the formula.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                out.extend(a.lhs.variables().iter().map(|s| s.to_string()));
                out.extend(a.rhs.variables().iter().map(|s| s.to_string()));
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" OR "))
            }
            Formula::Not(x) => write!(f, "(NOT {x})"),
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_arithmetic() {
        let e = LinExpr::var("x")
            .add(&LinExpr::var("y"))
            .sub(&LinExpr::var("x"));
        assert_eq!(e.coeff("x"), 0.0);
        assert_eq!(e.coeff("y"), 1.0);
        assert!(e.variables() == vec!["y"]);
        let s = LinExpr::var("x").scale(3.0).add(&LinExpr::constant(2.0));
        assert_eq!(s.coeff("x"), 3.0);
        assert_eq!(s.constant_part(), 2.0);
    }

    #[test]
    fn and_or_flattening() {
        let f = Formula::and_all(vec![
            Formula::True,
            Formula::var_cmp_const("x", CmpOp::Gt, 1.0),
            Formula::and_all(vec![Formula::var_cmp_const("y", CmpOp::Lt, 2.0)]),
        ]);
        match f {
            Formula::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other}"),
        }
        assert_eq!(Formula::and_all(vec![]), Formula::True);
        assert_eq!(Formula::or_all(vec![]), Formula::False);
        assert_eq!(
            Formula::and_all(vec![Formula::False, Formula::True]),
            Formula::False
        );
        assert_eq!(
            Formula::or_all(vec![Formula::True, Formula::False]),
            Formula::True
        );
    }

    #[test]
    fn variables_are_collected() {
        let f = Formula::implies(
            Formula::var_cmp_var("a", CmpOp::Le, "b"),
            Formula::var_cmp_const("a", CmpOp::Lt, 10.0),
        );
        assert_eq!(f.variables(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_round_trip_smoke() {
        let f = Formula::not(Formula::var_cmp_const("x", CmpOp::Ge, 5.0));
        assert_eq!(f.to_string(), "(NOT x >= 5)");
    }

    #[test]
    fn cmp_negation() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Ne.negate(), CmpOp::Eq);
    }
}
