//! Deciding satisfiability and validity of linear-arithmetic formulas.
//!
//! The pipeline mirrors what the paper delegates to an SMT solver (Sec. 5):
//! to prove a universally quantified formula valid we negate it, convert the
//! negation to negation normal form and then disjunctive normal form, and
//! show every disjunct infeasible with Fourier–Motzkin elimination over the
//! rationals.
//!
//! The procedure is *sound* but deliberately bounded: if normalization would
//! blow up past a size budget it answers [`SolverResult::Unknown`], which the
//! safety and reuse checks treat as "cannot prove safe" — exactly the
//! conservative behaviour the paper's sound-but-incomplete algorithm needs.

use crate::formula::{Atom, CmpOp, Formula, LinExpr};

/// Result of a satisfiability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverResult {
    /// The formula is satisfiable.
    Satisfiable,
    /// The formula is unsatisfiable.
    Unsatisfiable,
    /// The solver gave up (size budget exceeded).
    Unknown,
}

/// Maximum number of DNF disjuncts / constraints before giving up.
const MAX_DISJUNCTS: usize = 4096;
const MAX_CONSTRAINTS: usize = 2048;
const EPS: f64 = 1e-9;

/// A normalized linear constraint `expr ≤ 0` (or `< 0` when `strict`).
#[derive(Debug, Clone)]
struct Constraint {
    expr: LinExpr,
    strict: bool,
}

/// Negation normal form with negations pushed into atoms.
fn to_nnf(f: &Formula, negated: bool) -> Formula {
    match f {
        Formula::True => {
            if negated {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if negated {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom(a) => {
            if negated {
                Formula::Atom(Atom {
                    lhs: a.lhs.clone(),
                    op: a.op.negate(),
                    rhs: a.rhs.clone(),
                })
            } else {
                Formula::Atom(a.clone())
            }
        }
        Formula::And(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|x| to_nnf(x, negated)).collect();
            if negated {
                Formula::or_all(parts)
            } else {
                Formula::and_all(parts)
            }
        }
        Formula::Or(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|x| to_nnf(x, negated)).collect();
            if negated {
                Formula::and_all(parts)
            } else {
                Formula::or_all(parts)
            }
        }
        Formula::Not(x) => to_nnf(x, !negated),
        Formula::Implies(a, b) => {
            // a -> b  ==  ¬a ∨ b
            let rewritten = Formula::or_all(vec![Formula::not((**a).clone()), (**b).clone()]);
            to_nnf(&rewritten, negated)
        }
    }
}

/// Convert an NNF formula to DNF: a list of conjunctions of atoms.
/// Returns `None` when the size budget is exceeded.
fn to_dnf(f: &Formula) -> Option<Vec<Vec<Atom>>> {
    match f {
        Formula::True => Some(vec![vec![]]),
        Formula::False => Some(vec![]),
        Formula::Atom(a) => {
            // Split ≠ into two strict disjuncts so downstream reasoning only
            // sees convex constraints.
            if a.op == CmpOp::Ne {
                Some(vec![
                    vec![Atom {
                        lhs: a.lhs.clone(),
                        op: CmpOp::Lt,
                        rhs: a.rhs.clone(),
                    }],
                    vec![Atom {
                        lhs: a.lhs.clone(),
                        op: CmpOp::Gt,
                        rhs: a.rhs.clone(),
                    }],
                ])
            } else {
                Some(vec![vec![a.clone()]])
            }
        }
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for x in fs {
                out.extend(to_dnf(x)?);
                if out.len() > MAX_DISJUNCTS {
                    return None;
                }
            }
            Some(out)
        }
        Formula::And(fs) => {
            let mut acc: Vec<Vec<Atom>> = vec![vec![]];
            for x in fs {
                let d = to_dnf(x)?;
                let mut next = Vec::with_capacity(acc.len() * d.len().max(1));
                for a in &acc {
                    for b in &d {
                        let mut merged = a.clone();
                        merged.extend(b.iter().cloned());
                        next.push(merged);
                        if next.len() > MAX_DISJUNCTS {
                            return None;
                        }
                    }
                }
                acc = next;
                if acc.is_empty() {
                    // One conjunct was `False`.
                    return Some(vec![]);
                }
            }
            Some(acc)
        }
        // NNF should have removed these.
        Formula::Not(_) | Formula::Implies(_, _) => None,
    }
}

/// Turn an atom into one or two normalized `expr (< | ≤) 0` constraints.
fn atom_constraints(a: &Atom) -> Vec<Constraint> {
    let diff = a.lhs.sub(&a.rhs);
    match a.op {
        CmpOp::Le => vec![Constraint {
            expr: diff,
            strict: false,
        }],
        CmpOp::Lt => vec![Constraint {
            expr: diff,
            strict: true,
        }],
        CmpOp::Ge => vec![Constraint {
            expr: diff.scale(-1.0),
            strict: false,
        }],
        CmpOp::Gt => vec![Constraint {
            expr: diff.scale(-1.0),
            strict: true,
        }],
        CmpOp::Eq => vec![
            Constraint {
                expr: diff.clone(),
                strict: false,
            },
            Constraint {
                expr: diff.scale(-1.0),
                strict: false,
            },
        ],
        // Ne is split during DNF conversion.
        CmpOp::Ne => vec![],
    }
}

/// Fourier–Motzkin feasibility test for a conjunction of constraints over the
/// reals. Returns true when the conjunction is satisfiable.
fn conjunction_feasible(atoms: &[Atom]) -> Option<bool> {
    let mut constraints: Vec<Constraint> = atoms.iter().flat_map(atom_constraints).collect();

    loop {
        if constraints.len() > MAX_CONSTRAINTS {
            return None;
        }
        // Find a variable to eliminate.
        let var = constraints
            .iter()
            .flat_map(|c| c.expr.variables())
            .next()
            .map(|s| s.to_string());
        let var = match var {
            Some(v) => v,
            None => break,
        };

        let mut uppers: Vec<(LinExpr, bool)> = Vec::new(); // x ≤ expr (coeff>0)
        let mut lowers: Vec<(LinExpr, bool)> = Vec::new(); // expr ≤ x (coeff<0)
        let mut rest: Vec<Constraint> = Vec::new();
        for c in constraints.into_iter() {
            let coeff = c.expr.coeff(&var);
            if coeff.abs() < 1e-12 {
                rest.push(c);
            } else {
                // c: coeff·x + r (< | ≤) 0  ⇒  x (< | ≤) -r/coeff (coeff>0)
                //                             or -r/coeff (< | ≤) x (coeff<0)
                let mut r = c.expr.clone();
                // Remove the variable term.
                r = r.sub(&LinExpr::var(&var).scale(coeff));
                let bound = r.scale(-1.0 / coeff);
                if coeff > 0.0 {
                    uppers.push((bound, c.strict));
                } else {
                    lowers.push((bound, c.strict));
                }
            }
        }
        // Combine lower and upper bounds: lower (< | ≤) upper.
        for (lo, lo_strict) in &lowers {
            for (hi, hi_strict) in &uppers {
                rest.push(Constraint {
                    expr: lo.sub(hi),
                    strict: *lo_strict || *hi_strict,
                });
                if rest.len() > MAX_CONSTRAINTS {
                    return None;
                }
            }
        }
        constraints = rest;
    }

    // Only constant constraints remain.
    for c in &constraints {
        let v = c.expr.constant_part();
        let ok = if c.strict { v < -EPS } else { v <= EPS };
        if !ok {
            return Some(false);
        }
    }
    Some(true)
}

/// Is the formula satisfiable (free variables existentially quantified)?
pub fn is_satisfiable(f: &Formula) -> SolverResult {
    let nnf = to_nnf(f, false);
    let dnf = match to_dnf(&nnf) {
        Some(d) => d,
        None => return SolverResult::Unknown,
    };
    let mut unknown = false;
    for conj in &dnf {
        match conjunction_feasible(conj) {
            Some(true) => return SolverResult::Satisfiable,
            Some(false) => {}
            None => unknown = true,
        }
    }
    if unknown {
        SolverResult::Unknown
    } else {
        SolverResult::Unsatisfiable
    }
}

/// Is the formula valid (free variables universally quantified)?
///
/// Returns `true` only when validity is *proven*; `Unknown` results map to
/// `false`, keeping every downstream use sound.
pub fn is_valid(f: &Formula) -> bool {
    matches!(
        is_satisfiable(&Formula::not(f.clone())),
        SolverResult::Unsatisfiable
    )
}

/// Does `premise` imply `conclusion` for all variable assignments?
pub fn implies(premise: &Formula, conclusion: &Formula) -> bool {
    is_valid(&Formula::implies(premise.clone(), conclusion.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{CmpOp, Formula, LinExpr};

    fn v(name: &str) -> LinExpr {
        LinExpr::var(name)
    }
    fn c(x: f64) -> LinExpr {
        LinExpr::constant(x)
    }

    #[test]
    fn trivial_formulas() {
        assert_eq!(is_satisfiable(&Formula::True), SolverResult::Satisfiable);
        assert_eq!(is_satisfiable(&Formula::False), SolverResult::Unsatisfiable);
        assert!(is_valid(&Formula::True));
        assert!(!is_valid(&Formula::False));
    }

    #[test]
    fn simple_contradiction_is_unsat() {
        // x < 5 AND x > 10
        let f = Formula::and_all(vec![
            Formula::cmp(v("x"), CmpOp::Lt, c(5.0)),
            Formula::cmp(v("x"), CmpOp::Gt, c(10.0)),
        ]);
        assert_eq!(is_satisfiable(&f), SolverResult::Unsatisfiable);
    }

    #[test]
    fn strict_boundary_contradiction() {
        // x >= 10 AND x < 10
        let f = Formula::and_all(vec![
            Formula::cmp(v("x"), CmpOp::Ge, c(10.0)),
            Formula::cmp(v("x"), CmpOp::Lt, c(10.0)),
        ]);
        assert_eq!(is_satisfiable(&f), SolverResult::Unsatisfiable);
        // x >= 10 AND x <= 10 is satisfiable (x = 10).
        let g = Formula::and_all(vec![
            Formula::cmp(v("x"), CmpOp::Ge, c(10.0)),
            Formula::cmp(v("x"), CmpOp::Le, c(10.0)),
        ]);
        assert_eq!(is_satisfiable(&g), SolverResult::Satisfiable);
    }

    #[test]
    fn transitivity_is_valid() {
        // (a <= b AND b <= c) -> a <= c
        let f = Formula::implies(
            Formula::and_all(vec![
                Formula::var_cmp_var("a", CmpOp::Le, "b"),
                Formula::var_cmp_var("b", CmpOp::Le, "c"),
            ]),
            Formula::var_cmp_var("a", CmpOp::Le, "c"),
        );
        assert!(is_valid(&f));
    }

    #[test]
    fn paper_example_6_totden_implication_fails() {
        // totden <= totden' AND totden < 7000  does NOT imply  totden' < 7000
        // (Ex. 6, Sec. 5.2: popden is unsafe for the HAVING query).
        let premise = Formula::and_all(vec![
            Formula::var_cmp_var("totden", CmpOp::Le, "totden_p"),
            Formula::var_cmp_const("totden", CmpOp::Lt, 7000.0),
        ]);
        let conclusion = Formula::var_cmp_const("totden_p", CmpOp::Lt, 7000.0);
        assert!(!implies(&premise, &conclusion));
    }

    #[test]
    fn paper_example_7_uconds_holds() {
        // Ex. 7 (Sec. 6): p = p' ∧ cnt = cnt' ∧ p' > 100 ∧ cnt' > 15
        //   ->  p > 100 ∧ cnt > 10
        let premise = Formula::and_all(vec![
            Formula::var_cmp_var("p", CmpOp::Eq, "p_p"),
            Formula::var_cmp_var("cnt", CmpOp::Eq, "cnt_p"),
            Formula::var_cmp_const("p_p", CmpOp::Gt, 100.0),
            Formula::var_cmp_const("cnt_p", CmpOp::Gt, 15.0),
        ]);
        let conclusion = Formula::and_all(vec![
            Formula::var_cmp_const("p", CmpOp::Gt, 100.0),
            Formula::var_cmp_const("cnt", CmpOp::Gt, 10.0),
        ]);
        assert!(implies(&premise, &conclusion));
        // The reverse binding (cnt' > 10 -> cnt > 15) must fail.
        let premise_rev = Formula::and_all(vec![
            Formula::var_cmp_var("cnt", CmpOp::Eq, "cnt_p"),
            Formula::var_cmp_const("cnt_p", CmpOp::Gt, 10.0),
        ]);
        let conclusion_rev = Formula::var_cmp_const("cnt", CmpOp::Gt, 15.0);
        assert!(!implies(&premise_rev, &conclusion_rev));
    }

    #[test]
    fn selection_containment_with_chained_conditions() {
        // Sec. 6 example: Q = σ_{a=20}(σ_{a>30}) vs Q' = σ_{a=20}(σ_{a>10}).
        // pred(Q') = (a' = 20 AND a' > 10); with a = a' it implies
        // pred(Q) = (a = 20 AND a > 30)? No — a=20 contradicts a>30, but the
        // premise a'=20 makes the whole premise satisfied while conclusion
        // fails... the paper's point is testing the conjunction jointly:
        // a = a' ∧ a' = 20 ∧ a' > 10 -> a = 20 ∧ a > 30 is NOT valid,
        // whereas both queries are equivalent (empty). Our solver just has to
        // agree with first-order semantics here.
        let premise = Formula::and_all(vec![
            Formula::var_cmp_var("a", CmpOp::Eq, "a_p"),
            Formula::var_cmp_const("a_p", CmpOp::Eq, 20.0),
            Formula::var_cmp_const("a_p", CmpOp::Gt, 10.0),
        ]);
        let conclusion = Formula::and_all(vec![
            Formula::var_cmp_const("a", CmpOp::Eq, 20.0),
            Formula::var_cmp_const("a", CmpOp::Gt, 30.0),
        ]);
        assert!(!implies(&premise, &conclusion));
    }

    #[test]
    fn equality_and_inequality_interplay() {
        // x = y AND x <> y is unsatisfiable.
        let f = Formula::and_all(vec![
            Formula::var_cmp_var("x", CmpOp::Eq, "y"),
            Formula::var_cmp_var("x", CmpOp::Ne, "y"),
        ]);
        assert_eq!(is_satisfiable(&f), SolverResult::Unsatisfiable);
    }

    #[test]
    fn disjunctive_premises() {
        // (x > 5 OR x < -5) AND x = 0 is unsatisfiable.
        let f = Formula::and_all(vec![
            Formula::or_all(vec![
                Formula::var_cmp_const("x", CmpOp::Gt, 5.0),
                Formula::var_cmp_const("x", CmpOp::Lt, -5.0),
            ]),
            Formula::var_cmp_const("x", CmpOp::Eq, 0.0),
        ]);
        assert_eq!(is_satisfiable(&f), SolverResult::Unsatisfiable);
    }

    #[test]
    fn linear_combinations() {
        // x + y <= 10 AND x >= 8 AND y >= 3 is unsatisfiable.
        let f = Formula::and_all(vec![
            Formula::cmp(v("x").add(&v("y")), CmpOp::Le, c(10.0)),
            Formula::cmp(v("x"), CmpOp::Ge, c(8.0)),
            Formula::cmp(v("y"), CmpOp::Ge, c(3.0)),
        ]);
        assert_eq!(is_satisfiable(&f), SolverResult::Unsatisfiable);
        // Relaxing y's bound makes it satisfiable.
        let g = Formula::and_all(vec![
            Formula::cmp(v("x").add(&v("y")), CmpOp::Le, c(10.0)),
            Formula::cmp(v("x"), CmpOp::Ge, c(8.0)),
            Formula::cmp(v("y"), CmpOp::Ge, c(1.0)),
        ]);
        assert_eq!(is_satisfiable(&g), SolverResult::Satisfiable);
    }

    #[test]
    fn validity_of_monotone_aggregate_reasoning() {
        // The aggregation safety case: b <= b' AND b > 100 -> b' > 100... is
        // actually valid because b' >= b > 100. (Note the contrast with the
        // upper-bound case in Ex. 6.)
        let f = Formula::implies(
            Formula::and_all(vec![
                Formula::var_cmp_var("b", CmpOp::Le, "b_p"),
                Formula::var_cmp_const("b", CmpOp::Gt, 100.0),
            ]),
            Formula::var_cmp_const("b_p", CmpOp::Gt, 100.0),
        );
        assert!(is_valid(&f));
    }

    #[test]
    fn unknown_on_blowup_is_conservative() {
        // Build a formula with many disjunctions that exceeds the DNF budget;
        // the solver must answer Unknown (not a wrong Unsatisfiable).
        let mut parts = Vec::new();
        for i in 0..24 {
            parts.push(Formula::or_all(vec![
                Formula::var_cmp_const(&format!("x{i}"), CmpOp::Gt, 0.0),
                Formula::var_cmp_const(&format!("x{i}"), CmpOp::Lt, -1.0),
            ]));
        }
        let f = Formula::and_all(parts);
        let r = is_satisfiable(&f);
        assert!(matches!(
            r,
            SolverResult::Unknown | SolverResult::Satisfiable
        ));
        // And validity of its negation must not be claimed.
        assert!(!is_valid(&Formula::not(f)));
    }
}
