//! Expression evaluation over rows.

use pbds_algebra::{BinOp, Expr, RangeLookup};
use pbds_storage::{Row, Schema, Value};

/// Errors raised during expression evaluation or query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A referenced column is missing from the input schema.
    UnknownColumn(String),
    /// A referenced table is missing from the database.
    UnknownTable(String),
    /// An unbound query parameter was encountered at runtime.
    UnboundParameter(usize),
    /// Catch-all for malformed plans.
    Plan(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ExecError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            ExecError::UnboundParameter(i) => write!(f, "unbound parameter ${i}"),
            ExecError::Plan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<pbds_storage::StorageError> for ExecError {
    fn from(e: pbds_storage::StorageError) -> Self {
        match e {
            pbds_storage::StorageError::UnknownTable(t) => ExecError::UnknownTable(t),
            pbds_storage::StorageError::UnknownColumn { column, .. } => {
                ExecError::UnknownColumn(column)
            }
            e @ pbds_storage::StorageError::ArityMismatch { .. } => ExecError::Plan(e.to_string()),
        }
    }
}

/// Evaluate an expression against one row.
pub fn eval_expr(expr: &Expr, schema: &Schema, row: &Row) -> Result<Value, ExecError> {
    match expr {
        Expr::Column(name) => {
            let idx = schema
                .index_of(name)
                .ok_or_else(|| ExecError::UnknownColumn(name.clone()))?;
            Ok(row[idx].clone())
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => Err(ExecError::UnboundParameter(*i)),
        Expr::Binary { op, left, right } => {
            let l = eval_expr(left, schema, row)?;
            let r = eval_expr(right, schema, row)?;
            Ok(eval_binary(*op, &l, &r))
        }
        Expr::And(es) => {
            for e in es {
                match eval_expr(e, schema, row)?.as_bool() {
                    Some(true) => {}
                    _ => return Ok(Value::Bool(false)),
                }
            }
            Ok(Value::Bool(true))
        }
        Expr::Or(es) => {
            for e in es {
                if eval_expr(e, schema, row)?.as_bool() == Some(true) {
                    return Ok(Value::Bool(true));
                }
            }
            Ok(Value::Bool(false))
        }
        Expr::Not(e) => {
            let v = eval_expr(e, schema, row)?;
            Ok(match v.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Bool(false),
            })
        }
        Expr::IsNull(e) => Ok(Value::Bool(eval_expr(e, schema, row)?.is_null())),
        Expr::Case {
            branches,
            otherwise,
        } => {
            for (cond, result) in branches {
                if eval_expr(cond, schema, row)?.as_bool() == Some(true) {
                    return eval_expr(result, schema, row);
                }
            }
            eval_expr(otherwise, schema, row)
        }
        Expr::InRanges {
            column,
            ranges,
            lookup,
        } => {
            let idx = schema
                .index_of(column)
                .ok_or_else(|| ExecError::UnknownColumn(column.clone()))?;
            let v = &row[idx];
            if v.is_null() {
                return Ok(Value::Bool(false));
            }
            let found = match lookup {
                RangeLookup::Linear => ranges.iter().any(|r| r.contains(v)),
                RangeLookup::BinarySearch => {
                    // Ranges are ordered and non-overlapping: find the first
                    // range whose upper bound is >= v and test containment.
                    let pos = ranges.partition_point(|r| match &r.hi {
                        Some(hi) => hi < v,
                        None => false,
                    });
                    ranges.get(pos).map(|r| r.contains(v)).unwrap_or(false)
                }
            };
            Ok(Value::Bool(found))
        }
        Expr::InList { columns, keys } => {
            let mut key = Vec::with_capacity(columns.len());
            for c in columns {
                let idx = schema
                    .index_of(c)
                    .ok_or_else(|| ExecError::UnknownColumn(c.clone()))?;
                key.push(row[idx].clone());
            }
            // Keys are sorted (see `Expr::InList`), so membership is O(log n).
            Ok(Value::Bool(keys.binary_search(&key).is_ok()))
        }
    }
}

/// Evaluate a predicate; SQL-style three-valued logic collapses NULL/unknown
/// to `false` (a row only qualifies when the predicate is definitely true).
pub fn eval_predicate(expr: &Expr, schema: &Schema, row: &Row) -> Result<bool, ExecError> {
    Ok(eval_expr(expr, schema, row)?.as_bool() == Some(true))
}

pub(crate) fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Value {
    use BinOp::*;
    match op {
        Add => l.add(r),
        Sub => l.sub(r),
        Mul => l.mul(r),
        Div => l.div(r),
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            let c = l.cmp(r);
            let b = match op {
                Eq => c.is_eq(),
                Ne => !c.is_eq(),
                Lt => c.is_lt(),
                Le => c.is_le(),
                Gt => c.is_gt(),
                Ge => c.is_ge(),
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param};
    use pbds_storage::{DataType, ValueRange};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ])
    }

    fn row() -> Row {
        vec![
            Value::Int(6000),
            Value::from("San Diego"),
            Value::from("CA"),
        ]
    }

    #[test]
    fn column_and_literal_access() {
        let v = eval_expr(&col("state"), &schema(), &row()).unwrap();
        assert_eq!(v, Value::from("CA"));
        assert_eq!(
            eval_expr(&lit(5), &schema(), &row()).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let pred = col("state").eq(lit("CA")).and(col("popden").gt(lit(5000)));
        assert!(eval_predicate(&pred, &schema(), &row()).unwrap());
        let pred2 = col("state").eq(lit("NY")).or(col("popden").lt(lit(100)));
        assert!(!eval_predicate(&pred2, &schema(), &row()).unwrap());
        let pred3 = col("state").eq(lit("NY")).not();
        assert!(eval_predicate(&pred3, &schema(), &row()).unwrap());
    }

    #[test]
    fn null_comparisons_are_unknown_and_filtered() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let row = vec![Value::Null];
        assert!(!eval_predicate(&col("a").gt(lit(1)), &schema, &row).unwrap());
        assert!(eval_predicate(&Expr::IsNull(Box::new(col("a"))), &schema, &row).unwrap());
    }

    #[test]
    fn unbound_param_is_error() {
        assert_eq!(
            eval_expr(&param(0), &schema(), &row()).unwrap_err(),
            ExecError::UnboundParameter(0)
        );
    }

    #[test]
    fn unknown_column_is_error() {
        assert!(matches!(
            eval_expr(&col("nope"), &schema(), &row()).unwrap_err(),
            ExecError::UnknownColumn(_)
        ));
    }

    #[test]
    fn case_expression_picks_first_matching_branch() {
        let e = Expr::Case {
            branches: vec![
                (col("popden").gt(lit(10_000)), lit("huge")),
                (col("popden").gt(lit(5_000)), lit("big")),
            ],
            otherwise: Box::new(lit("small")),
        };
        assert_eq!(
            eval_expr(&e, &schema(), &row()).unwrap(),
            Value::from("big")
        );
    }

    #[test]
    fn in_ranges_linear_and_binary_agree() {
        let ranges = vec![
            ValueRange {
                lo: None,
                hi: Some(Value::Int(10)),
            },
            ValueRange {
                lo: Some(Value::Int(20)),
                hi: Some(Value::Int(30)),
            },
            ValueRange {
                lo: Some(Value::Int(50)),
                hi: None,
            },
        ];
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        for v in [-5i64, 5, 10, 15, 20, 21, 30, 31, 49, 50, 51, 1000] {
            let row = vec![Value::Int(v)];
            let linear = Expr::InRanges {
                column: "a".into(),
                ranges: ranges.clone(),
                lookup: RangeLookup::Linear,
            };
            let bs = Expr::InRanges {
                column: "a".into(),
                ranges: ranges.clone(),
                lookup: RangeLookup::BinarySearch,
            };
            assert_eq!(
                eval_predicate(&linear, &schema, &row).unwrap(),
                eval_predicate(&bs, &schema, &row).unwrap(),
                "disagreement at {v}"
            );
        }
    }

    #[test]
    fn in_list_membership() {
        let e = Expr::InList {
            columns: vec!["state".into(), "city".into()],
            keys: vec![vec![Value::from("CA"), Value::from("San Diego")]],
        };
        assert!(eval_predicate(&e, &schema(), &row()).unwrap());
        let e2 = Expr::InList {
            columns: vec!["state".into(), "city".into()],
            keys: vec![vec![Value::from("NY"), Value::from("Buffalo")]],
        };
        assert!(!eval_predicate(&e2, &schema(), &row()).unwrap());
    }

    #[test]
    fn arithmetic_in_expressions() {
        let e = col("popden").mul(lit(2)).add(lit(1));
        assert_eq!(
            eval_expr(&e, &schema(), &row()).unwrap(),
            Value::Int(12_001)
        );
    }
}
