//! Execution statistics.
//!
//! Wall-clock times vary across machines, so besides elapsed time the engine
//! reports deterministic counters — rows scanned, zone-map blocks skipped,
//! index probes — that serve as a machine-independent proxy for the I/O the
//! paper's data-skipping saves.

use std::time::Duration;

/// Counters collected while executing one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Rows read from base tables (after data skipping).
    pub rows_scanned: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Zone-map blocks skipped thanks to range predicates.
    pub blocks_skipped: u64,
    /// Zone-map blocks considered in total.
    pub blocks_total: u64,
    /// Number of scans answered through an ordered index.
    pub index_scans: u64,
    /// Number of full table scans.
    pub full_scans: u64,
    /// Intermediate rows processed by joins/aggregates (a coarse work proxy).
    pub intermediate_rows: u64,
    /// Batches emitted by the root of the physical operator pipeline.
    pub batches: u64,
    /// `(limit, input_rows)` per top-k operator, used to re-validate sketch
    /// safety at runtime (footnote 1, Sec. 5 of the paper).
    pub topk_inputs: Vec<(usize, u64)>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Merge another stats record into this one (used when the self-tuning
    /// framework accumulates per-workload totals).
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_output += other.rows_output;
        self.blocks_skipped += other.blocks_skipped;
        self.blocks_total += other.blocks_total;
        self.index_scans += other.index_scans;
        self.full_scans += other.full_scans;
        self.intermediate_rows += other.intermediate_rows;
        self.batches += other.batches;
        self.topk_inputs.extend(other.topk_inputs.iter().cloned());
        self.elapsed += other.elapsed;
    }

    /// True if every top-k operator saw at least as many input rows as its
    /// limit — the condition under which the static safety check remains
    /// valid for top-k queries.
    pub fn topk_safety_revalidated(&self) -> bool {
        self.topk_inputs
            .iter()
            .all(|(limit, input)| *input >= *limit as u64)
    }

    /// Fraction of zone-map blocks skipped (0 when no zone maps were used).
    pub fn skip_ratio(&self) -> f64 {
        if self.blocks_total == 0 {
            0.0
        } else {
            self.blocks_skipped as f64 / self.blocks_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_counters() {
        let mut a = ExecStats {
            rows_scanned: 10,
            blocks_skipped: 1,
            blocks_total: 4,
            topk_inputs: vec![(5, 20)],
            ..Default::default()
        };
        let b = ExecStats {
            rows_scanned: 5,
            blocks_skipped: 3,
            blocks_total: 4,
            topk_inputs: vec![(10, 3)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.blocks_skipped, 4);
        assert_eq!(a.topk_inputs.len(), 2);
        assert!(!a.topk_safety_revalidated());
    }

    #[test]
    fn skip_ratio_handles_zero_blocks() {
        assert_eq!(ExecStats::default().skip_ratio(), 0.0);
        let s = ExecStats {
            blocks_skipped: 3,
            blocks_total: 4,
            ..Default::default()
        };
        assert!((s.skip_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn topk_revalidation_passes_when_inputs_large_enough() {
        let s = ExecStats {
            topk_inputs: vec![(10, 10), (5, 100)],
            ..Default::default()
        };
        assert!(s.topk_safety_revalidated());
    }
}
