//! Execution statistics.
//!
//! Wall-clock times vary across machines, so besides elapsed time the engine
//! reports deterministic counters — rows scanned, zone-map blocks skipped,
//! index probes — that serve as a machine-independent proxy for the I/O the
//! paper's data-skipping saves.

use std::time::Duration;

/// Counters collected while executing one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Rows read from base tables (after data skipping).
    pub rows_scanned: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Zone-map blocks skipped thanks to range predicates.
    pub blocks_skipped: u64,
    /// Zone-map blocks considered in total.
    pub blocks_total: u64,
    /// Number of scans answered through an ordered index.
    pub index_scans: u64,
    /// Number of full table scans.
    pub full_scans: u64,
    /// Intermediate rows processed by joins/aggregates (a coarse work proxy).
    pub intermediate_rows: u64,
    /// Batches emitted by the root of the physical operator pipeline.
    pub batches: u64,
    /// Scans whose pushed-down filter ran on the vectorized columnar path.
    pub vectorized_scans: u64,
    /// Columnar blocks evaluated into selection bitmaps by vectorized scans.
    pub vectorized_blocks: u64,
    /// Vectorized blocks whose chunk carried at least one compressed
    /// (run-length or bit-packed) column.
    pub encoded_blocks: u64,
    /// Conjuncts that fell back to row-at-a-time evaluation over a block
    /// with compressed columns (no encoded kernel applied).
    pub encoded_kernel_fallbacks: u64,
    /// Columnar blocks aggregated directly over the selection bitmap by the
    /// scan→aggregate pushdown, skipping row materialization.
    pub agg_pushdown_blocks: u64,
    /// `(limit, input_rows)` per top-k operator, used to re-validate sketch
    /// safety at runtime (footnote 1, Sec. 5 of the paper).
    pub topk_inputs: Vec<(usize, u64)>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Upper bound on the `topk_inputs` vector after a parallel merge; see
    /// [`ExecStats::merge_parallel`].
    pub const TOPK_INPUTS_CAP: usize = 32;

    /// Merge another stats record into this one (used when the self-tuning
    /// framework accumulates per-workload totals).
    ///
    /// This is the *sequential* merge: the two executions happened one after
    /// the other, so wall-clock times add up. For stats produced by workers
    /// that ran *concurrently* (morsel-parallel scans), use
    /// [`ExecStats::merge_parallel`] instead — summing `elapsed` across
    /// parallel branches would overstate wall-clock time by the worker count.
    pub fn merge(&mut self, other: &ExecStats) {
        self.merge_counters(other);
        self.merge_topk_bounded(other);
        self.elapsed += other.elapsed;
    }

    /// Merge stats of a *concurrent* execution branch into this one.
    ///
    /// The only difference from the sequential [`ExecStats::merge`]:
    /// `elapsed` is the **max** across branches, not the sum — branches
    /// overlapped in time, so the slowest one bounds the wall clock.
    pub fn merge_parallel(&mut self, other: &ExecStats) {
        self.merge_counters(other);
        self.merge_topk_bounded(other);
        self.elapsed = self.elapsed.max(other.elapsed);
    }

    /// Accumulate `topk_inputs`, bounded at [`ExecStats::TOPK_INPUTS_CAP`]
    /// entries. When the cap is exceeded, the entries with the smallest
    /// `input / limit` slack are kept: those are the only ones that can make
    /// [`ExecStats::topk_safety_revalidated`] fail, so dropping the
    /// comfortable ones never turns a failing re-validation into a passing
    /// one. Both merge flavours share this helper — an earlier asymmetry
    /// (only the parallel merge bounded the vector) let long sequential
    /// accumulation loops grow it without limit.
    fn merge_topk_bounded(&mut self, other: &ExecStats) {
        self.topk_inputs.extend(other.topk_inputs.iter().cloned());
        if self.topk_inputs.len() > Self::TOPK_INPUTS_CAP {
            let slack = |&(limit, input): &(usize, u64)| input as f64 / (limit.max(1) as f64);
            self.topk_inputs
                .sort_by(|a, b| slack(a).total_cmp(&slack(b)));
            self.topk_inputs.truncate(Self::TOPK_INPUTS_CAP);
        }
    }

    /// Accumulate the deterministic counters shared by both merge flavours.
    fn merge_counters(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_output += other.rows_output;
        self.blocks_skipped += other.blocks_skipped;
        self.blocks_total += other.blocks_total;
        self.index_scans += other.index_scans;
        self.full_scans += other.full_scans;
        self.intermediate_rows = self
            .intermediate_rows
            .saturating_add(other.intermediate_rows);
        self.batches += other.batches;
        self.vectorized_scans += other.vectorized_scans;
        self.vectorized_blocks += other.vectorized_blocks;
        self.encoded_blocks += other.encoded_blocks;
        self.encoded_kernel_fallbacks += other.encoded_kernel_fallbacks;
        self.agg_pushdown_blocks += other.agg_pushdown_blocks;
    }

    /// The selectivity this execution actually observed at its scans
    /// (`rows_output / rows_scanned`), used as feedback for adaptive scan
    /// lowering; `None` when nothing was scanned.
    pub fn observed_scan_selectivity(&self) -> Option<f64> {
        if self.rows_scanned == 0 {
            None
        } else {
            Some((self.rows_output as f64 / self.rows_scanned as f64).clamp(0.0, 1.0))
        }
    }

    /// True if every top-k operator saw at least as many input rows as its
    /// limit — the condition under which the static safety check remains
    /// valid for top-k queries.
    pub fn topk_safety_revalidated(&self) -> bool {
        self.topk_inputs
            .iter()
            .all(|(limit, input)| *input >= *limit as u64)
    }

    /// Fraction of zone-map blocks skipped (0 when no zone maps were used).
    pub fn skip_ratio(&self) -> f64 {
        if self.blocks_total == 0 {
            0.0
        } else {
            self.blocks_skipped as f64 / self.blocks_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_counters() {
        let mut a = ExecStats {
            rows_scanned: 10,
            blocks_skipped: 1,
            blocks_total: 4,
            topk_inputs: vec![(5, 20)],
            ..Default::default()
        };
        let b = ExecStats {
            rows_scanned: 5,
            blocks_skipped: 3,
            blocks_total: 4,
            topk_inputs: vec![(10, 3)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.blocks_skipped, 4);
        assert_eq!(a.topk_inputs.len(), 2);
        assert!(!a.topk_safety_revalidated());
    }

    #[test]
    fn skip_ratio_handles_zero_blocks() {
        assert_eq!(ExecStats::default().skip_ratio(), 0.0);
        let s = ExecStats {
            blocks_skipped: 3,
            blocks_total: 4,
            ..Default::default()
        };
        assert!((s.skip_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_parallel_takes_max_elapsed_not_sum() {
        let mut a = ExecStats {
            rows_scanned: 10,
            encoded_blocks: 2,
            encoded_kernel_fallbacks: 1,
            agg_pushdown_blocks: 3,
            elapsed: Duration::from_millis(30),
            ..Default::default()
        };
        let b = ExecStats {
            rows_scanned: 5,
            encoded_blocks: 4,
            encoded_kernel_fallbacks: 2,
            agg_pushdown_blocks: 5,
            elapsed: Duration::from_millis(50),
            ..Default::default()
        };
        a.merge_parallel(&b);
        assert_eq!(a.rows_scanned, 15);
        // Deterministic counters sum across parallel branches; only the
        // wall clock takes the max.
        assert_eq!(a.encoded_blocks, 6);
        assert_eq!(a.encoded_kernel_fallbacks, 3);
        assert_eq!(a.agg_pushdown_blocks, 8);
        assert_eq!(a.elapsed, Duration::from_millis(50));
        // The sequential merge, in contrast, sums.
        let mut c = ExecStats {
            elapsed: Duration::from_millis(30),
            ..Default::default()
        };
        c.merge(&b);
        assert_eq!(c.elapsed, Duration::from_millis(80));
    }

    #[test]
    fn merge_parallel_bounds_topk_inputs_keeping_failing_entries() {
        let mut a = ExecStats::default();
        // One failing entry (input < limit) among many comfortable ones.
        let mut other = ExecStats::default();
        other.topk_inputs.push((10, 3)); // fails re-validation
        for _ in 0..ExecStats::TOPK_INPUTS_CAP * 2 {
            other.topk_inputs.push((5, 1_000)); // passes comfortably
        }
        a.merge_parallel(&other);
        assert!(a.topk_inputs.len() <= ExecStats::TOPK_INPUTS_CAP);
        // The failing entry must survive the truncation.
        assert!(!a.topk_safety_revalidated());
        assert!(a.topk_inputs.contains(&(10, 3)));
    }

    #[test]
    fn sequential_merge_bounds_topk_inputs_like_parallel_merge() {
        // Regression: plain merge used to extend `topk_inputs` unbounded, so
        // a self-tuning loop accumulating per-workload totals over thousands
        // of top-k queries grew the vector without limit. Both flavours now
        // share the bounded helper.
        let mut seq = ExecStats::default();
        for _ in 0..10 {
            let mut one = ExecStats::default();
            one.topk_inputs.push((10, 3)); // failing entry every round
            for _ in 0..ExecStats::TOPK_INPUTS_CAP {
                one.topk_inputs.push((5, 1_000));
            }
            seq.merge(&one);
        }
        assert!(
            seq.topk_inputs.len() <= ExecStats::TOPK_INPUTS_CAP,
            "sequential merge must bound topk_inputs: {}",
            seq.topk_inputs.len()
        );
        // Truncation keeps the smallest-slack entries, so the failing ones
        // survive and re-validation still (correctly) fails.
        assert!(!seq.topk_safety_revalidated());
        assert!(seq.topk_inputs.contains(&(10, 3)));
    }

    #[test]
    fn observed_scan_selectivity_is_a_clamped_ratio() {
        assert_eq!(ExecStats::default().observed_scan_selectivity(), None);
        let s = ExecStats {
            rows_scanned: 200,
            rows_output: 50,
            ..Default::default()
        };
        assert!((s.observed_scan_selectivity().unwrap() - 0.25).abs() < 1e-12);
        // Joins can output more rows than they scan; the feedback clamps.
        let blown = ExecStats {
            rows_scanned: 10,
            rows_output: 100,
            ..Default::default()
        };
        assert_eq!(blown.observed_scan_selectivity(), Some(1.0));
    }

    #[test]
    fn topk_revalidation_passes_when_inputs_large_enough() {
        let s = ExecStats {
            topk_inputs: vec![(10, 10), (5, 100)],
            ..Default::default()
        };
        assert!(s.topk_safety_revalidated());
    }
}
