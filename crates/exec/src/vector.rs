//! Vectorized predicate evaluation over columnar chunks.
//!
//! [`eval_filter_block`] evaluates a compiled predicate column-at-a-time over
//! one [`ColumnarChunk`] and returns a `u64`-word selection bitmap of the
//! qualifying rows. Sub-expressions with a typed kernel (comparisons against
//! literals, `AND`/`OR`/`NOT`, `IS NULL`, sketch range predicates) run as
//! tight loops over the typed column vectors; anything else (arithmetic,
//! `CASE`, `IN`-lists, unbound parameters, unknown columns) falls back to
//! row-at-a-time [`CompiledExpr::eval`] — applied only to rows that survived
//! the earlier conjuncts, which reproduces the interpreter's short-circuit
//! `AND` exactly (including *which* rows can raise errors).
//!
//! Truth is tracked as **two** bitmaps, `known-true` and `known-false`, with
//! NULL/unknown being neither — this is what lets `NOT` distinguish a
//! comparison that evaluated to `false` (negates to `true`) from one that
//! evaluated to `NULL` (negates to `false`), exactly like the interpreter.
//!
//! ## Kernels on encoded data
//!
//! Compressed column layouts are evaluated **without decoding**:
//!
//! * run-length columns ([`ColumnData::RleInt`], [`ColumnData::RleDict`])
//!   compare once per *run* and fill the covered bit range word-wise — NULL
//!   rows, which the encoder merged into their surrounding run, are cleared
//!   afterwards with one masked pass over the null-bitmap window;
//! * frame-of-reference packed columns ([`ColumnData::PackedInt`]) compare
//!   the unpacked lane against the literal in a tight loop, with a
//!   whole-window constant fill when the literal's type rank already decides
//!   the ordering (e.g. any `Int` vs. a `Str` literal).
//!
//! [`eval_filter_block_counted`] is the same evaluation with `ExecStats`
//! attribution: it counts blocks that carried at least one encoded column and
//! conjuncts that had to fall back to row-at-a-time evaluation over such a
//! block.

use crate::compiled::{ColRef, CompiledExpr};
use crate::eval::ExecError;
use crate::stats::ExecStats;
use pbds_algebra::{BinOp, RangeLookup};
use pbds_storage::{ColumnData, ColumnVector, ColumnarChunk, Row, Value, ValueRange};
use std::cmp::Ordering;

/// A fixed-length selection bitmap over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelBitmap {
    len: usize,
    words: Vec<u64>,
}

impl SelBitmap {
    /// All-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        SelBitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// All-one bitmap of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = SelBitmap {
            len,
            words: vec![!0u64; len.div_ceil(64)],
        };
        b.mask_tail();
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit can be set (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set every bit in `[lo, hi)` word-wise — the fill primitive of the
    /// run-length kernels.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo >= hi {
            return;
        }
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        let lmask = !0u64 << (lo % 64);
        let hmask = !0u64 >> (63 - (hi - 1) % 64);
        if wl == wh {
            self.words[wl] |= lmask & hmask;
        } else {
            self.words[wl] |= lmask;
            for w in &mut self.words[wl + 1..wh] {
                *w = !0;
            }
            self.words[wh] |= hmask;
        }
    }

    /// Number of set bits in `[lo, hi)` — word-wise popcount, used by the
    /// run-aware aggregation shortcuts.
    pub fn count_range(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo >= hi {
            return 0;
        }
        let (wl, wh) = (lo / 64, (hi - 1) / 64);
        let lmask = !0u64 << (lo % 64);
        let hmask = !0u64 >> (63 - (hi - 1) % 64);
        if wl == wh {
            return (self.words[wl] & lmask & hmask).count_ones() as usize;
        }
        let mut c = (self.words[wl] & lmask).count_ones() as usize;
        for w in &self.words[wl + 1..wh] {
            c += w.count_ones() as usize;
        }
        c + (self.words[wh] & hmask).count_ones() as usize
    }

    /// Word-wise intersection.
    pub fn and_assign(&mut self, other: &SelBitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Word-wise union.
    pub fn or_assign(&mut self, other: &SelBitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Word-wise complement (tail bits beyond `len` stay zero).
    pub fn negated(&self) -> SelBitmap {
        let mut out = SelBitmap {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Number of set bits (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the set bit positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut word = *w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

/// Evaluate `pred` over the rows `[lo, hi)` of the table (which must lie
/// inside `chunk`), returning the selection bitmap of qualifying rows (bit
/// `j` ↔ table row `lo + j`). `rows` is the table's row store, used by the
/// row-at-a-time fallback for non-vectorizable conjuncts.
pub fn eval_filter_block(
    pred: &CompiledExpr,
    chunk: &ColumnarChunk,
    rows: &[Row],
    lo: usize,
    hi: usize,
) -> Result<SelBitmap, ExecError> {
    let mut stats = ExecStats::default();
    eval_filter_block_counted(pred, chunk, rows, lo, hi, &mut stats)
}

/// [`eval_filter_block`] with `ExecStats` attribution: bumps
/// `encoded_blocks` when the chunk carries at least one compressed column
/// and `encoded_kernel_fallbacks` for every conjunct that takes the
/// row-at-a-time fallback over such a chunk.
pub fn eval_filter_block_counted(
    pred: &CompiledExpr,
    chunk: &ColumnarChunk,
    rows: &[Row],
    lo: usize,
    hi: usize,
    stats: &mut ExecStats,
) -> Result<SelBitmap, ExecError> {
    debug_assert!(chunk.start <= lo && hi <= chunk.end);
    let encoded = chunk.encoded_columns() > 0;
    if encoded {
        stats.encoded_blocks += 1;
    }
    let n = hi - lo;
    let mut sel = SelBitmap::ones(n);
    let conjuncts: &[CompiledExpr] = match pred {
        CompiledExpr::And(es) => es,
        other => std::slice::from_ref(other),
    };
    for conjunct in conjuncts {
        match vec_truth(conjunct, chunk, lo, hi) {
            Some((truth, _)) => sel.and_assign(&truth),
            None => {
                if encoded {
                    stats.encoded_kernel_fallbacks += 1;
                }
                // Fallback: evaluate row-at-a-time, but only on rows that
                // passed the previous conjuncts — the same (row, conjunct)
                // pairs the interpreter's short-circuit AND evaluates.
                let mut keep = SelBitmap::zeros(n);
                for j in sel.iter_ones() {
                    if conjunct.matches(&rows[lo + j])? {
                        keep.set(j);
                    }
                }
                sel = keep;
            }
        }
    }
    Ok(sel)
}

/// Try to evaluate `expr` with typed kernels over `[lo, hi)`; returns the
/// `(known-true, known-false)` bitmap pair, or `None` when the node has no
/// kernel (caller falls back to row-at-a-time evaluation).
fn vec_truth(
    expr: &CompiledExpr,
    chunk: &ColumnarChunk,
    lo: usize,
    hi: usize,
) -> Option<(SelBitmap, SelBitmap)> {
    let n = hi - lo;
    match expr {
        CompiledExpr::Literal(v) => Some(match v.as_bool() {
            Some(true) => (SelBitmap::ones(n), SelBitmap::zeros(n)),
            Some(false) => (SelBitmap::zeros(n), SelBitmap::ones(n)),
            None => (SelBitmap::zeros(n), SelBitmap::zeros(n)),
        }),
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            match (&**left, &**right) {
                (CompiledExpr::Column(ColRef::Idx(c)), CompiledExpr::Literal(v)) => {
                    Some(cmp_kernel(chunk, *c, lo, hi, *op, v))
                }
                (CompiledExpr::Literal(v), CompiledExpr::Column(ColRef::Idx(c))) => {
                    Some(cmp_kernel(chunk, *c, lo, hi, flip_cmp(*op), v))
                }
                _ => None,
            }
        }
        CompiledExpr::And(es) => {
            let mut truth = SelBitmap::ones(n);
            for e in es {
                let (t, _) = vec_truth(e, chunk, lo, hi)?;
                truth.and_assign(&t);
            }
            // AND always yields a definite boolean (NULL collapses to false).
            let falsity = truth.negated();
            Some((truth, falsity))
        }
        CompiledExpr::Or(es) => {
            let mut truth = SelBitmap::zeros(n);
            for e in es {
                let (t, _) = vec_truth(e, chunk, lo, hi)?;
                truth.or_assign(&t);
            }
            let falsity = truth.negated();
            Some((truth, falsity))
        }
        CompiledExpr::Not(e) => {
            // NOT x is true exactly when x is known-false; NULL/unknown
            // negates to false (the interpreter's `as_bool` collapse).
            let (_, f) = vec_truth(e, chunk, lo, hi)?;
            let falsity = f.negated();
            Some((f, falsity))
        }
        CompiledExpr::IsNull(e) => match &**e {
            CompiledExpr::Column(ColRef::Idx(c)) => {
                let col = chunk.column(*c);
                let truth =
                    null_window(col, lo - chunk.start, n).unwrap_or_else(|| SelBitmap::zeros(n));
                let falsity = truth.negated();
                Some((truth, falsity))
            }
            _ => None,
        },
        CompiledExpr::InRanges {
            column: ColRef::Idx(c),
            ranges,
            lookup,
        } => Some(ranges_kernel(chunk, *c, lo, hi, ranges, *lookup)),
        _ => None,
    }
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[inline]
fn cmp_holds(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("comparison operator"),
    }
}

/// `Value::cmp` semantics for a string cell against any literal without
/// materializing a `Value::Str`: same-type is lexicographic, cross-type
/// follows the fixed type ranks (strings rank above every other type).
#[inline]
fn cmp_str_value(s: &str, v: &Value) -> Ordering {
    match v {
        Value::Str(t) => s.cmp(t.as_str()),
        _ => Ordering::Greater,
    }
}

/// Compare the non-null cell at chunk-relative index `i` against `v`, with
/// exactly [`Value::cmp`]'s total-order semantics.
#[inline]
fn cmp_cell(col: &ColumnVector, i: usize, v: &Value) -> Ordering {
    match col.data() {
        ColumnData::Int(xs) => Value::Int(xs[i]).cmp(v),
        ColumnData::Float(xs) => Value::Float(xs[i]).cmp(v),
        ColumnData::Bool(xs) => Value::Bool(xs[i]).cmp(v),
        ColumnData::Dict { dict, codes } => cmp_str_value(&dict[codes[i] as usize], v),
        ColumnData::Mixed(xs) => xs[i].cmp(v),
        ColumnData::RleInt(runs) => Value::Int(runs.value_at(i)).cmp(v),
        ColumnData::PackedInt(p) => Value::Int(p.get(i)).cmp(v),
        ColumnData::RleDict { dict, runs } => cmp_str_value(&dict[runs.value_at(i) as usize], v),
    }
}

/// The null bits of `col` over the chunk-relative window `[base, base + n)`
/// as a bitmap (bit `j` ↔ row `base + j` is NULL), or `None` when the column
/// has no NULLs in the chunk. Stitches adjacent words when `base % 64 != 0`.
fn null_window(col: &ColumnVector, base: usize, n: usize) -> Option<SelBitmap> {
    let words = col.null_words()?;
    let mut out = SelBitmap::zeros(n);
    let shift = base % 64;
    let w0 = base / 64;
    for wi in 0..out.words.len() {
        let lo_part = words.get(w0 + wi).copied().unwrap_or(0) >> shift;
        let hi_part = if shift == 0 {
            0
        } else {
            words.get(w0 + wi + 1).copied().unwrap_or(0) << (64 - shift)
        };
        out.words[wi] = lo_part | hi_part;
    }
    out.mask_tail();
    Some(out)
}

/// Clear NULL-row bits from both truth bitmaps (a NULL comparison is neither
/// true nor false). The run-length kernels fill whole runs first — which
/// includes the NULLs the encoder merged into them — and fix up here with one
/// word-wise pass.
fn clear_null_bits(
    col: &ColumnVector,
    base: usize,
    n: usize,
    truth: &mut SelBitmap,
    falsity: &mut SelBitmap,
) {
    if let Some(nw) = null_window(col, base, n) {
        for ((t, f), w) in truth
            .words
            .iter_mut()
            .zip(falsity.words.iter_mut())
            .zip(&nw.words)
        {
            *t &= !w;
            *f &= !w;
        }
    }
}

/// `sel` with the NULL rows of `col` cleared (the selection covers the
/// chunk-relative window starting at `base`), or `None` when the column has
/// no NULLs in the chunk and `sel` can be used as-is. Used by the
/// scan→aggregate pushdown, whose run-length shortcuts must not count the
/// NULLs the encoder merged into runs.
pub(crate) fn sel_without_nulls(
    sel: &SelBitmap,
    col: &ColumnVector,
    base: usize,
) -> Option<SelBitmap> {
    let nw = null_window(col, base, sel.len())?;
    let mut out = sel.clone();
    for (o, w) in out.words.iter_mut().zip(&nw.words) {
        *o &= !w;
    }
    Some(out)
}

/// Fill `truth`/`falsity` for comparison `op` from per-run orderings: one
/// `cmp_holds` per run, then a word-wise range fill of the run's overlap
/// with the window `[base, base + n)` (run bounds are chunk-relative).
fn cmp_fill_runs(
    runs: impl Iterator<Item = (usize, usize, Ordering)>,
    op: BinOp,
    base: usize,
    n: usize,
    truth: &mut SelBitmap,
    falsity: &mut SelBitmap,
) {
    for (s, e, ord) in runs {
        if s >= base + n {
            break;
        }
        let (rs, re) = (s.max(base), e.min(base + n));
        if rs >= re {
            continue;
        }
        let dst = if cmp_holds(op, ord) {
            &mut *truth
        } else {
            &mut *falsity
        };
        dst.set_range(rs - base, re - base);
    }
}

/// `column <op> literal` over `[lo, hi)`. NULL cells (and a NULL literal) are
/// neither true nor false, matching the interpreter's three-valued compare.
fn cmp_kernel(
    chunk: &ColumnarChunk,
    c: usize,
    lo: usize,
    hi: usize,
    op: BinOp,
    lit: &Value,
) -> (SelBitmap, SelBitmap) {
    let n = hi - lo;
    let mut truth = SelBitmap::zeros(n);
    let mut falsity = SelBitmap::zeros(n);
    if lit.is_null() {
        return (truth, falsity);
    }
    let col = chunk.column(c);
    let base = lo - chunk.start;
    match (col.data(), lit) {
        // Hot path: pure i64 comparison, no `Value` in the loop.
        (ColumnData::Int(xs), Value::Int(l)) => {
            for j in 0..n {
                if !col.is_null(base + j) {
                    if cmp_holds(op, xs[base + j].cmp(l)) {
                        truth.set(j);
                    } else {
                        falsity.set(j);
                    }
                }
            }
        }
        // Run-length integers: one `Value` comparison per run — this is the
        // O(runs)-not-O(rows) path — then a null fix-up pass.
        (ColumnData::RleInt(runs), _) => {
            cmp_fill_runs(
                runs.iter().map(|(s, e, v)| (s, e, Value::Int(v).cmp(lit))),
                op,
                base,
                n,
                &mut truth,
                &mut falsity,
            );
            clear_null_bits(col, base, n, &mut truth, &mut falsity);
        }
        // Run-length dictionary codes: one string comparison per run.
        (ColumnData::RleDict { dict, runs }, _) => {
            cmp_fill_runs(
                runs.iter()
                    .map(|(s, e, code)| (s, e, cmp_str_value(&dict[code as usize], lit))),
                op,
                base,
                n,
                &mut truth,
                &mut falsity,
            );
            clear_null_bits(col, base, n, &mut truth, &mut falsity);
        }
        // Packed integers against an `Int` literal. The frame-of-reference
        // header bounds every stored value to `[base, base + 2^width - 1]`,
        // so a literal outside that window decides the whole chunk with one
        // ordering — the common case for selective point/range predicates
        // over clustered columns. Otherwise: unpack-and-compare in a tight
        // lane loop, still no `Value` materialization.
        (ColumnData::PackedInt(p), Value::Int(l)) => {
            let span = (1i64 << p.width().min(62)) - 1;
            let decided = if p.base().saturating_add(span) < *l {
                Some(Ordering::Less)
            } else if p.base() > *l {
                Some(Ordering::Greater)
            } else {
                None
            };
            if let Some(ord) = decided {
                cmp_fill_runs(
                    std::iter::once((0, chunk.len(), ord)),
                    op,
                    base,
                    n,
                    &mut truth,
                    &mut falsity,
                );
                clear_null_bits(col, base, n, &mut truth, &mut falsity);
                return (truth, falsity);
            }
            for j in 0..n {
                if !col.is_null(base + j) {
                    if cmp_holds(op, p.get(base + j).cmp(l)) {
                        truth.set(j);
                    } else {
                        falsity.set(j);
                    }
                }
            }
        }
        // Cross-type literal against a packed-int column: the type-rank
        // order decides every row identically (Int < Str, Int > Bool), so
        // fill the whole window at once.
        (ColumnData::PackedInt(_), Value::Str(_)) => {
            cmp_fill_runs(
                std::iter::once((0, chunk.len(), Ordering::Less)),
                op,
                base,
                n,
                &mut truth,
                &mut falsity,
            );
            clear_null_bits(col, base, n, &mut truth, &mut falsity);
        }
        (ColumnData::PackedInt(_), Value::Bool(_)) => {
            cmp_fill_runs(
                std::iter::once((0, chunk.len(), Ordering::Greater)),
                op,
                base,
                n,
                &mut truth,
                &mut falsity,
            );
            clear_null_bits(col, base, n, &mut truth, &mut falsity);
        }
        // Dictionary columns against a string literal: one binary search in
        // the sorted dict, then pure `u32` code comparisons.
        (ColumnData::Dict { dict, codes }, Value::Str(s)) => {
            let lb = dict.partition_point(|d| d.as_str() < s.as_str()) as u32;
            let exact = dict.get(lb as usize).is_some_and(|d| d == s);
            for j in 0..n {
                if col.is_null(base + j) {
                    continue;
                }
                let code = codes[base + j];
                let holds = match op {
                    BinOp::Eq => exact && code == lb,
                    BinOp::Ne => !(exact && code == lb),
                    BinOp::Lt => code < lb,
                    BinOp::Le => code < lb + exact as u32,
                    BinOp::Gt => code >= lb + exact as u32,
                    BinOp::Ge => code >= lb,
                    _ => unreachable!("comparison operator"),
                };
                if holds {
                    truth.set(j);
                } else {
                    falsity.set(j);
                }
            }
        }
        _ => {
            for j in 0..n {
                if !col.is_null(base + j) {
                    if cmp_holds(op, cmp_cell(col, base + j, lit)) {
                        truth.set(j);
                    } else {
                        falsity.set(j);
                    }
                }
            }
        }
    }
    (truth, falsity)
}

/// Range-membership of a cell given a `cell vs. bound` comparator —
/// identical logic for the per-row and per-run callers: containment is
/// `v > lo && !(v > hi)`, and `BinarySearch` finds the first range whose
/// upper bound is `>= v` exactly like the interpreter.
fn ranges_found(
    cmp: &impl Fn(&Value) -> Ordering,
    ranges: &[ValueRange],
    lookup: RangeLookup,
) -> bool {
    let contains = |r: &ValueRange| -> bool {
        if let Some(rlo) = &r.lo {
            if cmp(rlo) != Ordering::Greater {
                return false;
            }
        }
        if let Some(rhi) = &r.hi {
            if cmp(rhi) == Ordering::Greater {
                return false;
            }
        }
        true
    };
    match lookup {
        RangeLookup::Linear => ranges.iter().any(contains),
        RangeLookup::BinarySearch => {
            let pos = ranges.partition_point(|r| match &r.hi {
                Some(rhi) => cmp(rhi) == Ordering::Greater,
                None => false,
            });
            ranges.get(pos).map(contains).unwrap_or(false)
        }
    }
}

/// Sketch range membership over `[lo, hi)`; NULL cells are known-false, like
/// the interpreter's `InRanges`.
fn ranges_kernel(
    chunk: &ColumnarChunk,
    c: usize,
    lo: usize,
    hi: usize,
    ranges: &[ValueRange],
    lookup: RangeLookup,
) -> (SelBitmap, SelBitmap) {
    let n = hi - lo;
    let mut truth = SelBitmap::zeros(n);
    let mut falsity = SelBitmap::zeros(n);
    let col = chunk.column(c);
    let base = lo - chunk.start;
    // Run-length columns: one membership test per run, then mark NULL rows
    // known-false (they were filled with their run's verdict).
    let mut fill_runs = |found_runs: &mut dyn Iterator<Item = (usize, usize, bool)>| {
        for (s, e, found) in found_runs {
            if s >= base + n {
                break;
            }
            let (rs, re) = (s.max(base), e.min(base + n));
            if rs >= re {
                continue;
            }
            let dst = if found { &mut truth } else { &mut falsity };
            dst.set_range(rs - base, re - base);
        }
    };
    match col.data() {
        ColumnData::RleInt(runs) => {
            fill_runs(&mut runs.iter().map(|(s, e, v)| {
                (
                    s,
                    e,
                    ranges_found(&|b| Value::Int(v).cmp(b), ranges, lookup),
                )
            }));
        }
        ColumnData::RleDict { dict, runs } => {
            fill_runs(&mut runs.iter().map(|(s, e, code)| {
                let cmp = |b: &Value| cmp_str_value(&dict[code as usize], b);
                (s, e, ranges_found(&cmp, ranges, lookup))
            }));
        }
        _ => {
            for j in 0..n {
                let i = base + j;
                if col.is_null(i) {
                    falsity.set(j);
                    continue;
                }
                if ranges_found(&|b| cmp_cell(col, i, b), ranges, lookup) {
                    truth.set(j);
                } else {
                    falsity.set(j);
                }
            }
            return (truth, falsity);
        }
    }
    if let Some(nw) = null_window(col, base, n) {
        for ((t, f), w) in truth
            .words
            .iter_mut()
            .zip(falsity.words.iter_mut())
            .zip(&nw.words)
        {
            *t &= !w;
            *f |= w;
        }
    }
    (truth, falsity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_predicate;
    use pbds_algebra::{col, lit, Expr};
    use pbds_storage::{ColumnarChunks, DataType, Schema};

    fn fixture() -> (Schema, Vec<Row>, ColumnarChunks) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("s", DataType::Str),
            ("f", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                vec![
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Str(format!("v{:02}", i % 17)),
                    Value::Float(i as f64 / 3.0),
                ]
            })
            .collect();
        let chunks = ColumnarChunks::build(&schema, &rows, 64);
        (schema, rows, chunks)
    }

    /// Runny data so the encoder picks `RleInt` / `RleDict`: long runs with
    /// NULLs sprinkled inside them (merged into runs by the encoder). 192
    /// rows = three full 64-row chunks, so every chunk clears the encoder's
    /// minimum-length bar.
    fn runny_fixture() -> (Schema, Vec<Row>, ColumnarChunks) {
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("s", DataType::Str),
            ("a", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..192)
            .map(|i| {
                vec![
                    if i % 23 == 5 {
                        Value::Null
                    } else {
                        Value::Int(i / 25)
                    },
                    if i % 31 == 7 {
                        Value::Null
                    } else {
                        Value::Str(if (i / 40) % 2 == 0 { "AAA" } else { "BBB" }.into())
                    },
                    Value::Int(i % 50),
                ]
            })
            .collect();
        let chunks = ColumnarChunks::build(&schema, &rows, 64);
        (schema, rows, chunks)
    }

    fn assert_block_matches_rows_on(
        schema: &Schema,
        rows: &[Row],
        chunks: &ColumnarChunks,
        pred: &Expr,
    ) {
        let compiled = CompiledExpr::compile(pred, schema);
        for chunk in chunks.chunks() {
            let sel = eval_filter_block(&compiled, chunk, rows, chunk.start, chunk.end).unwrap();
            for (j, rid) in (chunk.start..chunk.end).enumerate() {
                assert_eq!(
                    sel.get(j),
                    eval_predicate(pred, schema, &rows[rid]).unwrap(),
                    "row {rid} of {pred}"
                );
            }
        }
    }

    fn assert_block_matches_rows(pred: &Expr) {
        let (schema, rows, chunks) = fixture();
        assert_block_matches_rows_on(&schema, &rows, &chunks, pred);
    }

    #[test]
    fn comparison_kernels_match_interpreter() {
        for pred in [
            col("a").lt(lit(50)),
            col("a").ge(lit(120)),
            col("a").eq(lit(33)),
            col("s").eq(lit("v03")),
            col("s").gt(lit("v10")),
            col("f").le(lit(20.0)),
            lit(7).lt(col("a")),
        ] {
            assert_block_matches_rows(&pred);
        }
    }

    #[test]
    fn encoded_kernels_match_interpreter() {
        let (schema, rows, chunks) = runny_fixture();
        // The fixture must actually exercise the encoded layouts.
        assert!(chunks
            .chunks()
            .iter()
            .all(|c| c.column(0).data().encoding_name() == "rle-int"));
        assert!(chunks
            .chunks()
            .iter()
            .all(|c| c.column(1).data().encoding_name() == "rle-dict"));
        assert!(chunks
            .chunks()
            .iter()
            .all(|c| c.column(2).data().encoding_name() == "packed-int"));
        for pred in [
            col("g").lt(lit(4)),
            col("g").eq(lit(2)),
            col("g").ne(lit(0)),
            col("g").ge(lit(7)),
            // Cross-type literals: constant type-rank orderings.
            col("g").lt(lit("zz")),
            col("g").gt(Expr::Literal(Value::Bool(true))),
            col("s").eq(lit("BBB")),
            col("s").le(lit("AAA")),
            col("s").gt(lit(3)),
            col("a").lt(lit(25)),
            col("a").ge(lit(49)),
            col("a").lt(lit("zz")),
            Expr::IsNull(Box::new(col("g"))),
            Expr::IsNull(Box::new(col("s"))).not(),
            col("g").eq(lit(1)).and(col("a").lt(lit(30))),
            col("g").lt(lit(2)).or(col("s").eq(lit("BBB"))),
            col("g").lt(lit(5)).not(),
        ] {
            assert_block_matches_rows_on(&schema, &rows, &chunks, &pred);
        }
    }

    #[test]
    fn encoded_in_ranges_matches_interpreter() {
        use pbds_algebra::RangeLookup;
        let (schema, rows, chunks) = runny_fixture();
        for lookup in [RangeLookup::Linear, RangeLookup::BinarySearch] {
            for column in ["g", "s", "a"] {
                let ranges = if column == "s" {
                    vec![ValueRange {
                        lo: Some(Value::Str("AA".into())),
                        hi: Some(Value::Str("AZ".into())),
                    }]
                } else {
                    vec![
                        ValueRange {
                            lo: None,
                            hi: Some(Value::Int(2)),
                        },
                        ValueRange {
                            lo: Some(Value::Int(4)),
                            hi: Some(Value::Int(6)),
                        },
                    ]
                };
                let pred = Expr::InRanges {
                    column: column.into(),
                    ranges,
                    lookup,
                };
                assert_block_matches_rows_on(&schema, &rows, &chunks, &pred);
            }
        }
    }

    #[test]
    fn encoded_chunks_select_identically_to_plain_chunks() {
        let (schema, rows, encoded) = runny_fixture();
        let plain = ColumnarChunks::build_plain(&schema, &rows, 64);
        assert!(plain.chunks().iter().all(|c| c.encoded_columns() == 0));
        for pred in [
            col("g").le(lit(3)).and(col("a").ge(lit(10))),
            col("s").ne(lit("AAA")),
        ] {
            let compiled = CompiledExpr::compile(&pred, &schema);
            for (ec, pc) in encoded.chunks().iter().zip(plain.chunks()) {
                let a = eval_filter_block(&compiled, ec, &rows, ec.start, ec.end).unwrap();
                let b = eval_filter_block(&compiled, pc, &rows, pc.start, pc.end).unwrap();
                assert_eq!(a, b, "{pred}");
            }
        }
    }

    #[test]
    fn counted_eval_attributes_encoded_blocks_and_fallbacks() {
        let (schema, rows, chunks) = runny_fixture();
        let mut stats = ExecStats::default();
        // Kernel-only predicate: blocks counted, no fallbacks.
        let kernel = CompiledExpr::compile(&col("g").lt(lit(3)), &schema);
        for chunk in chunks.chunks() {
            eval_filter_block_counted(&kernel, chunk, &rows, chunk.start, chunk.end, &mut stats)
                .unwrap();
        }
        assert_eq!(stats.encoded_blocks as usize, chunks.chunks().len());
        assert_eq!(stats.encoded_kernel_fallbacks, 0);
        // Arithmetic conjunct has no kernel: one fallback per encoded block.
        let fallback = CompiledExpr::compile(&col("a").mul(lit(2)).lt(lit(40)), &schema);
        for chunk in chunks.chunks() {
            eval_filter_block_counted(&fallback, chunk, &rows, chunk.start, chunk.end, &mut stats)
                .unwrap();
        }
        assert_eq!(
            stats.encoded_kernel_fallbacks as usize,
            chunks.chunks().len()
        );
    }

    #[test]
    fn boolean_combinators_match_interpreter() {
        for pred in [
            col("a").ge(lit(10)).and(col("a").lt(lit(90))),
            col("s").eq(lit("v01")).or(col("a").gt(lit(180))),
            col("a").lt(lit(100)).not(),
            Expr::IsNull(Box::new(col("a"))),
            Expr::IsNull(Box::new(col("a"))).not(),
        ] {
            assert_block_matches_rows(&pred);
        }
    }

    #[test]
    fn null_cells_are_neither_true_nor_false_under_not() {
        // NOT (a < 50): NULL a must stay excluded (the interpreter returns
        // false for NOT NULL-comparison), while a >= 50 rows pass.
        assert_block_matches_rows(&col("a").lt(lit(50)).not());
    }

    #[test]
    fn fallback_conjuncts_only_see_surviving_rows() {
        // `a * 2 < 100` has no kernel; combined with a kernel conjunct the
        // result must still match the interpreter row for row.
        assert_block_matches_rows(&col("a").ge(lit(3)).and(col("a").mul(lit(2)).lt(lit(100))));
    }

    #[test]
    fn in_ranges_kernel_matches_interpreter() {
        use pbds_algebra::RangeLookup;
        for lookup in [RangeLookup::Linear, RangeLookup::BinarySearch] {
            let pred = Expr::InRanges {
                column: "a".into(),
                ranges: vec![
                    ValueRange {
                        lo: None,
                        hi: Some(Value::Int(20)),
                    },
                    ValueRange {
                        lo: Some(Value::Int(50)),
                        hi: Some(Value::Int(60)),
                    },
                    ValueRange {
                        lo: Some(Value::Int(150)),
                        hi: None,
                    },
                ],
                lookup,
            };
            assert_block_matches_rows(&pred);
        }
    }

    #[test]
    fn bitmap_primitives() {
        let mut b = SelBitmap::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(b.get(64));
        b.clear(64);
        assert!(!b.get(64));
        let ones = SelBitmap::ones(130);
        assert_eq!(ones.count(), 130);
        assert_eq!(ones.negated().count(), 0);
    }

    #[test]
    fn bitmap_range_primitives() {
        let mut b = SelBitmap::zeros(200);
        b.set_range(3, 3); // empty
        assert_eq!(b.count(), 0);
        b.set_range(5, 9); // within one word
        b.set_range(60, 135); // spans three words
        assert_eq!(b.count(), 4 + 75);
        for i in 0..200 {
            assert_eq!(b.get(i), (5..9).contains(&i) || (60..135).contains(&i));
        }
        assert_eq!(b.count_range(0, 200), b.count());
        assert_eq!(b.count_range(5, 9), 4);
        assert_eq!(b.count_range(6, 8), 2);
        assert_eq!(b.count_range(0, 5), 0);
        assert_eq!(b.count_range(64, 128), 64);
        assert_eq!(b.count_range(130, 140), 5);
        assert_eq!(b.count_range(140, 140), 0);
    }

    #[test]
    fn null_window_handles_unaligned_bases() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                vec![if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                }]
            })
            .collect();
        let chunks = ColumnarChunks::build(&schema, &rows, 200);
        let col = chunks.chunks()[0].column(0);
        for (base, n) in [(0, 200), (1, 63), (63, 70), (64, 64), (100, 37)] {
            let w = null_window(col, base, n).expect("column has nulls");
            assert_eq!(w.len(), n);
            for j in 0..n {
                assert_eq!(w.get(j), (base + j) % 7 == 0, "base {base} bit {j}");
            }
        }
    }
}
