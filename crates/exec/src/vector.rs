//! Vectorized predicate evaluation over columnar chunks.
//!
//! [`eval_filter_block`] evaluates a compiled predicate column-at-a-time over
//! one [`ColumnarChunk`] and returns a `u64`-word selection bitmap of the
//! qualifying rows. Sub-expressions with a typed kernel (comparisons against
//! literals, `AND`/`OR`/`NOT`, `IS NULL`, sketch range predicates) run as
//! tight loops over the typed column vectors; anything else (arithmetic,
//! `CASE`, `IN`-lists, unbound parameters, unknown columns) falls back to
//! row-at-a-time [`CompiledExpr::eval`] — applied only to rows that survived
//! the earlier conjuncts, which reproduces the interpreter's short-circuit
//! `AND` exactly (including *which* rows can raise errors).
//!
//! Truth is tracked as **two** bitmaps, `known-true` and `known-false`, with
//! NULL/unknown being neither — this is what lets `NOT` distinguish a
//! comparison that evaluated to `false` (negates to `true`) from one that
//! evaluated to `NULL` (negates to `false`), exactly like the interpreter.

use crate::compiled::{ColRef, CompiledExpr};
use crate::eval::ExecError;
use pbds_algebra::{BinOp, RangeLookup};
use pbds_storage::{ColumnData, ColumnVector, ColumnarChunk, Row, Value, ValueRange};
use std::cmp::Ordering;

/// A fixed-length selection bitmap over `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelBitmap {
    len: usize,
    words: Vec<u64>,
}

impl SelBitmap {
    /// All-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        SelBitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// All-one bitmap of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = SelBitmap {
            len,
            words: vec![!0u64; len.div_ceil(64)],
        };
        b.mask_tail();
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit can be set (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Word-wise intersection.
    pub fn and_assign(&mut self, other: &SelBitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Word-wise union.
    pub fn or_assign(&mut self, other: &SelBitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Word-wise complement (tail bits beyond `len` stay zero).
    pub fn negated(&self) -> SelBitmap {
        let mut out = SelBitmap {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Number of set bits (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the set bit positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut word = *w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

/// Evaluate `pred` over the rows `[lo, hi)` of the table (which must lie
/// inside `chunk`), returning the selection bitmap of qualifying rows (bit
/// `j` ↔ table row `lo + j`). `rows` is the table's row store, used by the
/// row-at-a-time fallback for non-vectorizable conjuncts.
pub fn eval_filter_block(
    pred: &CompiledExpr,
    chunk: &ColumnarChunk,
    rows: &[Row],
    lo: usize,
    hi: usize,
) -> Result<SelBitmap, ExecError> {
    debug_assert!(chunk.start <= lo && hi <= chunk.end);
    let n = hi - lo;
    let mut sel = SelBitmap::ones(n);
    let conjuncts: &[CompiledExpr] = match pred {
        CompiledExpr::And(es) => es,
        other => std::slice::from_ref(other),
    };
    for conjunct in conjuncts {
        match vec_truth(conjunct, chunk, lo, hi) {
            Some((truth, _)) => sel.and_assign(&truth),
            None => {
                // Fallback: evaluate row-at-a-time, but only on rows that
                // passed the previous conjuncts — the same (row, conjunct)
                // pairs the interpreter's short-circuit AND evaluates.
                let mut keep = SelBitmap::zeros(n);
                for j in sel.iter_ones() {
                    if conjunct.matches(&rows[lo + j])? {
                        keep.set(j);
                    }
                }
                sel = keep;
            }
        }
    }
    Ok(sel)
}

/// Try to evaluate `expr` with typed kernels over `[lo, hi)`; returns the
/// `(known-true, known-false)` bitmap pair, or `None` when the node has no
/// kernel (caller falls back to row-at-a-time evaluation).
fn vec_truth(
    expr: &CompiledExpr,
    chunk: &ColumnarChunk,
    lo: usize,
    hi: usize,
) -> Option<(SelBitmap, SelBitmap)> {
    let n = hi - lo;
    match expr {
        CompiledExpr::Literal(v) => Some(match v.as_bool() {
            Some(true) => (SelBitmap::ones(n), SelBitmap::zeros(n)),
            Some(false) => (SelBitmap::zeros(n), SelBitmap::ones(n)),
            None => (SelBitmap::zeros(n), SelBitmap::zeros(n)),
        }),
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            match (&**left, &**right) {
                (CompiledExpr::Column(ColRef::Idx(c)), CompiledExpr::Literal(v)) => {
                    Some(cmp_kernel(chunk, *c, lo, hi, *op, v))
                }
                (CompiledExpr::Literal(v), CompiledExpr::Column(ColRef::Idx(c))) => {
                    Some(cmp_kernel(chunk, *c, lo, hi, flip_cmp(*op), v))
                }
                _ => None,
            }
        }
        CompiledExpr::And(es) => {
            let mut truth = SelBitmap::ones(n);
            for e in es {
                let (t, _) = vec_truth(e, chunk, lo, hi)?;
                truth.and_assign(&t);
            }
            // AND always yields a definite boolean (NULL collapses to false).
            let falsity = truth.negated();
            Some((truth, falsity))
        }
        CompiledExpr::Or(es) => {
            let mut truth = SelBitmap::zeros(n);
            for e in es {
                let (t, _) = vec_truth(e, chunk, lo, hi)?;
                truth.or_assign(&t);
            }
            let falsity = truth.negated();
            Some((truth, falsity))
        }
        CompiledExpr::Not(e) => {
            // NOT x is true exactly when x is known-false; NULL/unknown
            // negates to false (the interpreter's `as_bool` collapse).
            let (_, f) = vec_truth(e, chunk, lo, hi)?;
            let falsity = f.negated();
            Some((f, falsity))
        }
        CompiledExpr::IsNull(e) => match &**e {
            CompiledExpr::Column(ColRef::Idx(c)) => {
                let col = chunk.column(*c);
                let mut truth = SelBitmap::zeros(n);
                if col.has_nulls() {
                    for j in 0..n {
                        if col.is_null(lo - chunk.start + j) {
                            truth.set(j);
                        }
                    }
                }
                let falsity = truth.negated();
                Some((truth, falsity))
            }
            _ => None,
        },
        CompiledExpr::InRanges {
            column: ColRef::Idx(c),
            ranges,
            lookup,
        } => Some(ranges_kernel(chunk, *c, lo, hi, ranges, *lookup)),
        _ => None,
    }
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[inline]
fn cmp_holds(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("comparison operator"),
    }
}

/// `Value::cmp` semantics for a string cell against any literal without
/// materializing a `Value::Str`: same-type is lexicographic, cross-type
/// follows the fixed type ranks (strings rank above every other type).
#[inline]
fn cmp_str_value(s: &str, v: &Value) -> Ordering {
    match v {
        Value::Str(t) => s.cmp(t.as_str()),
        _ => Ordering::Greater,
    }
}

/// Compare the non-null cell at chunk-relative index `i` against `v`, with
/// exactly [`Value::cmp`]'s total-order semantics.
#[inline]
fn cmp_cell(col: &ColumnVector, i: usize, v: &Value) -> Ordering {
    match col.data() {
        ColumnData::Int(xs) => Value::Int(xs[i]).cmp(v),
        ColumnData::Float(xs) => Value::Float(xs[i]).cmp(v),
        ColumnData::Bool(xs) => Value::Bool(xs[i]).cmp(v),
        ColumnData::Dict { dict, codes } => cmp_str_value(&dict[codes[i] as usize], v),
        ColumnData::Mixed(xs) => xs[i].cmp(v),
    }
}

/// `column <op> literal` over `[lo, hi)`. NULL cells (and a NULL literal) are
/// neither true nor false, matching the interpreter's three-valued compare.
fn cmp_kernel(
    chunk: &ColumnarChunk,
    c: usize,
    lo: usize,
    hi: usize,
    op: BinOp,
    lit: &Value,
) -> (SelBitmap, SelBitmap) {
    let n = hi - lo;
    let mut truth = SelBitmap::zeros(n);
    let mut falsity = SelBitmap::zeros(n);
    if lit.is_null() {
        return (truth, falsity);
    }
    let col = chunk.column(c);
    let base = lo - chunk.start;
    let mut record = |j: usize, holds: bool| {
        if holds {
            truth.set(j);
        } else {
            falsity.set(j);
        }
    };
    match (col.data(), lit) {
        // Hot path: pure i64 comparison, no `Value` in the loop.
        (ColumnData::Int(xs), Value::Int(l)) => {
            for j in 0..n {
                if !col.is_null(base + j) {
                    record(j, cmp_holds(op, xs[base + j].cmp(l)));
                }
            }
        }
        // Dictionary columns against a string literal: one binary search in
        // the sorted dict, then pure `u32` code comparisons.
        (ColumnData::Dict { dict, codes }, Value::Str(s)) => {
            let lb = dict.partition_point(|d| d.as_str() < s.as_str()) as u32;
            let exact = dict.get(lb as usize).is_some_and(|d| d == s);
            for j in 0..n {
                if col.is_null(base + j) {
                    continue;
                }
                let code = codes[base + j];
                let holds = match op {
                    BinOp::Eq => exact && code == lb,
                    BinOp::Ne => !(exact && code == lb),
                    BinOp::Lt => code < lb,
                    BinOp::Le => code < lb + exact as u32,
                    BinOp::Gt => code >= lb + exact as u32,
                    BinOp::Ge => code >= lb,
                    _ => unreachable!("comparison operator"),
                };
                record(j, holds);
            }
        }
        _ => {
            for j in 0..n {
                if !col.is_null(base + j) {
                    record(j, cmp_holds(op, cmp_cell(col, base + j, lit)));
                }
            }
        }
    }
    (truth, falsity)
}

/// Sketch range membership over `[lo, hi)`; NULL cells are known-false, like
/// the interpreter's `InRanges`.
fn ranges_kernel(
    chunk: &ColumnarChunk,
    c: usize,
    lo: usize,
    hi: usize,
    ranges: &[ValueRange],
    lookup: RangeLookup,
) -> (SelBitmap, SelBitmap) {
    let n = hi - lo;
    let mut truth = SelBitmap::zeros(n);
    let mut falsity = SelBitmap::zeros(n);
    let col = chunk.column(c);
    let base = lo - chunk.start;
    // `contains` with `cmp_cell`: v in (lo, hi] ⇔ !(v <= lo) && !(v > hi).
    let contains = |i: usize, r: &ValueRange| -> bool {
        if let Some(rlo) = &r.lo {
            if cmp_cell(col, i, rlo) != Ordering::Greater {
                return false;
            }
        }
        if let Some(rhi) = &r.hi {
            if cmp_cell(col, i, rhi) == Ordering::Greater {
                return false;
            }
        }
        true
    };
    for j in 0..n {
        let i = base + j;
        if col.is_null(i) {
            falsity.set(j);
            continue;
        }
        let found = match lookup {
            RangeLookup::Linear => ranges.iter().any(|r| contains(i, r)),
            RangeLookup::BinarySearch => {
                // Identical to the interpreter: first range whose upper bound
                // is >= v, then a containment test.
                let pos = ranges.partition_point(|r| match &r.hi {
                    Some(rhi) => cmp_cell(col, i, rhi) == Ordering::Greater,
                    None => false,
                });
                ranges.get(pos).map(|r| contains(i, r)).unwrap_or(false)
            }
        };
        if found {
            truth.set(j);
        } else {
            falsity.set(j);
        }
    }
    (truth, falsity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_predicate;
    use pbds_algebra::{col, lit, Expr};
    use pbds_storage::{ColumnarChunks, DataType, Schema};

    fn fixture() -> (Schema, Vec<Row>, ColumnarChunks) {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("s", DataType::Str),
            ("f", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                vec![
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Str(format!("v{:02}", i % 17)),
                    Value::Float(i as f64 / 3.0),
                ]
            })
            .collect();
        let chunks = ColumnarChunks::build(&schema, &rows, 64);
        (schema, rows, chunks)
    }

    fn assert_block_matches_rows(pred: &Expr) {
        let (schema, rows, chunks) = fixture();
        let compiled = CompiledExpr::compile(pred, &schema);
        for chunk in chunks.chunks() {
            let sel = eval_filter_block(&compiled, chunk, &rows, chunk.start, chunk.end).unwrap();
            for (j, rid) in (chunk.start..chunk.end).enumerate() {
                assert_eq!(
                    sel.get(j),
                    eval_predicate(pred, &schema, &rows[rid]).unwrap(),
                    "row {rid} of {pred}"
                );
            }
        }
    }

    #[test]
    fn comparison_kernels_match_interpreter() {
        for pred in [
            col("a").lt(lit(50)),
            col("a").ge(lit(120)),
            col("a").eq(lit(33)),
            col("s").eq(lit("v03")),
            col("s").gt(lit("v10")),
            col("f").le(lit(20.0)),
            lit(7).lt(col("a")),
        ] {
            assert_block_matches_rows(&pred);
        }
    }

    #[test]
    fn boolean_combinators_match_interpreter() {
        for pred in [
            col("a").ge(lit(10)).and(col("a").lt(lit(90))),
            col("s").eq(lit("v01")).or(col("a").gt(lit(180))),
            col("a").lt(lit(100)).not(),
            Expr::IsNull(Box::new(col("a"))),
            Expr::IsNull(Box::new(col("a"))).not(),
        ] {
            assert_block_matches_rows(&pred);
        }
    }

    #[test]
    fn null_cells_are_neither_true_nor_false_under_not() {
        // NOT (a < 50): NULL a must stay excluded (the interpreter returns
        // false for NOT NULL-comparison), while a >= 50 rows pass.
        assert_block_matches_rows(&col("a").lt(lit(50)).not());
    }

    #[test]
    fn fallback_conjuncts_only_see_surviving_rows() {
        // `a * 2 < 100` has no kernel; combined with a kernel conjunct the
        // result must still match the interpreter row for row.
        assert_block_matches_rows(&col("a").ge(lit(3)).and(col("a").mul(lit(2)).lt(lit(100))));
    }

    #[test]
    fn in_ranges_kernel_matches_interpreter() {
        use pbds_algebra::RangeLookup;
        for lookup in [RangeLookup::Linear, RangeLookup::BinarySearch] {
            let pred = Expr::InRanges {
                column: "a".into(),
                ranges: vec![
                    ValueRange {
                        lo: None,
                        hi: Some(Value::Int(20)),
                    },
                    ValueRange {
                        lo: Some(Value::Int(50)),
                        hi: Some(Value::Int(60)),
                    },
                    ValueRange {
                        lo: Some(Value::Int(150)),
                        hi: None,
                    },
                ],
                lookup,
            };
            assert_block_matches_rows(&pred);
        }
    }

    #[test]
    fn bitmap_primitives() {
        let mut b = SelBitmap::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(b.get(64));
        b.clear(64);
        assert!(!b.get(64));
        let ones = SelBitmap::ones(130);
        assert_eq!(ones.count(), 130);
        assert_eq!(ones.negated().count(), 0);
    }
}
