//! Engine profiles.
//!
//! The paper evaluates PBDS on two very different hosts: Postgres (a
//! disk-based row store with B-tree indexes and BRIN zone maps) and MonetDB
//! (an operator-at-a-time columnar main-memory system without indexes,
//! Sec. 9.3). We model that axis with an [`EngineProfile`] that controls
//! whether scans may exploit ordered indexes and zone maps.

/// Controls which physical-design artifacts scans may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineProfile {
    /// Postgres-like: scans use ordered indexes and zone maps to skip data
    /// that falls outside the predicate's ranges.
    #[default]
    Indexed,
    /// MonetDB-like: every scan reads all rows; selections still reduce the
    /// data flowing into joins and aggregates, but no blocks are skipped.
    ColumnarScan,
}

impl EngineProfile {
    /// True when index / zone-map skipping is allowed.
    pub fn allows_skipping(&self) -> bool {
        matches!(self, EngineProfile::Indexed)
    }

    /// Short human-readable label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            EngineProfile::Indexed => "indexed (Postgres-like)",
            EngineProfile::ColumnarScan => "columnar scan (MonetDB-like)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_flags() {
        assert!(EngineProfile::Indexed.allows_skipping());
        assert!(!EngineProfile::ColumnarScan.allows_skipping());
        assert_ne!(
            EngineProfile::Indexed.label(),
            EngineProfile::ColumnarScan.label()
        );
    }
}
