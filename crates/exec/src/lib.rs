//! # pbds-exec
//!
//! The execution engine for the PBDS reproduction, built around a single
//! physical operator pipeline ([`physical`]): logical plans are lowered to
//! physical operators with explicit access paths (ordered-index range scans,
//! zone-map block skipping or sequential scans), then executed in fixed-size
//! row batches. The same pipeline serves plain execution ([`Engine`], tags
//! disabled via [`NoTag`]) and provenance capture (`pbds-provenance` plugs in
//! [`TagPolicy`] implementations whose per-row tags are sketch annotations or
//! lineage tuple sets).
//!
//! Two [`EngineProfile`]s substitute for the paper's two evaluation hosts:
//! `Indexed` mirrors a disk-based system with B-tree indexes and BRIN zone
//! maps (Postgres), `ColumnarScan` mirrors a scan-only main-memory column
//! store (MonetDB).

#![warn(missing_docs)]

pub mod compiled;
pub mod engine;
pub mod eval;
pub mod physical;
pub mod profile;
pub mod scan;
pub mod stats;
pub mod vector;

pub use compiled::{ColRef, CompiledExpr};
pub use engine::{AnalyzedQuery, Engine, QueryOutput};
pub use eval::{eval_expr, eval_predicate, ExecError};
pub use physical::{
    execute_logical, execute_logical_parallel, execute_logical_parallel_with, execute_logical_with,
    execute_physical, execute_physical_analyzed, execute_physical_parallel,
    execute_physical_parallel_with, execute_physical_with, lower, lower_scan, Batch, ExecOptions,
    NoTag, OpMetrics, PhysOp, PhysicalPlan, PlanMetrics, TagPolicy, BATCH_SIZE,
    PARALLEL_SCAN_THRESHOLD,
};
pub use profile::EngineProfile;
pub use scan::{
    estimate_scan_selectivity, extract_skip_ranges, scan_prefers_vectorized, scan_table,
    ColumnRanges, VECTORIZED_SELECTIVITY_CUTOFF,
};
pub use stats::ExecStats;
pub use vector::{eval_filter_block, eval_filter_block_counted, SelBitmap};
