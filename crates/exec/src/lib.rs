//! # pbds-exec
//!
//! The execution engine for the PBDS reproduction: a materializing evaluator
//! over the bag relational algebra with access-path selection for table scans
//! (ordered-index range scans, zone-map block skipping or full scans) and
//! per-query execution statistics.
//!
//! Two [`EngineProfile`]s substitute for the paper's two evaluation hosts:
//! `Indexed` mirrors a disk-based system with B-tree indexes and BRIN zone
//! maps (Postgres), `ColumnarScan` mirrors a scan-only main-memory column
//! store (MonetDB).

#![warn(missing_docs)]

pub mod engine;
pub mod eval;
pub mod profile;
pub mod scan;
pub mod stats;

pub use engine::{Engine, QueryOutput};
pub use eval::{eval_expr, eval_predicate, ExecError};
pub use profile::EngineProfile;
pub use scan::{extract_skip_ranges, scan_table, ColumnRanges};
pub use stats::ExecStats;
