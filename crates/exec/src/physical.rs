//! Physical plans and the batched operator pipeline.
//!
//! This is the single execution layer shared by plain query execution,
//! provenance-sketch capture and lineage capture. A [`LogicalPlan`] is
//! *lowered* into a [`PhysicalPlan`] — an explicit operator tree where access
//! paths have been chosen (the selection-pushdown-into-scan rewrite that used
//! to live inside `Engine::exec` is now a visible lowering step producing
//! [`PhysOp::IndexRangeScan`] / [`PhysOp::ZoneMapScan`] nodes) — and then
//! executed by pull-based operators that process rows in fixed-size
//! [`Batch`]es.
//!
//! Every batch carries a parallel *tag* vector. What a tag is, how scans seed
//! it and how operators combine tags when rows merge is decided by a
//! [`TagPolicy`]:
//!
//! * [`NoTag`] — plain execution; tags are `()` and compile away;
//! * `pbds-provenance`'s sketch policy — tags are fragment-annotation
//!   vectors, turning the same pipeline into the paper's instrumented
//!   capture run (Sec. 7, rules r0–r7);
//! * `pbds-provenance`'s lineage policy — tags are base-tuple sets, giving
//!   the ground-truth Lineage semantics.
//!
//! The merge points are exactly the paper's capture rules: scans seed
//! (r0), selection/projection/top-k keep (r1/r2/r5), aggregation merges group
//! members with optional min/max narrowing (r3), join and cross product merge
//! both sides (r4), union keeps (r6). The final fold over the result tags
//! (r7) is done by the caller.

use crate::compiled::CompiledExpr;
use crate::eval::{eval_predicate, ExecError};
use crate::profile::EngineProfile;
use crate::scan::{
    estimate_scan_selectivity, extract_skip_ranges, scan_prefers_vectorized, InclusiveRange,
};
use crate::stats::ExecStats;
use crate::vector::{eval_filter_block_counted, sel_without_nulls, SelBitmap};
use pbds_algebra::{infer_type, AggExpr, AggFunc, Expr, LogicalPlan, SortKey};
use pbds_storage::{
    Column, ColumnData, ColumnVector, DataType, Database, Relation, Row, Schema, Table, Value,
};
use pbds_telemetry::clock;
use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::time::Duration;

/// Execution-time switches for the physical pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Evaluate pushed-down scan filters over the table's columnar chunk
    /// projection with vectorized kernels (the fast path). When `false`,
    /// scans use the row-at-a-time expression interpreter — the oracle the
    /// vectorized path is proven byte-identical against
    /// (`tests/physical_equivalence.rs`) and the baseline of the
    /// `fig_scan_micro` benchmark. `false` is a hard override: the adaptive
    /// decision below never upgrades an oracle run to the vectorized path.
    pub vectorized: bool,
    /// Decide the scan path per scan instead of statically: a scan whose
    /// predicted selectivity (observed feedback first, then a table-stats
    /// estimate — see [`estimate_scan_selectivity`]) says nearly every row
    /// survives is lowered to the row loop with a pre-bound filter, because
    /// the bitmap pass would materialize everything anyway. Only consulted
    /// when `vectorized` is `true`; the scan→aggregate pushdown, which never
    /// materializes rows, bypasses it.
    pub adaptive: bool,
    /// Observed selectivity of a previous execution of the same workload
    /// ([`ExecStats::observed_scan_selectivity`]); when set, it overrides the
    /// static table-stats estimate in the adaptive decision.
    pub observed_selectivity: Option<f64>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            vectorized: true,
            adaptive: true,
            observed_selectivity: None,
        }
    }
}

/// Number of rows per pipeline batch.
pub const BATCH_SIZE: usize = 1024;

/// A batch of rows with a parallel per-row tag vector.
#[derive(Debug, Clone)]
pub struct Batch<T> {
    /// The rows.
    pub rows: Vec<Row>,
    /// One tag per row, aligned with `rows`.
    pub tags: Vec<T>,
}

impl<T> Batch<T> {
    /// An empty batch with room for `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        Batch {
            rows: Vec::with_capacity(n),
            tags: Vec::with_capacity(n),
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row with its tag.
    pub fn push(&mut self, row: Row, tag: T) {
        self.rows.push(row);
        self.tags.push(tag);
    }
}

/// How per-row tags are created and combined while the pipeline runs.
///
/// Plain execution uses [`NoTag`]; provenance capture supplies policies whose
/// tags are sketch annotations or lineage tuple sets.
pub trait TagPolicy {
    /// The per-row tag type.
    type Tag: Clone;

    /// Tag for a base-table row entering the pipeline (capture rule r0).
    fn seed_tag(&self, table: &str, schema: &Schema, row: &Row, row_id: u32) -> Self::Tag;

    /// The neutral tag (rows created out of thin air, e.g. the empty-input
    /// global aggregate).
    fn empty_tag(&self) -> Self::Tag;

    /// Merge `from` into `into` when two rows combine (rules r3/r4).
    fn merge_tags(&self, into: &mut Self::Tag, from: &Self::Tag);

    /// Apply the min/max narrowing of rule r3: when a group computes a single
    /// `min`/`max`, only the extremal row's tag represents the group.
    fn minmax_narrowing(&self) -> bool {
        false
    }

    /// True when tags carry no information (seed/merge are no-ops and every
    /// tag equals [`TagPolicy::empty_tag`]). Lets the scan→aggregate pushdown
    /// skip visiting individual rows: a path that never observes a row can
    /// still produce the correct tags, because they are all the empty tag.
    fn tags_are_trivial(&self) -> bool {
        false
    }
}

/// The trivial policy for plain execution: tags are `()` and every hook is a
/// no-op the optimizer removes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTag;

impl TagPolicy for NoTag {
    type Tag = ();
    fn seed_tag(&self, _table: &str, _schema: &Schema, _row: &Row, _row_id: u32) {}
    fn empty_tag(&self) {}
    fn merge_tags(&self, _into: &mut (), _from: &()) {}
    fn tags_are_trivial(&self) -> bool {
        true
    }
}

/// A physical plan: an operator tree with its output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Output schema of the root operator.
    pub schema: Schema,
    /// The root operator.
    pub op: PhysOp,
}

/// Physical operators produced by [`lower`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Full scan of a base table, with an optional residual filter.
    SeqScan {
        /// Table name.
        table: String,
        /// Residual predicate re-checked per row.
        filter: Option<Expr>,
    },
    /// Ordered-index range scan: only row ids matching `ranges` are fetched.
    IndexRangeScan {
        /// Table name.
        table: String,
        /// Indexed column driving the scan.
        column: String,
        /// Union of inclusive ranges probed in the index.
        ranges: Vec<InclusiveRange>,
        /// Full predicate re-checked per fetched row.
        filter: Option<Expr>,
    },
    /// Zone-map skip scan: blocks whose min/max cannot match are skipped.
    ZoneMapScan {
        /// Table name.
        table: String,
        /// Column whose per-block min/max drives the skipping.
        column: String,
        /// Union of inclusive ranges tested against block zones.
        ranges: Vec<InclusiveRange>,
        /// Full predicate re-checked per fetched row.
        filter: Option<Expr>,
    },
    /// Filter (σ) above a non-scan input.
    Filter {
        /// Predicate.
        predicate: Expr,
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Generalized projection (Π).
    Project {
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Hash aggregation (γ) with group-by.
    HashAggregate {
        /// Group-by columns.
        group_by: Vec<String>,
        /// Aggregation expressions.
        aggregates: Vec<AggExpr>,
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Hash equi-join (⋈); the right input is the build side.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Join column from the left input.
        left_col: String,
        /// Join column from the right input.
        right_col: String,
    },
    /// Nested-loop cross product (×); the right input is materialized.
    NestedLoopCross {
        /// Streamed side.
        left: Box<PhysicalPlan>,
        /// Materialized side.
        right: Box<PhysicalPlan>,
    },
    /// Full sort. `topk_limit` marks sorts lowered from a top-k operator so
    /// the executor can record the paper's runtime safety counter.
    Sort {
        /// Sort keys.
        keys: Vec<SortKey>,
        /// `Some(k)` when this sort feeds a `Limit` lowered from top-k.
        topk_limit: Option<usize>,
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Keep the first `limit` rows.
    Limit {
        /// Row budget.
        limit: usize,
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Duplicate elimination (δ); duplicate rows merge their tags.
    Distinct {
        /// Input operator.
        input: Box<PhysicalPlan>,
    },
    /// Bag union (∪): left rows then right rows.
    Append {
        /// First input.
        left: Box<PhysicalPlan>,
        /// Second input.
        right: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Direct children of the root operator.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysOp::SeqScan { .. } | PhysOp::IndexRangeScan { .. } | PhysOp::ZoneMapScan { .. } => {
                vec![]
            }
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::HashAggregate { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::Limit { input, .. }
            | PhysOp::Distinct { input } => vec![input],
            PhysOp::HashJoin { left, right, .. }
            | PhysOp::NestedLoopCross { left, right }
            | PhysOp::Append { left, right } => vec![left, right],
        }
    }

    /// Human-readable indented operator tree (an `EXPLAIN` of sorts).
    ///
    /// Equivalent to the [`std::fmt::Display`] implementation; kept as a
    /// named method for discoverability.
    pub fn display_tree(&self) -> String {
        self.to_string()
    }

    /// One-line label of the root operator (shared by the `EXPLAIN` tree and
    /// the `EXPLAIN ANALYZE` rendering).
    fn op_label(&self) -> String {
        match &self.op {
            PhysOp::SeqScan { table, filter } => match filter {
                Some(f) => format!("SeqScan[{table}, filter={f}]"),
                None => format!("SeqScan[{table}]"),
            },
            PhysOp::IndexRangeScan {
                table,
                column,
                ranges,
                ..
            } => format!(
                "IndexRangeScan[{table}.{column}, {} range(s)]",
                ranges.len()
            ),
            PhysOp::ZoneMapScan {
                table,
                column,
                ranges,
                ..
            } => format!("ZoneMapScan[{table}.{column}, {} range(s)]", ranges.len()),
            PhysOp::Filter { predicate, .. } => format!("Filter[{predicate}]"),
            PhysOp::Project { exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("Project[{}]", cols.join(", "))
            }
            PhysOp::HashAggregate {
                group_by,
                aggregates,
                ..
            } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}({}) AS {}", a.func, a.input, a.alias))
                    .collect();
                format!(
                    "HashAggregate[group_by=({}), {}]",
                    group_by.join(", "),
                    aggs.join(", ")
                )
            }
            PhysOp::HashJoin {
                left_col,
                right_col,
                ..
            } => format!("HashJoin[{left_col} = {right_col}]"),
            PhysOp::NestedLoopCross { .. } => "NestedLoopCross".to_string(),
            PhysOp::Sort {
                keys, topk_limit, ..
            } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.column, if k.descending { " DESC" } else { "" }))
                    .collect();
                match topk_limit {
                    Some(k) => format!("Sort[({}), top-k={k}]", ks.join(", ")),
                    None => format!("Sort[({})]", ks.join(", ")),
                }
            }
            PhysOp::Limit { limit, .. } => format!("Limit[{limit}]"),
            PhysOp::Distinct { .. } => "Distinct".to_string(),
            PhysOp::Append { .. } => "Append".to_string(),
        }
    }

    fn fmt_tree(&self, out: &mut String, indent: usize) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(&self.op_label());
        out.push('\n');
        for c in self.children() {
            c.fmt_tree(out, indent + 1);
        }
    }

    /// Number of operators in this plan (the length of the pre-order id
    /// space used by [`PlanMetrics`]).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Render the `EXPLAIN ANALYZE` tree: the operator labels of the plain
    /// `EXPLAIN` annotated per operator with the runtime metrics collected by
    /// [`execute_physical_analyzed`]. `metrics` must come from executing
    /// *this* plan (ids are pre-order positions).
    pub fn render_analyze(&self, metrics: &PlanMetrics) -> String {
        let mut out = String::new();
        let mut id = 0usize;
        self.fmt_analyze(&mut out, 0, metrics, &mut id);
        out
    }

    fn fmt_analyze(&self, out: &mut String, indent: usize, metrics: &PlanMetrics, id: &mut usize) {
        let m = metrics.ops.get(*id).cloned().unwrap_or_default();
        *id += 1;
        out.push_str(&"  ".repeat(indent));
        out.push_str(&self.op_label());
        if m.fused {
            out.push_str("  (fused into parent by scan→aggregate pushdown)");
        } else if !m.ran {
            out.push_str("  (never executed)");
        } else {
            out.push_str(&format!(
                "  (rows={}, batches={}, elapsed={:.3}ms",
                m.rows_out,
                m.batches,
                m.elapsed.as_secs_f64() * 1e3,
            ));
            if m.rows_scanned > 0 {
                out.push_str(&format!(", scanned={}", m.rows_scanned));
            }
            if m.encoded_blocks > 0 {
                out.push_str(&format!(", encoded_blocks={}", m.encoded_blocks));
            }
            out.push(')');
        }
        out.push('\n');
        for c in self.children() {
            c.fmt_analyze(out, indent + 1, metrics, id);
        }
    }
}

/// Runtime metrics of one operator collected by `EXPLAIN ANALYZE`
/// ([`execute_physical_analyzed`]). `elapsed`, `rows_scanned` and
/// `encoded_blocks` are **inclusive** of the operator's subtree — the pipeline
/// is pull-based, so time spent producing a child batch is part of the
/// parent's `next_batch` call. Self time is the parent's value minus its
/// children's.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpMetrics {
    /// Rows this operator emitted to its parent.
    pub rows_out: u64,
    /// Batches this operator emitted.
    pub batches: u64,
    /// Wall-clock time inside this operator's subtree.
    pub elapsed: Duration,
    /// Base-table rows scanned within this subtree.
    pub rows_scanned: u64,
    /// Encoded (compressed) columnar blocks evaluated within this subtree.
    pub encoded_blocks: u64,
    /// This operator was fused into an ancestor by the scan→aggregate
    /// pushdown; its work is attributed to that ancestor.
    pub fused: bool,
    /// At least one `next_batch` call reached this operator.
    pub ran: bool,
}

/// Per-operator metrics for a whole plan, indexed by pre-order position
/// (root = 0, then each child subtree in [`PhysicalPlan::children`] order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanMetrics {
    /// One entry per operator in pre-order.
    pub ops: Vec<OpMetrics>,
}

/// Shared mutable cell the analyze wrappers record into. Plain `RefCell` is
/// sound here because operator trees are single-threaded by construction
/// (`BoxOp` is not `Send`); the morsel-parallel path never wraps.
type AnalyzeShared = RefCell<Vec<OpMetrics>>;

/// Instrumentation wrapper around one operator: times every `next_batch`
/// call, counts emitted rows/batches, and attributes `ExecStats` deltas
/// (rows scanned, encoded blocks) to its pre-order id.
struct AnalyzeOp<'a, P: TagPolicy> {
    inner: BoxOp<'a, P>,
    metrics: &'a AnalyzeShared,
    id: usize,
}

impl<P: TagPolicy> BatchOp<P> for AnalyzeOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        let scanned_before = stats.rows_scanned;
        let encoded_before = stats.encoded_blocks;
        let sw = clock::Stopwatch::start();
        let out = self.inner.next_batch(stats);
        let elapsed = sw.elapsed();
        let mut all = self.metrics.borrow_mut();
        let m = &mut all[self.id];
        m.ran = true;
        m.elapsed += elapsed;
        m.rows_scanned += stats.rows_scanned.saturating_sub(scanned_before);
        m.encoded_blocks += stats.encoded_blocks.saturating_sub(encoded_before);
        if let Ok(Some(batch)) = &out {
            m.batches += 1;
            m.rows_out += batch.rows.len() as u64;
        }
        out
    }
}

/// `EXPLAIN`-style rendering: one operator per line, children indented two
/// spaces below their parent, ending with a trailing newline.
///
/// ```text
/// Limit[3]
///   Sort[(total DESC), top-k=3]
///     HashAggregate[group_by=(grp), Sum(amount) AS total]
///       IndexRangeScan[t.grp, 1 range(s)]
/// ```
impl std::fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.fmt_tree(&mut s, 0);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Lower a logical plan to a physical plan, choosing access paths.
///
/// Chains of selections are collapsed into one conjunction; when the chain
/// bottoms out at a table scan the predicate is pushed into the scan and the
/// best access path the `profile` allows is chosen: ordered index, then zone
/// map, then sequential scan. The full predicate is always re-checked per
/// row, so access-path choice affects performance and statistics only.
pub fn lower(
    db: &Database,
    plan: &LogicalPlan,
    profile: EngineProfile,
) -> Result<PhysicalPlan, ExecError> {
    match plan {
        LogicalPlan::TableScan { table } => Ok(lower_scan(db.table(table)?, None, profile)),
        LogicalPlan::Selection { .. } => {
            // Collect the conjunction of predicates down a chain of
            // selections (the rewrite `Engine::exec` used to do implicitly).
            let mut predicates: Vec<Expr> = Vec::new();
            let mut node = plan;
            while let LogicalPlan::Selection { predicate, input } = node {
                predicates.push(predicate.clone());
                node = input;
            }
            let combined = if predicates.len() == 1 {
                predicates.pop().expect("one predicate")
            } else {
                Expr::And(predicates)
            };
            if let LogicalPlan::TableScan { table } = node {
                return Ok(lower_scan(db.table(table)?, Some(combined), profile));
            }
            let input = lower(db, node, profile)?;
            Ok(PhysicalPlan {
                schema: input.schema.clone(),
                op: PhysOp::Filter {
                    predicate: combined,
                    input: Box::new(input),
                },
            })
        }
        LogicalPlan::Projection { exprs, input } => {
            let input = lower(db, input, profile)?;
            let schema = Schema::new(
                exprs
                    .iter()
                    .map(|(e, name)| Column::new(name.clone(), infer_type(e, &input.schema)))
                    .collect(),
            );
            Ok(PhysicalPlan {
                schema,
                op: PhysOp::Project {
                    exprs: exprs.clone(),
                    input: Box::new(input),
                },
            })
        }
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => {
            let input = lower(db, input, profile)?;
            let mut cols = Vec::new();
            for g in group_by {
                // Unlike LogicalPlan::schema (which tolerates unknowns for
                // display purposes), lowering validates the plan: a physical
                // plan returned by Engine::plan must also be executable.
                let column = input
                    .schema
                    .column(g)
                    .ok_or_else(|| ExecError::UnknownColumn(g.clone()))?;
                cols.push(Column::new(g.clone(), column.dtype));
            }
            for a in aggregates {
                let dtype = match a.func {
                    AggFunc::Count => DataType::Int,
                    AggFunc::Avg => DataType::Float,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                        infer_type(&a.input, &input.schema)
                    }
                };
                cols.push(Column::new(a.alias.clone(), dtype));
            }
            Ok(PhysicalPlan {
                schema: Schema::new(cols),
                op: PhysOp::HashAggregate {
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                    input: Box::new(input),
                },
            })
        }
        LogicalPlan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let left = lower(db, left, profile)?;
            let right = lower(db, right, profile)?;
            for (schema, column) in [(&left.schema, left_col), (&right.schema, right_col)] {
                if schema.index_of(column).is_none() {
                    return Err(ExecError::UnknownColumn(column.clone()));
                }
            }
            Ok(PhysicalPlan {
                schema: left.schema.concat(&right.schema),
                op: PhysOp::HashJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    left_col: left_col.clone(),
                    right_col: right_col.clone(),
                },
            })
        }
        LogicalPlan::CrossProduct { left, right } => {
            let left = lower(db, left, profile)?;
            let right = lower(db, right, profile)?;
            Ok(PhysicalPlan {
                schema: left.schema.concat(&right.schema),
                op: PhysOp::NestedLoopCross {
                    left: Box::new(left),
                    right: Box::new(right),
                },
            })
        }
        LogicalPlan::Distinct { input } => {
            let input = lower(db, input, profile)?;
            Ok(PhysicalPlan {
                schema: input.schema.clone(),
                op: PhysOp::Distinct {
                    input: Box::new(input),
                },
            })
        }
        LogicalPlan::TopK {
            order_by,
            limit,
            input,
        } => {
            let input = lower(db, input, profile)?;
            for key in order_by {
                if input.schema.index_of(&key.column).is_none() {
                    return Err(ExecError::UnknownColumn(key.column.clone()));
                }
            }
            let schema = input.schema.clone();
            let sort = PhysicalPlan {
                schema: schema.clone(),
                op: PhysOp::Sort {
                    keys: order_by.clone(),
                    topk_limit: Some(*limit),
                    input: Box::new(input),
                },
            };
            Ok(PhysicalPlan {
                schema,
                op: PhysOp::Limit {
                    limit: *limit,
                    input: Box::new(sort),
                },
            })
        }
        LogicalPlan::Union { left, right } => {
            let left = lower(db, left, profile)?;
            let right = lower(db, right, profile)?;
            Ok(PhysicalPlan {
                schema: left.schema.clone(),
                op: PhysOp::Append {
                    left: Box::new(left),
                    right: Box::new(right),
                },
            })
        }
    }
}

/// Lower one base-table access with an optional pushed-down predicate.
pub fn lower_scan(table: &Table, predicate: Option<Expr>, profile: EngineProfile) -> PhysicalPlan {
    let schema = table.schema().clone();
    let name = table.name().to_string();
    let op = match predicate {
        None => PhysOp::SeqScan {
            table: name,
            filter: None,
        },
        Some(pred) => {
            let ranges = if profile.allows_skipping() {
                extract_skip_ranges(&pred)
            } else {
                None
            };
            match ranges {
                Some(cr) if table.index_on(&cr.column).is_some() => PhysOp::IndexRangeScan {
                    table: name,
                    column: cr.column,
                    ranges: cr.ranges,
                    filter: Some(pred),
                },
                Some(cr) if table.zone_map().is_some() && schema.index_of(&cr.column).is_some() => {
                    PhysOp::ZoneMapScan {
                        table: name,
                        column: cr.column,
                        ranges: cr.ranges,
                        filter: Some(pred),
                    }
                }
                _ => PhysOp::SeqScan {
                    table: name,
                    filter: Some(pred),
                },
            }
        }
    };
    PhysicalPlan { schema, op }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Execute a physical plan, returning the result relation and the per-row
/// tags produced by the policy (aligned with the relation's rows).
pub fn execute_physical<P: TagPolicy>(
    db: &Database,
    plan: &PhysicalPlan,
    policy: &P,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError> {
    execute_physical_with(db, plan, policy, ExecOptions::default(), stats)
}

/// [`execute_physical`] with explicit [`ExecOptions`] (e.g. to force the
/// row-at-a-time scan interpreter for an A/B comparison).
pub fn execute_physical_with<P: TagPolicy>(
    db: &Database,
    plan: &PhysicalPlan,
    policy: &P,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError> {
    let op = build_op(db, plan, policy, stats, opts, None, None)?;
    drain_root(op, plan, stats)
}

/// Execute a physical plan with per-operator instrumentation — the engine of
/// `EXPLAIN ANALYZE`. Every operator is wrapped so each `next_batch` call is
/// timed (through the [`pbds_telemetry::clock`] seam) and its emitted
/// rows/batches plus `ExecStats` deltas are attributed to the operator's
/// pre-order id. Results are identical to [`execute_physical_with`]; the
/// third return value indexes into the plan via [`PhysicalPlan::node_count`]
/// pre-order and renders with [`PhysicalPlan::render_analyze`].
///
/// Runs sequentially (no morsel parallelism): analyze output is about
/// attribution, and the wrappers share a single-threaded metrics cell.
pub fn execute_physical_analyzed<P: TagPolicy>(
    db: &Database,
    plan: &PhysicalPlan,
    policy: &P,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>, PlanMetrics), ExecError> {
    let cells: AnalyzeShared = RefCell::new(vec![OpMetrics::default(); plan.node_count()]);
    let result = {
        let op = build_op(db, plan, policy, stats, opts, None, Some((&cells, 0)))?;
        drain_root(op, plan, stats)?
    };
    let (relation, tags) = result;
    Ok((
        relation,
        tags,
        PlanMetrics {
            ops: cells.into_inner(),
        },
    ))
}

/// Execute a physical plan with morsel-parallel base-table scans.
///
/// Leaf `SeqScan` / `ZoneMapScan` / `IndexRangeScan` operators over tables of
/// at least [`PARALLEL_SCAN_THRESHOLD`] rows split their row-id lists into
/// `workers` contiguous morsels, scanned by scoped `std::thread` workers.
/// Each worker records its own [`ExecStats`]; the per-worker stats are folded
/// with [`ExecStats::merge_parallel`] (counters sum, `elapsed` is max across
/// branches). Morsels are concatenated in table order, so the produced rows —
/// and therefore every operator above the scan — are **identical** to the
/// sequential execution. Everything above the scans still runs on the calling
/// thread.
pub fn execute_physical_parallel<P>(
    db: &Database,
    plan: &PhysicalPlan,
    policy: &P,
    workers: usize,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError>
where
    P: TagPolicy + Sync,
    P::Tag: Send,
{
    execute_physical_parallel_with(db, plan, policy, workers, ExecOptions::default(), stats)
}

/// [`execute_physical_parallel`] with explicit [`ExecOptions`].
pub fn execute_physical_parallel_with<P>(
    db: &Database,
    plan: &PhysicalPlan,
    policy: &P,
    workers: usize,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError>
where
    P: TagPolicy + Sync,
    P::Tag: Send,
{
    if workers <= 1 {
        return execute_physical_with(db, plan, policy, opts, stats);
    }
    let hook = move |table: &Table, op: &PhysOp, stats: &mut ExecStats| {
        parallel_scan(table, op, policy, workers, opts, stats)
    };
    let op = build_op(db, plan, policy, stats, opts, Some(&hook), None)?;
    drain_root(op, plan, stats)
}

/// Pull every batch out of the root operator into a relation + tag vector.
fn drain_root<P: TagPolicy>(
    mut op: BoxOp<'_, P>,
    plan: &PhysicalPlan,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError> {
    let mut relation = Relation::empty(plan.schema.clone());
    let mut tags = Vec::new();
    while let Some(batch) = op.next_batch(stats)? {
        stats.batches += 1;
        for (row, tag) in batch.rows.into_iter().zip(batch.tags) {
            relation.push(row);
            tags.push(tag);
        }
    }
    Ok((relation, tags))
}

/// Lower a logical plan and execute it in one step.
pub fn execute_logical<P: TagPolicy>(
    db: &Database,
    plan: &LogicalPlan,
    profile: EngineProfile,
    policy: &P,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError> {
    execute_logical_with(db, plan, profile, policy, ExecOptions::default(), stats)
}

/// [`execute_logical`] with explicit [`ExecOptions`].
pub fn execute_logical_with<P: TagPolicy>(
    db: &Database,
    plan: &LogicalPlan,
    profile: EngineProfile,
    policy: &P,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError> {
    let physical = lower(db, plan, profile)?;
    execute_physical_with(db, &physical, policy, opts, stats)
}

/// Lower a logical plan and execute it with morsel-parallel scans.
pub fn execute_logical_parallel<P>(
    db: &Database,
    plan: &LogicalPlan,
    profile: EngineProfile,
    policy: &P,
    workers: usize,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError>
where
    P: TagPolicy + Sync,
    P::Tag: Send,
{
    execute_logical_parallel_with(
        db,
        plan,
        profile,
        policy,
        workers,
        ExecOptions::default(),
        stats,
    )
}

/// [`execute_logical_parallel`] with explicit [`ExecOptions`].
pub fn execute_logical_parallel_with<P>(
    db: &Database,
    plan: &LogicalPlan,
    profile: EngineProfile,
    policy: &P,
    workers: usize,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<(Relation, Vec<P::Tag>), ExecError>
where
    P: TagPolicy + Sync,
    P::Tag: Send,
{
    let physical = lower(db, plan, profile)?;
    execute_physical_parallel_with(db, &physical, policy, workers, opts, stats)
}

pub(crate) trait BatchOp<P: TagPolicy> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError>;
}

type BoxOp<'a, P> = Box<dyn BatchOp<P> + 'a>;

/// Hook injected by [`execute_physical_parallel`]: given a leaf scan, either
/// materialize its output rows using a worker pool (`Ok(Some(rows))`) or
/// decline (`Ok(None)`, e.g. the table is too small to be worth fanning out),
/// in which case the ordinary sequential scan operator is built.
type ParallelScanHook<'h, P> = dyn Fn(
        &Table,
        &PhysOp,
        &mut ExecStats,
    ) -> Result<Option<TaggedRows<<P as TagPolicy>::Tag>>, ExecError>
    + 'h;

/// Build the operator for `plan`, wrapping it in an [`AnalyzeOp`] when
/// `analyze` carries the metrics cells and this node's pre-order id.
fn build_op<'a, P: TagPolicy>(
    db: &'a Database,
    plan: &'a PhysicalPlan,
    policy: &'a P,
    stats: &mut ExecStats,
    opts: ExecOptions,
    parallel: Option<&ParallelScanHook<'_, P>>,
    analyze: Option<(&'a AnalyzeShared, usize)>,
) -> Result<BoxOp<'a, P>, ExecError> {
    let op = build_op_inner(db, plan, policy, stats, opts, parallel, analyze)?;
    Ok(match analyze {
        Some((metrics, id)) => Box::new(AnalyzeOp {
            inner: op,
            metrics,
            id,
        }),
        None => op,
    })
}

fn build_op_inner<'a, P: TagPolicy>(
    db: &'a Database,
    plan: &'a PhysicalPlan,
    policy: &'a P,
    stats: &mut ExecStats,
    opts: ExecOptions,
    parallel: Option<&ParallelScanHook<'_, P>>,
    analyze: Option<(&'a AnalyzeShared, usize)>,
) -> Result<BoxOp<'a, P>, ExecError> {
    // Pre-order child ids: a unary child is `id + 1`; a binary node's right
    // child starts after the whole left subtree.
    let unary = |a: Option<(&'a AnalyzeShared, usize)>| a.map(|(c, id)| (c, id + 1));
    let binary = |a: Option<(&'a AnalyzeShared, usize)>, left: &PhysicalPlan| {
        (
            a.map(|(c, id)| (c, id + 1)),
            a.map(|(c, id)| (c, id + 1 + left.node_count())),
        )
    };
    match &plan.op {
        PhysOp::SeqScan { table, .. }
        | PhysOp::IndexRangeScan { table, .. }
        | PhysOp::ZoneMapScan { table, .. } => {
            let t = db.table(table)?;
            if let Some(hook) = parallel {
                if let Some(rows) = hook(t, &plan.op, stats)? {
                    let mut out = Emitter::new();
                    out.fill(rows);
                    return Ok(Box::new(PrefetchedOp::<P> { out }));
                }
            }
            make_scan_op(t, &plan.op, policy, opts, stats)
        }
        PhysOp::Filter { predicate, input } => Ok(Box::new(FilterOp {
            predicate: CompiledExpr::compile(predicate, &input.schema),
            input: build_op(db, input, policy, stats, opts, parallel, unary(analyze))?,
        })),
        PhysOp::Project { exprs, input } => Ok(Box::new(ProjectOp {
            exprs: exprs
                .iter()
                .map(|(e, _)| CompiledExpr::compile(e, &input.schema))
                .collect(),
            input: build_op(db, input, policy, stats, opts, parallel, unary(analyze))?,
        })),
        PhysOp::HashAggregate {
            group_by,
            aggregates,
            input,
        } => {
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| {
                    input
                        .schema
                        .index_of(g)
                        .ok_or_else(|| ExecError::UnknownColumn(g.clone()))
                })
                .collect::<Result<_, _>>()?;
            // An aggregate directly above a chunk-aligned scan can aggregate
            // over the selection bitmaps without materializing row batches.
            // The parallel hook keeps priority: when a worker pool wants the
            // scan, the generic operator pair consumes its prefetched rows.
            if parallel.is_none() {
                if let Some(op) =
                    try_agg_pushdown(db, input, &group_idx, aggregates, policy, opts, stats)?
                {
                    // The input subtree was fused into this aggregate: its
                    // operators never run on their own, so mark their
                    // pre-order slots — the ANALYZE rendering shows them as
                    // fused and attributes all work to this node.
                    if let Some((metrics, id)) = analyze {
                        let mut all = metrics.borrow_mut();
                        for slot in &mut all[id + 1..id + 1 + input.node_count()] {
                            slot.fused = true;
                        }
                    }
                    return Ok(op);
                }
            }
            Ok(Box::new(HashAggregateOp {
                group_idx,
                group_by_empty: group_by.is_empty(),
                aggregates,
                agg_inputs: aggregates
                    .iter()
                    .map(|a| CompiledExpr::compile(&a.input, &input.schema))
                    .collect(),
                policy,
                input: Some(build_op(
                    db,
                    input,
                    policy,
                    stats,
                    opts,
                    parallel,
                    unary(analyze),
                )?),
                out: Emitter::new(),
            }))
        }
        PhysOp::HashJoin {
            left,
            right,
            left_col,
            right_col,
        } => {
            let li = left
                .schema
                .index_of(left_col)
                .ok_or_else(|| ExecError::UnknownColumn(left_col.clone()))?;
            let ri = right
                .schema
                .index_of(right_col)
                .ok_or_else(|| ExecError::UnknownColumn(right_col.clone()))?;
            let (la, ra) = binary(analyze, left);
            Ok(Box::new(HashJoinOp {
                left: build_op(db, left, policy, stats, opts, parallel, la)?,
                right: Some(build_op(db, right, policy, stats, opts, parallel, ra)?),
                li,
                ri,
                policy,
                hasher: RandomState::new(),
                build: HashMap::new(),
                build_rows: Vec::new(),
            }))
        }
        PhysOp::NestedLoopCross { left, right } => {
            let (la, ra) = binary(analyze, left);
            Ok(Box::new(NestedLoopCrossOp {
                left: build_op(db, left, policy, stats, opts, parallel, la)?,
                right: Some(build_op(db, right, policy, stats, opts, parallel, ra)?),
                policy,
                right_rows: Vec::new(),
                pending: std::collections::VecDeque::new(),
                current: None,
                right_pos: 0,
                left_count: 0,
                done: false,
            }))
        }
        PhysOp::Sort {
            keys,
            topk_limit,
            input,
        } => {
            let key_idx: Vec<(usize, bool)> = keys
                .iter()
                .map(|k| {
                    input
                        .schema
                        .index_of(&k.column)
                        .map(|i| (i, k.descending))
                        .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))
                })
                .collect::<Result<_, _>>()?;
            Ok(Box::new(SortOp {
                key_idx,
                topk_limit: *topk_limit,
                input: Some(build_op(
                    db,
                    input,
                    policy,
                    stats,
                    opts,
                    parallel,
                    unary(analyze),
                )?),
                out: Emitter::new(),
            }))
        }
        PhysOp::Limit { limit, input } => Ok(Box::new(LimitOp {
            remaining: *limit,
            input: build_op(db, input, policy, stats, opts, parallel, unary(analyze))?,
        })),
        PhysOp::Distinct { input } => Ok(Box::new(DistinctOp {
            policy,
            input: Some(build_op(
                db,
                input,
                policy,
                stats,
                opts,
                parallel,
                unary(analyze),
            )?),
            out: Emitter::new(),
        })),
        PhysOp::Append { left, right } => {
            let (la, ra) = binary(analyze, left);
            Ok(Box::new(AppendOp {
                left: Some(build_op(db, left, policy, stats, opts, parallel, la)?),
                right: Some(build_op(db, right, policy, stats, opts, parallel, ra)?),
            }))
        }
    }
}

// -- scans ------------------------------------------------------------------

/// Row-id source of a scan: contiguous segments (seq / zone-map scans) or an
/// explicit id list (index scans).
enum RidSource {
    Segments(std::vec::IntoIter<(usize, usize)>, Option<(usize, usize)>),
    List(std::vec::IntoIter<u32>),
}

impl RidSource {
    fn next_rid(&mut self) -> Option<u32> {
        match self {
            RidSource::Segments(segs, cur) => loop {
                if let Some((start, end)) = cur {
                    if start < end {
                        let rid = *start as u32;
                        *start += 1;
                        return Some(rid);
                    }
                }
                match segs.next() {
                    Some(seg) => *cur = Some(seg),
                    None => return None,
                }
            },
            RidSource::List(rids) => rids.next(),
        }
    }
}

/// Resolved row-id set of a scan, before it is turned into an iterator
/// (sequential path) or split into morsels (parallel path).
enum ScanSource {
    /// Contiguous `[start, end)` row-id segments (seq / zone-map scans).
    Segments(Vec<(usize, usize)>),
    /// Explicit row-id list (index scans).
    Rids(Vec<u32>),
}

impl ScanSource {
    fn row_count(&self) -> usize {
        match self {
            ScanSource::Segments(segs) => segs.iter().map(|(s, e)| e - s).sum(),
            ScanSource::Rids(rids) => rids.len(),
        }
    }

    fn into_rid_source(self) -> RidSource {
        match self {
            ScanSource::Segments(segs) => RidSource::Segments(segs.into_iter(), None),
            ScanSource::Rids(rids) => RidSource::List(rids.into_iter()),
        }
    }

    /// Split into at most `parts` sources of roughly equal row counts,
    /// preserving row order across the concatenation of the parts (so a
    /// parallel scan that concatenates per-part outputs in order reproduces
    /// the sequential scan exactly). Segments are cut mid-way when needed.
    fn split(self, parts: usize) -> Vec<ScanSource> {
        let total = self.row_count();
        if parts <= 1 || total == 0 {
            return vec![self];
        }
        let target = total.div_ceil(parts);
        match self {
            ScanSource::Rids(rids) => rids
                .chunks(target)
                .map(|c| ScanSource::Rids(c.to_vec()))
                .collect(),
            ScanSource::Segments(segs) => {
                let mut out: Vec<Vec<(usize, usize)>> = vec![Vec::new()];
                let mut filled = 0usize;
                for (mut start, end) in segs {
                    while start < end {
                        let room = target - filled;
                        let take = room.min(end - start);
                        out.last_mut()
                            .expect("non-empty")
                            .push((start, start + take));
                        start += take;
                        filled += take;
                        if filled == target {
                            out.push(Vec::new());
                            filled = 0;
                        }
                    }
                }
                if out.last().is_some_and(|p| p.is_empty()) {
                    out.pop();
                }
                out.into_iter().map(ScanSource::Segments).collect()
            }
        }
    }
}

/// Resolve a scan operator's row-id set against the current table, recording
/// the access-path statistics (`full_scans` / `index_scans` / zone-map block
/// counters — everything except `rows_scanned`, which the consumer accounts
/// per visited row so the sequential and morsel-parallel paths agree).
///
/// Lowering only emits index / zone-map scans when the physical-design
/// artifact exists, but the database may have been mutated between `lower`
/// and execution (e.g. a table replaced without its index) — a stale plan
/// reports [`ExecError::Plan`] instead of panicking.
fn resolve_scan<'a>(
    table: &'a Table,
    op: &'a PhysOp,
    stats: &mut ExecStats,
) -> Result<(Option<&'a Expr>, ScanSource), ExecError> {
    let stale = |what: &str, column: &str| {
        ExecError::Plan(format!(
            "{what} on {}.{column}, but the table no longer has it \
             (physical plan is stale; re-lower against the current database)",
            table.name()
        ))
    };
    match op {
        PhysOp::SeqScan { filter, .. } => {
            stats.full_scans += 1;
            Ok((
                filter.as_ref(),
                ScanSource::Segments(vec![(0, table.len())]),
            ))
        }
        PhysOp::IndexRangeScan {
            column,
            ranges,
            filter,
            ..
        } => {
            let index = table
                .index_on(column)
                .ok_or_else(|| stale("IndexRangeScan", column))?;
            let rids = index.multi_range(ranges);
            stats.index_scans += 1;
            Ok((filter.as_ref(), ScanSource::Rids(rids)))
        }
        PhysOp::ZoneMapScan {
            column,
            ranges,
            filter,
            ..
        } => {
            let zm = table
                .zone_map()
                .ok_or_else(|| stale("ZoneMapScan", column))?;
            let col_idx = table
                .schema()
                .index_of(column)
                .ok_or_else(|| ExecError::UnknownColumn(column.clone()))?;
            let blocks = zm.candidate_blocks(col_idx, ranges);
            stats.blocks_total += zm.num_blocks() as u64;
            stats.blocks_skipped += (zm.num_blocks() - blocks.len()) as u64;
            let segs = blocks.into_iter().map(|b| (b.start, b.end)).collect();
            Ok((filter.as_ref(), ScanSource::Segments(segs)))
        }
        other => Err(ExecError::Plan(format!(
            "resolve_scan on non-scan operator {other:?}"
        ))),
    }
}

pub(crate) struct ScanOp<'a, P: TagPolicy> {
    table: &'a Table,
    policy: &'a P,
    filter: Option<&'a Expr>,
    /// Pre-bound filter; used instead of the interpreter when present
    /// (rid-list scans under [`ExecOptions::vectorized`]).
    compiled: Option<CompiledExpr>,
    source: RidSource,
    /// Table epoch the row-id set was resolved at; re-validated before every
    /// batch so a mutation can never make the scan read stale row ids.
    epoch: u64,
}

/// Validate that the table still is at the epoch a scan's row-id set (or
/// chunk projection) was resolved at. Rust's borrow rules make an in-scan
/// mutation impossible for `&Table` scans, but the check turns any future
/// interior-mutability bug — or a plan executed across a mutation — into a
/// reported error instead of silently wrong rows.
fn check_scan_epoch(table: &Table, resolved_at: u64) -> Result<(), ExecError> {
    if table.epoch() != resolved_at {
        return Err(ExecError::Plan(format!(
            "table {} mutated during scan (epoch {} -> {}); re-plan against \
             the current database",
            table.name(),
            resolved_at,
            table.epoch()
        )));
    }
    Ok(())
}

/// Predicted selectivity of a pushed-down scan filter for the adaptive
/// lowering decision: observed feedback from a previous run of the same
/// workload wins over the static table-stats estimate.
fn predicted_scan_selectivity(table: &Table, pred: &Expr, opts: &ExecOptions) -> Option<f64> {
    opts.observed_selectivity
        .or_else(|| estimate_scan_selectivity(table, pred))
}

/// Build the executor for a scan operator over an already-resolved table
/// (`scan.rs`'s `scan_table` shares this path).
///
/// Under [`ExecOptions::vectorized`], scans over contiguous row segments
/// (sequential and zone-map scans) with a pushed-down filter evaluate the
/// predicate per columnar chunk into a selection bitmap and late-materialize
/// the surviving rows ([`VectorScanOp`]); rid-list scans (index probes) keep
/// the row-at-a-time loop but with a pre-bound [`CompiledExpr`]. Under
/// [`ExecOptions::adaptive`], a segment scan whose predicted selectivity says
/// nearly every row survives is lowered to that row loop as well — the bitmap
/// pass buys nothing when everything is materialized anyway. With
/// `vectorized` off, everything runs through the row interpreter — the
/// oracle path.
pub(crate) fn make_scan_op<'a, P: TagPolicy>(
    table: &'a Table,
    op: &'a PhysOp,
    policy: &'a P,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<BoxOp<'a, P>, ExecError> {
    let (filter, source) = resolve_scan(table, op, stats)?;
    stats.rows_scanned += source.row_count() as u64;
    let epoch = table.epoch();
    if opts.vectorized {
        if let Some(pred) = filter {
            let compiled = CompiledExpr::compile(pred, table.schema());
            let vectorize = !opts.adaptive
                || scan_prefers_vectorized(predicted_scan_selectivity(table, pred, &opts));
            if vectorize {
                if let ScanSource::Segments(segs) = &source {
                    stats.vectorized_scans += 1;
                    // The chunk projection is fetched once through the
                    // epoch-checked cache; the op re-validates the epoch
                    // before trusting it for each batch.
                    let chunks = table.columnar_chunks();
                    return Ok(Box::new(VectorScanOp {
                        table,
                        policy,
                        compiled,
                        pieces: chunk_aligned_pieces(segs, chunks.block_size()).into_iter(),
                        chunks,
                        current: None,
                        epoch,
                    }));
                }
            }
            return Ok(Box::new(ScanOp {
                table,
                policy,
                filter,
                compiled: Some(compiled),
                source: source.into_rid_source(),
                epoch,
            }));
        }
    }
    Ok(Box::new(ScanOp {
        table,
        policy,
        filter,
        compiled: None,
        source: source.into_rid_source(),
        epoch,
    }))
}

impl<P: TagPolicy> BatchOp<P> for ScanOp<'_, P> {
    fn next_batch(&mut self, _stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        check_scan_epoch(self.table, self.epoch)?;
        let schema = self.table.schema();
        let name = self.table.name();
        let mut batch = Batch::with_capacity(BATCH_SIZE);
        while batch.len() < BATCH_SIZE {
            let Some(rid) = self.source.next_rid() else {
                break;
            };
            let row = &self.table.rows()[rid as usize];
            if let Some(compiled) = &self.compiled {
                if !compiled.matches(row)? {
                    continue;
                }
            } else if let Some(pred) = self.filter {
                if !eval_predicate(pred, schema, row)? {
                    continue;
                }
            }
            let tag = self.policy.seed_tag(name, schema, row, rid);
            batch.push(row.clone(), tag);
        }
        Ok((!batch.is_empty()).then_some(batch))
    }
}

// -- vectorized scans -------------------------------------------------------

/// Cut contiguous row-id segments at columnar-chunk boundaries, yielding
/// `[lo, hi)` pieces that each lie within a single chunk (in table order).
fn chunk_aligned_pieces(segments: &[(usize, usize)], block_size: usize) -> Vec<(usize, usize)> {
    let mut pieces = Vec::new();
    for &(start, end) in segments {
        let mut lo = start;
        while lo < end {
            let hi = ((lo / block_size) + 1) * block_size;
            let hi = hi.min(end);
            pieces.push((lo, hi));
            lo = hi;
        }
    }
    pieces
}

/// Leaf scan that filters chunk-at-a-time: each piece's predicate evaluation
/// produces a selection bitmap ([`eval_filter_block`]), and only the
/// surviving rows are materialized from the row store into batches — every
/// operator above the scan sees byte-identical input to the row-interpreter
/// path.
struct VectorScanOp<'a, P: TagPolicy> {
    table: &'a Table,
    policy: &'a P,
    compiled: CompiledExpr,
    pieces: std::vec::IntoIter<(usize, usize)>,
    /// Chunk projection snapshot fetched (epoch-checked) at operator build.
    chunks: std::sync::Arc<pbds_storage::ColumnarChunks>,
    /// Currently drained piece: `(piece_lo, selection, next bit index)`.
    current: Option<(usize, SelBitmap, usize)>,
    /// Table epoch `chunks` was fetched at; re-validated per batch.
    epoch: u64,
}

impl<P: TagPolicy> BatchOp<P> for VectorScanOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        check_scan_epoch(self.table, self.epoch)?;
        let schema = self.table.schema();
        let name = self.table.name();
        let rows = self.table.rows();
        let mut batch = Batch::with_capacity(BATCH_SIZE);
        while batch.len() < BATCH_SIZE {
            let Some((lo, sel, pos)) = &mut self.current else {
                let Some((lo, hi)) = self.pieces.next() else {
                    break;
                };
                let chunk = self
                    .chunks
                    .chunk_for(lo)
                    .ok_or_else(|| ExecError::Plan("row id beyond chunk range".into()))?;
                let sel = eval_filter_block_counted(&self.compiled, chunk, rows, lo, hi, stats)?;
                stats.vectorized_blocks += 1;
                self.current = Some((lo, sel, 0));
                continue;
            };
            while *pos < sel.len() && batch.len() < BATCH_SIZE {
                let j = *pos;
                *pos += 1;
                if sel.get(j) {
                    let rid = *lo + j;
                    let row = &rows[rid];
                    let tag = self.policy.seed_tag(name, schema, row, rid as u32);
                    batch.push(row.clone(), tag);
                }
            }
            if *pos >= sel.len() {
                self.current = None;
            }
        }
        Ok((!batch.is_empty()).then_some(batch))
    }
}

// -- morsel-parallel scans --------------------------------------------------

/// Tables below this row count are scanned sequentially even when a parallel
/// scan was requested — the thread fan-out costs more than it saves.
pub const PARALLEL_SCAN_THRESHOLD: usize = 4 * BATCH_SIZE;

/// Tagged rows produced by one scan morsel.
type TaggedRows<T> = Vec<(Row, T)>;

/// What a scan-morsel worker hands back: its rows plus its local stats.
type MorselResult<T> = Result<(TaggedRows<T>, ExecStats), ExecError>;

/// Leaf operator emitting rows that were already materialized by a
/// morsel-parallel scan.
struct PrefetchedOp<P: TagPolicy> {
    out: Emitter<P::Tag>,
}

impl<P: TagPolicy> BatchOp<P> for PrefetchedOp<P> {
    fn next_batch(&mut self, _stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        Ok(self.out.emit())
    }
}

/// Scan one morsel on a worker thread: visit the morsel's row ids in order,
/// apply the pushed-down filter, seed tags, and count the visited rows in a
/// worker-local [`ExecStats`].
///
/// Mirrors the sequential scan's path choice: when the coordinator compiled
/// the filter (`compiled` is `Some`, i.e. [`ExecOptions::vectorized`]) and
/// the adaptive decision kept the chunk path (`use_chunks`), contiguous
/// segments take the vectorized chunk path (morsel cuts that fall inside a
/// chunk evaluate a partial block); rid lists — and adaptively row-lowered
/// segment scans — use the compiled row filter; otherwise everything runs
/// through the row interpreter.
fn scan_morsel<P: TagPolicy>(
    table: &Table,
    filter: Option<&Expr>,
    compiled: Option<&CompiledExpr>,
    use_chunks: bool,
    source: ScanSource,
    policy: &P,
    epoch: u64,
) -> MorselResult<P::Tag> {
    check_scan_epoch(table, epoch)?;
    let schema = table.schema();
    let name = table.name();
    let mut local = ExecStats::default();
    let mut out = Vec::new();
    if let Some(compiled) = compiled {
        if use_chunks {
            if let ScanSource::Segments(segs) = &source {
                let chunks = table.columnar_chunks();
                let rows = table.rows();
                for (lo, hi) in chunk_aligned_pieces(segs, chunks.block_size()) {
                    let chunk = chunks
                        .chunk_for(lo)
                        .ok_or_else(|| ExecError::Plan("row id beyond chunk range".into()))?;
                    let sel = eval_filter_block_counted(compiled, chunk, rows, lo, hi, &mut local)?;
                    local.rows_scanned += (hi - lo) as u64;
                    local.vectorized_blocks += 1;
                    for j in sel.iter_ones() {
                        let rid = lo + j;
                        let row = &rows[rid];
                        let tag = policy.seed_tag(name, schema, row, rid as u32);
                        out.push((row.clone(), tag));
                    }
                }
                return Ok((out, local));
            }
        }
        let mut rids = source.into_rid_source();
        while let Some(rid) = rids.next_rid() {
            local.rows_scanned += 1;
            let row = &table.rows()[rid as usize];
            if !compiled.matches(row)? {
                continue;
            }
            let tag = policy.seed_tag(name, schema, row, rid);
            out.push((row.clone(), tag));
        }
        return Ok((out, local));
    }
    let mut rids = source.into_rid_source();
    while let Some(rid) = rids.next_rid() {
        local.rows_scanned += 1;
        let row = &table.rows()[rid as usize];
        if let Some(pred) = filter {
            if !eval_predicate(pred, schema, row)? {
                continue;
            }
        }
        let tag = policy.seed_tag(name, schema, row, rid);
        out.push((row.clone(), tag));
    }
    Ok((out, local))
}

/// Materialize a leaf scan using `workers` scoped threads, splitting the
/// resolved row-id set into contiguous morsels of roughly equal size.
///
/// Returns `Ok(None)` when the table is too small to be worth fanning out
/// (the caller then builds the ordinary sequential scan operator). Per-worker
/// stats are folded into `stats` with [`ExecStats::merge_parallel`]; morsel
/// outputs are concatenated in table order, so the result is byte-identical
/// to a sequential scan.
fn parallel_scan<P>(
    table: &Table,
    op: &PhysOp,
    policy: &P,
    workers: usize,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Option<TaggedRows<P::Tag>>, ExecError>
where
    P: TagPolicy + Sync,
    P::Tag: Send,
{
    if workers <= 1 || table.len() < PARALLEL_SCAN_THRESHOLD {
        return Ok(None);
    }
    let (filter, source) = resolve_scan(table, op, stats)?;
    let epoch = table.epoch();
    // Same adaptive decision as the sequential `make_scan_op`: a segment
    // scan predicted to keep nearly every row skips the bitmap pass, but the
    // compiled filter is still shared with the workers' row loops.
    let use_chunks = opts.vectorized
        && filter.is_some_and(|pred| {
            !opts.adaptive
                || scan_prefers_vectorized(predicted_scan_selectivity(table, pred, &opts))
        });
    if use_chunks && matches!(source, ScanSource::Segments(_)) {
        stats.vectorized_scans += 1;
    }
    // Compile the filter once on the coordinating thread (it can hold large
    // sketch range/key sets) and share it with every morsel worker; also
    // pre-build the chunk projection so workers share the cached build
    // instead of racing to construct it.
    let compiled = if opts.vectorized {
        filter.map(|pred| {
            if use_chunks {
                let _ = table.columnar_chunks();
            }
            CompiledExpr::compile(pred, table.schema())
        })
    } else {
        None
    };
    let compiled = compiled.as_ref();
    if source.row_count() < PARALLEL_SCAN_THRESHOLD {
        // The access path already narrowed the scan (index probe / zone-map
        // skipping); scan the survivors sequentially as a single morsel.
        let (rows, local) =
            scan_morsel(table, filter, compiled, use_chunks, source, policy, epoch)?;
        stats.merge_parallel(&local);
        return Ok(Some(rows));
    }
    let morsels = source.split(workers);
    let results: Vec<MorselResult<P::Tag>> = std::thread::scope(|s| {
        let handles: Vec<_> = morsels
            .into_iter()
            .map(|m| {
                s.spawn(move || scan_morsel(table, filter, compiled, use_chunks, m, policy, epoch))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for r in results {
        let (rows, worker_stats) = r?;
        stats.merge_parallel(&worker_stats);
        out.extend(rows);
    }
    Ok(Some(out))
}

// -- streaming operators ----------------------------------------------------

struct FilterOp<'a, P: TagPolicy> {
    /// Predicate with column names bound once against the input schema.
    predicate: CompiledExpr,
    input: BoxOp<'a, P>,
}

impl<P: TagPolicy> BatchOp<P> for FilterOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        while let Some(batch) = self.input.next_batch(stats)? {
            let mut out = Batch::with_capacity(batch.len());
            for (row, tag) in batch.rows.into_iter().zip(batch.tags) {
                if self.predicate.matches(&row)? {
                    out.push(row, tag);
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

struct ProjectOp<'a, P: TagPolicy> {
    /// Output expressions with column names bound once.
    exprs: Vec<CompiledExpr>,
    input: BoxOp<'a, P>,
}

impl<P: TagPolicy> BatchOp<P> for ProjectOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        let Some(batch) = self.input.next_batch(stats)? else {
            return Ok(None);
        };
        let mut out = Batch::with_capacity(batch.len());
        for (row, tag) in batch.rows.into_iter().zip(batch.tags) {
            let mut new_row = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                new_row.push(e.eval(&row)?);
            }
            out.push(new_row, tag);
        }
        Ok(Some(out))
    }
}

struct LimitOp<'a, P: TagPolicy> {
    remaining: usize,
    input: BoxOp<'a, P>,
}

impl<P: TagPolicy> BatchOp<P> for LimitOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(mut batch) = self.input.next_batch(stats)? else {
            return Ok(None);
        };
        if batch.len() > self.remaining {
            batch.rows.truncate(self.remaining);
            batch.tags.truncate(self.remaining);
        }
        self.remaining -= batch.len();
        Ok(Some(batch))
    }
}

struct AppendOp<'a, P: TagPolicy> {
    left: Option<BoxOp<'a, P>>,
    right: Option<BoxOp<'a, P>>,
}

impl<P: TagPolicy> BatchOp<P> for AppendOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if let Some(left) = &mut self.left {
            if let Some(batch) = left.next_batch(stats)? {
                return Ok(Some(batch));
            }
            self.left = None;
        }
        if let Some(right) = &mut self.right {
            if let Some(batch) = right.next_batch(stats)? {
                return Ok(Some(batch));
            }
            self.right = None;
        }
        Ok(None)
    }
}

// -- blocking operators -----------------------------------------------------

/// Buffered output of a blocking operator, drained in `BATCH_SIZE` chunks.
struct Emitter<T> {
    rows: std::vec::IntoIter<(Row, T)>,
    filled: bool,
}

impl<T> Emitter<T> {
    fn new() -> Self {
        Emitter {
            rows: Vec::new().into_iter(),
            filled: false,
        }
    }

    fn fill(&mut self, rows: Vec<(Row, T)>) {
        self.rows = rows.into_iter();
        self.filled = true;
    }

    fn emit(&mut self) -> Option<Batch<T>> {
        let mut batch = Batch::with_capacity(BATCH_SIZE);
        for (row, tag) in self.rows.by_ref().take(BATCH_SIZE) {
            batch.push(row, tag);
        }
        (!batch.is_empty()).then_some(batch)
    }
}

/// Accumulated aggregation state before finalization: one (group key,
/// accumulator) pair per group, in first-seen order.
type Groups<T> = Vec<(Vec<Value>, GroupAcc<T>)>;

/// Per-group accumulator: the running aggregates plus the group's merged tag
/// (and, under min/max narrowing, the extremal witness row's tag).
struct GroupAcc<T> {
    count: i64,
    sums: Vec<f64>,
    int_sums: Vec<i64>,
    all_int: Vec<bool>,
    mins: Vec<Option<Value>>,
    maxs: Vec<Option<Value>>,
    non_null: Vec<i64>,
    tag: T,
    witness: Option<(Value, T)>,
}

impl<T> GroupAcc<T> {
    fn new(n_aggs: usize, tag: T) -> Self {
        GroupAcc {
            count: 0,
            sums: vec![0.0; n_aggs],
            int_sums: vec![0; n_aggs],
            all_int: vec![true; n_aggs],
            mins: vec![None; n_aggs],
            maxs: vec![None; n_aggs],
            non_null: vec![0; n_aggs],
            tag,
            witness: None,
        }
    }
}

struct HashAggregateOp<'a, P: TagPolicy> {
    group_idx: Vec<usize>,
    group_by_empty: bool,
    aggregates: &'a [AggExpr],
    /// Aggregate input expressions, bound once against the input schema.
    agg_inputs: Vec<CompiledExpr>,
    policy: &'a P,
    input: Option<BoxOp<'a, P>>,
    out: Emitter<P::Tag>,
}

/// Hash a borrowed sequence of key values with a shared [`RandomState`].
fn hash_borrowed_key<'v>(state: &RandomState, values: impl Iterator<Item = &'v Value>) -> u64 {
    let mut h = state.build_hasher();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

impl<P: TagPolicy> HashAggregateOp<'_, P> {
    fn drain_input(&mut self, stats: &mut ExecStats) -> Result<(), ExecError> {
        let mut input = self.input.take().expect("aggregate drained once");
        let n_aggs = self.aggregates.len();
        // The min/max narrowing of rule r3 applies when the aggregation
        // computes a single min or max.
        let narrow = self.policy.minmax_narrowing()
            && n_aggs == 1
            && matches!(self.aggregates[0].func, AggFunc::Min | AggFunc::Max);
        let want_max = matches!(self.aggregates.first().map(|a| a.func), Some(AggFunc::Max));

        // Keys hash as borrowed `Value`s (`Hash` is consistent with the
        // exact, transitive `Eq`: Int/Float compare at full precision, so
        // distinct 64-bit integers never conflate even where their `f64`
        // images collide). The map is keyed by the 64-bit hash with explicit
        // candidate comparison, so the per-row path neither clones the group
        // key nor allocates a probe `Vec<Value>` — the key is materialized
        // once per *group*, on the miss path only.
        let hasher = RandomState::new();
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut groups: Groups<P::Tag> = Vec::new();

        while let Some(batch) = input.next_batch(stats)? {
            stats.intermediate_rows += batch.len() as u64;
            for (row, tag) in batch.rows.iter().zip(&batch.tags) {
                let h = hash_borrowed_key(&hasher, self.group_idx.iter().map(|&i| &row[i]));
                let candidates = index.entry(h).or_default();
                let found = candidates.iter().copied().find(|&slot| {
                    self.group_idx
                        .iter()
                        .zip(&groups[slot].0)
                        .all(|(&i, k)| row[i] == *k)
                });
                let slot = match found {
                    Some(slot) => slot,
                    None => {
                        let key: Vec<Value> =
                            self.group_idx.iter().map(|&i| row[i].clone()).collect();
                        let slot = groups.len();
                        candidates.push(slot);
                        // Under narrowing the accumulator's tag holds the
                        // first member's tag as the all-NULL fallback; see
                        // `finalize_groups`.
                        groups.push((
                            key,
                            GroupAcc::new(
                                n_aggs,
                                if narrow {
                                    tag.clone()
                                } else {
                                    self.policy.empty_tag()
                                },
                            ),
                        ));
                        slot
                    }
                };
                let acc = &mut groups[slot].1;
                acc.count += 1;
                for (ai, _agg) in self.aggregates.iter().enumerate() {
                    let v = self.agg_inputs[ai].eval(row)?;
                    if v.is_null() {
                        continue;
                    }
                    acc.non_null[ai] += 1;
                    if let Some(f) = v.as_f64() {
                        acc.sums[ai] += f;
                    }
                    match (&v, acc.all_int[ai]) {
                        (Value::Int(i), true) => acc.int_sums[ai] += i,
                        _ => acc.all_int[ai] = false,
                    }
                    if acc.mins[ai].as_ref().is_none_or(|m| &v < m) {
                        acc.mins[ai] = Some(v.clone());
                    }
                    if acc.maxs[ai].as_ref().is_none_or(|m| &v > m) {
                        acc.maxs[ai] = Some(v.clone());
                    }
                    if narrow {
                        // Keep the first strictly-extremal row as the witness
                        // whose tag represents the whole group.
                        let better = match &acc.witness {
                            None => true,
                            Some((best, _)) => {
                                if want_max {
                                    v > *best
                                } else {
                                    v < *best
                                }
                            }
                        };
                        if better {
                            acc.witness = Some((v.clone(), tag.clone()));
                        }
                    }
                }
                if !narrow {
                    self.policy.merge_tags(&mut acc.tag, tag);
                }
            }
        }

        self.out.fill(finalize_groups(
            self.policy,
            self.aggregates,
            groups,
            narrow,
            self.group_by_empty,
        ));
        Ok(())
    }
}

/// Turn accumulated groups into output rows, including the SQL empty-input
/// synthesis of the global aggregate. Shared by [`HashAggregateOp`] and the
/// scan→aggregate pushdown ([`AggScanOp`]) so both paths finalize
/// byte-identically.
fn finalize_groups<P: TagPolicy>(
    policy: &P,
    aggregates: &[AggExpr],
    groups: Groups<P::Tag>,
    narrow: bool,
    group_by_empty: bool,
) -> Vec<(Row, P::Tag)> {
    let mut out = Vec::with_capacity(groups.len());
    for (key, acc) in groups {
        let mut row = key;
        for (ai, agg) in aggregates.iter().enumerate() {
            let v = match agg.func {
                AggFunc::Count => Value::Int(acc.count),
                AggFunc::Sum => {
                    if acc.non_null[ai] == 0 {
                        Value::Null
                    } else if acc.all_int[ai] {
                        Value::Int(acc.int_sums[ai])
                    } else {
                        Value::Float(acc.sums[ai])
                    }
                }
                AggFunc::Avg => {
                    if acc.non_null[ai] == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sums[ai] / acc.non_null[ai] as f64)
                    }
                }
                AggFunc::Min => acc.mins[ai].clone().unwrap_or(Value::Null),
                AggFunc::Max => acc.maxs[ai].clone().unwrap_or(Value::Null),
            };
            row.push(v);
        }
        let tag = if narrow {
            // The extremal row's tag represents the group. When every
            // aggregate input was NULL there is no extremal row, but the
            // group still produces a `(key, NULL)` output — any single
            // member suffices to reproduce it, so fall back to the first
            // member's tag rather than dropping the group's provenance.
            acc.witness.map(|(_, t)| t).unwrap_or(acc.tag)
        } else {
            acc.tag
        };
        out.push((row, tag));
    }

    // Global aggregation over an empty input still produces one row
    // (count = 0, other aggregates NULL), matching SQL semantics.
    if out.is_empty() && group_by_empty {
        let mut row: Row = Vec::new();
        for agg in aggregates {
            row.push(match agg.func {
                AggFunc::Count => Value::Int(0),
                _ => Value::Null,
            });
        }
        out.push((row, policy.empty_tag()));
    }
    out
}

impl<P: TagPolicy> BatchOp<P> for HashAggregateOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if !self.out.filled {
            self.drain_input(stats)?;
        }
        Ok(self.out.emit())
    }
}

// -- scan→aggregate pushdown ------------------------------------------------

/// Try to collapse a `HashAggregate` sitting directly above a base-table
/// scan into the fused [`AggScanOp`], which aggregates straight off the scan
/// source and never materializes `Batch` rows. Chunk-aligned scans
/// (sequential and zone-map) aggregate over per-chunk selection bitmaps;
/// rid-list index probes aggregate row-at-a-time in rid order, exactly as
/// [`ScanOp`] would have fetched them.
///
/// Returns `Ok(None)` — keeping the generic scan + aggregate operator pair —
/// whenever any semantic detail could make the pushdown observable beyond
/// speed: vectorization is off, or an aggregate input is not a plain
/// base-table column (expression inputs keep the generic operator's
/// evaluation and error behavior). All declining checks run *before*
/// [`resolve_scan`] so a declined attempt records no stats.
fn try_agg_pushdown<'a, P: TagPolicy>(
    db: &'a Database,
    input: &'a PhysicalPlan,
    group_idx: &[usize],
    aggregates: &'a [AggExpr],
    policy: &'a P,
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> Result<Option<BoxOp<'a, P>>, ExecError> {
    if !opts.vectorized {
        return Ok(None);
    }
    let table_name = match &input.op {
        PhysOp::SeqScan { table, .. }
        | PhysOp::ZoneMapScan { table, .. }
        | PhysOp::IndexRangeScan { table, .. } => table,
        _ => return Ok(None),
    };
    let table = db.table(table_name)?;
    let mut agg_cols = Vec::with_capacity(aggregates.len());
    for a in aggregates {
        match &a.input {
            Expr::Column(name) => match table.schema().index_of(name) {
                Some(i) => agg_cols.push(i),
                None => return Ok(None),
            },
            _ => return Ok(None),
        }
    }
    // Committed: resolve the scan, mirroring `make_scan_op`'s accounting.
    let (filter, source) = resolve_scan(table, &input.op, stats)?;
    stats.rows_scanned += source.row_count() as u64;
    let source = match source {
        ScanSource::Segments(segs) => {
            // A segment scan with a filter is a vectorized bitmap scan;
            // rid-list probes stay row-wise, exactly like `make_scan_op`.
            if filter.is_some() {
                stats.vectorized_scans += 1;
            }
            let chunks = table.columnar_chunks();
            let pieces = chunk_aligned_pieces(&segs, chunks.block_size());
            AggSource::Chunks { pieces, chunks }
        }
        ScanSource::Rids(rids) => AggSource::Rids(rids),
    };
    Ok(Some(Box::new(AggScanOp {
        table,
        policy,
        aggregates,
        group_idx: group_idx.to_vec(),
        agg_cols,
        filter: filter.map(|pred| CompiledExpr::compile(pred, table.schema())),
        source,
        epoch: table.epoch(),
        out: Emitter::new(),
    })))
}

/// Fused scan + aggregate ([`try_agg_pushdown`]): evaluates the pushed-down
/// filter straight off the scan source and aggregates the selected rows
/// without ever building `Batch` rows. Three accumulation strategies, all
/// byte-identical — rows and capture tags — to scanning then
/// hash-aggregating:
///
/// * **column-at-a-time** when the source is chunks, there are no group
///   keys, tags are trivial and every aggregate input is a numeric column:
///   each aggregate reads its column directly from the chunk, with run-aware
///   shortcuts on run-length data (a run selected `k` times contributes
///   `k·value` to a SUM in O(1));
/// * **row-at-a-time over the bitmap** for other chunk sources: grouping,
///   tag merging and min/max narrowing replicate [`HashAggregateOp`]
///   exactly, but on *borrowed* rows — the per-row `Row` clone of the scan
///   boundary is still skipped;
/// * **row-at-a-time in rid order** for index probes, re-checking the
///   compiled predicate per fetched row exactly like [`ScanOp`].
struct AggScanOp<'a, P: TagPolicy> {
    table: &'a Table,
    policy: &'a P,
    aggregates: &'a [AggExpr],
    /// Table-schema indexes of the group-by keys.
    group_idx: Vec<usize>,
    /// Table-schema index of each aggregate's input column.
    agg_cols: Vec<usize>,
    filter: Option<CompiledExpr>,
    /// Where the candidate rows come from.
    source: AggSource,
    /// Table epoch the source was resolved at; re-validated at drain.
    epoch: u64,
    out: Emitter<P::Tag>,
}

/// Candidate-row source of a fused scan + aggregate.
enum AggSource {
    /// Chunk-aligned pieces of a sequential or zone-map scan, filtered per
    /// chunk into selection bitmaps (exactly like [`VectorScanOp`]).
    Chunks {
        /// Chunk-aligned `[lo, hi)` row-id pieces, in table order.
        pieces: Vec<(usize, usize)>,
        /// Chunk projection snapshot fetched (epoch-checked) at build.
        chunks: std::sync::Arc<pbds_storage::ColumnarChunks>,
    },
    /// Explicit row-id list from an index probe, filtered row-at-a-time.
    Rids(Vec<u32>),
}

/// Chunk-level layout class of an aggregate input column, decided over the
/// *whole* table so the accumulator knows up front whether `f64` running
/// sums can ever be observed (see [`AggScanOp::drain_columnar`]).
#[derive(Clone, Copy, PartialEq)]
enum NumShape {
    /// Every chunk stores the column as integers (plain, run-length or
    /// bit-packed): `all_int` stays true, so only exact integer sums and the
    /// row count are observable and run shortcuts are exact.
    Ints,
    /// Every chunk stores the column as plain floats: sums accumulate per
    /// row in row order, exactly like the row path.
    Floats,
}

/// The column's [`NumShape`], or `None` when chunks disagree or any chunk
/// holds a non-numeric layout — those columns take the row-at-a-time path.
fn numeric_column_shape(chunks: &pbds_storage::ColumnarChunks, c: usize) -> Option<NumShape> {
    let mut shape = None;
    for chunk in chunks.chunks() {
        let s = match chunk.column(c).data() {
            ColumnData::Int(_) | ColumnData::RleInt(_) | ColumnData::PackedInt(_) => NumShape::Ints,
            ColumnData::Float(_) => NumShape::Floats,
            _ => return None,
        };
        match shape {
            None => shape = Some(s),
            Some(prev) if prev == s => {}
            _ => return None,
        }
    }
    // An empty table has no chunks; any shape works (nothing accumulates).
    shape.or(Some(NumShape::Ints))
}

impl<P: TagPolicy> AggScanOp<'_, P> {
    fn drain(&mut self, stats: &mut ExecStats) -> Result<(), ExecError> {
        check_scan_epoch(self.table, self.epoch)?;
        let n_aggs = self.aggregates.len();
        let narrow = self.policy.minmax_narrowing()
            && n_aggs == 1
            && matches!(self.aggregates[0].func, AggFunc::Min | AggFunc::Max);
        // The column-at-a-time path may visit values out of row order (run
        // shortcuts), so it is only taken where order can never show:
        // no group keys (one global accumulator), trivial tags (no per-row
        // seeding or witness), no AVG (its f64 division observes the f64
        // running sum even over integers), and numeric single-layout columns.
        let columnar = match &self.source {
            AggSource::Rids(_) => false,
            AggSource::Chunks { chunks, .. } => {
                self.group_idx.is_empty()
                    && !narrow
                    && self.policy.tags_are_trivial()
                    && !self
                        .aggregates
                        .iter()
                        .any(|a| matches!(a.func, AggFunc::Avg))
                    && self
                        .agg_cols
                        .iter()
                        .all(|&c| numeric_column_shape(chunks, c).is_some())
            }
        };
        let groups = if columnar {
            self.drain_columnar(stats)?
        } else {
            self.drain_rowwise(narrow, stats)?
        };
        self.out.fill(finalize_groups(
            self.policy,
            self.aggregates,
            groups,
            narrow,
            self.group_idx.is_empty(),
        ));
        Ok(())
    }

    /// Filter one piece into its selection bitmap and record the pushdown's
    /// stats: the same `vectorized_blocks` a [`VectorScanOp`] would count,
    /// `agg_pushdown_blocks`, and the selected rows as `intermediate_rows`
    /// (the rows the generic aggregate would have counted batch-wise).
    fn select_piece<'c>(
        &self,
        chunks: &'c pbds_storage::ColumnarChunks,
        lo: usize,
        hi: usize,
        stats: &mut ExecStats,
    ) -> Result<(&'c pbds_storage::ColumnarChunk, SelBitmap), ExecError> {
        let chunk = chunks
            .chunk_for(lo)
            .ok_or_else(|| ExecError::Plan("row id beyond chunk range".into()))?;
        let sel = match &self.filter {
            Some(pred) => {
                let sel = eval_filter_block_counted(pred, chunk, self.table.rows(), lo, hi, stats)?;
                stats.vectorized_blocks += 1;
                sel
            }
            None => SelBitmap::ones(hi - lo),
        };
        stats.agg_pushdown_blocks += 1;
        stats.intermediate_rows += sel.count() as u64;
        Ok((chunk, sel))
    }

    /// Global aggregation column-at-a-time over the selection bitmaps.
    fn drain_columnar(&self, stats: &mut ExecStats) -> Result<Groups<P::Tag>, ExecError> {
        let AggSource::Chunks { pieces, chunks } = &self.source else {
            unreachable!("columnar accumulation requires a chunk source");
        };
        let n_aggs = self.aggregates.len();
        let mut acc = GroupAcc::new(n_aggs, self.policy.empty_tag());
        for &(lo, hi) in pieces {
            let (chunk, sel) = self.select_piece(chunks, lo, hi, stats)?;
            let selected = sel.count();
            if selected == 0 {
                continue;
            }
            acc.count += selected as i64;
            let base = lo - chunk.start;
            for (ai, &c) in self.agg_cols.iter().enumerate() {
                accumulate_column(chunk.column(c), &sel, base, &mut acc, ai);
            }
        }
        // The row path creates the global group on its first row; with no
        // selected row it synthesizes the empty-input output instead.
        Ok(if acc.count > 0 {
            vec![(Vec::new(), acc)]
        } else {
            Vec::new()
        })
    }

    /// Grouped / tagged aggregation row-at-a-time, replicating
    /// [`HashAggregateOp::drain_input`] on borrowed rows. Chunk sources walk
    /// the per-piece selection bitmaps; rid sources walk the rid list in
    /// order, re-checking the compiled filter per row like [`ScanOp`].
    fn drain_rowwise(
        &self,
        narrow: bool,
        stats: &mut ExecStats,
    ) -> Result<Groups<P::Tag>, ExecError> {
        let rows = self.table.rows();
        let hasher = RandomState::new();
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut groups: Groups<P::Tag> = Vec::new();
        match &self.source {
            AggSource::Chunks { pieces, chunks } => {
                for &(lo, hi) in pieces {
                    let (_, sel) = self.select_piece(chunks, lo, hi, stats)?;
                    for j in sel.iter_ones() {
                        let rid = lo + j;
                        self.fold_row(rid, &rows[rid], narrow, &hasher, &mut index, &mut groups);
                    }
                }
            }
            AggSource::Rids(rids) => {
                // The whole rid probe is one pushdown unit; the surviving
                // rows are what the generic aggregate would have counted
                // batch-wise as `intermediate_rows`.
                let mut selected = 0u64;
                for &rid in rids {
                    let row = &rows[rid as usize];
                    if let Some(pred) = &self.filter {
                        if !pred.matches(row)? {
                            continue;
                        }
                    }
                    selected += 1;
                    self.fold_row(rid as usize, row, narrow, &hasher, &mut index, &mut groups);
                }
                stats.agg_pushdown_blocks += 1;
                stats.intermediate_rows += selected;
            }
        }
        Ok(groups)
    }

    /// Fold one selected row into its group: the per-row body of
    /// [`HashAggregateOp::drain_input`], verbatim, on a borrowed row.
    fn fold_row(
        &self,
        rid: usize,
        row: &Row,
        narrow: bool,
        hasher: &RandomState,
        index: &mut HashMap<u64, Vec<usize>>,
        groups: &mut Groups<P::Tag>,
    ) {
        let n_aggs = self.aggregates.len();
        let want_max = matches!(self.aggregates.first().map(|a| a.func), Some(AggFunc::Max));
        let tag = self
            .policy
            .seed_tag(self.table.name(), self.table.schema(), row, rid as u32);
        let h = hash_borrowed_key(hasher, self.group_idx.iter().map(|&i| &row[i]));
        let candidates = index.entry(h).or_default();
        let found = candidates.iter().copied().find(|&slot| {
            self.group_idx
                .iter()
                .zip(&groups[slot].0)
                .all(|(&i, k)| row[i] == *k)
        });
        let slot = match found {
            Some(slot) => slot,
            None => {
                let key: Vec<Value> = self.group_idx.iter().map(|&i| row[i].clone()).collect();
                let slot = groups.len();
                candidates.push(slot);
                groups.push((
                    key,
                    GroupAcc::new(
                        n_aggs,
                        if narrow {
                            tag.clone()
                        } else {
                            self.policy.empty_tag()
                        },
                    ),
                ));
                slot
            }
        };
        let acc = &mut groups[slot].1;
        acc.count += 1;
        for ai in 0..n_aggs {
            let v = &row[self.agg_cols[ai]];
            if v.is_null() {
                continue;
            }
            acc.non_null[ai] += 1;
            if let Some(f) = v.as_f64() {
                acc.sums[ai] += f;
            }
            match (v, acc.all_int[ai]) {
                (Value::Int(i), true) => acc.int_sums[ai] += i,
                _ => acc.all_int[ai] = false,
            }
            if acc.mins[ai].as_ref().is_none_or(|m| v < m) {
                acc.mins[ai] = Some(v.clone());
            }
            if acc.maxs[ai].as_ref().is_none_or(|m| v > m) {
                acc.maxs[ai] = Some(v.clone());
            }
            if narrow {
                let better = match &acc.witness {
                    None => true,
                    Some((best, _)) => {
                        if want_max {
                            v > best
                        } else {
                            v < best
                        }
                    }
                };
                if better {
                    acc.witness = Some((v.clone(), tag.clone()));
                }
            }
        }
        if !narrow {
            self.policy.merge_tags(&mut acc.tag, &tag);
        }
    }
}

/// Fold one chunk-column's selected values into the global accumulator.
///
/// Only reachable for columns [`numeric_column_shape`] accepted, so the
/// observable state is exactly what the row path would produce: for integer
/// layouts only `count`/`non_null`/`int_sums`/`mins`/`maxs` matter (`all_int`
/// stays true, `sums` is never read), which makes the run-length `k·value`
/// shortcut exact; for float columns `sums` accumulates per selected row in
/// row order, matching the row path's addition order bit-for-bit.
fn accumulate_column<T>(
    col: &ColumnVector,
    sel: &SelBitmap,
    base: usize,
    acc: &mut GroupAcc<T>,
    ai: usize,
) {
    match col.data() {
        ColumnData::Int(xs) => {
            for j in sel.iter_ones() {
                let i = base + j;
                if !col.is_null(i) {
                    note_int(acc, ai, xs[i], 1);
                }
            }
        }
        ColumnData::PackedInt(p) => {
            for j in sel.iter_ones() {
                let i = base + j;
                if !col.is_null(i) {
                    note_int(acc, ai, p.get(i), 1);
                }
            }
        }
        ColumnData::RleInt(runs) => {
            // The encoder merges NULL rows into runs; clear them from the
            // selection once so run counts only see real values.
            let no_nulls = sel_without_nulls(sel, col, base);
            let eff = no_nulls.as_ref().unwrap_or(sel);
            let n = sel.len();
            for (s, e, v) in runs.iter() {
                if e <= base {
                    continue;
                }
                if s >= base + n {
                    break;
                }
                let w_lo = s.max(base) - base;
                let w_hi = e.min(base + n) - base;
                let cnt = eff.count_range(w_lo, w_hi);
                if cnt > 0 {
                    note_int(acc, ai, v, cnt as i64);
                }
            }
        }
        ColumnData::Float(xs) => {
            for j in sel.iter_ones() {
                let i = base + j;
                if col.is_null(i) {
                    continue;
                }
                acc.non_null[ai] += 1;
                acc.sums[ai] += xs[i];
                acc.all_int[ai] = false;
                let v = Value::Float(xs[i]);
                if acc.mins[ai].as_ref().is_none_or(|m| &v < m) {
                    acc.mins[ai] = Some(v.clone());
                }
                if acc.maxs[ai].as_ref().is_none_or(|m| &v > m) {
                    acc.maxs[ai] = Some(v);
                }
            }
        }
        _ => unreachable!("column-at-a-time aggregation only runs on numeric columns"),
    }
}

/// Record `cnt` selected occurrences of integer value `v` for aggregate `ai`
/// — the run-length shortcut: a whole run folds into a SUM as `cnt · v` and
/// into MIN/MAX as a single compare.
fn note_int<T>(acc: &mut GroupAcc<T>, ai: usize, v: i64, cnt: i64) {
    acc.non_null[ai] += cnt;
    acc.int_sums[ai] += v * cnt;
    let val = Value::Int(v);
    if acc.mins[ai].as_ref().is_none_or(|m| &val < m) {
        acc.mins[ai] = Some(val.clone());
    }
    if acc.maxs[ai].as_ref().is_none_or(|m| &val > m) {
        acc.maxs[ai] = Some(val);
    }
}

impl<P: TagPolicy> BatchOp<P> for AggScanOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if !self.out.filled {
            self.drain(stats)?;
        }
        Ok(self.out.emit())
    }
}

struct HashJoinOp<'a, P: TagPolicy> {
    left: BoxOp<'a, P>,
    right: Option<BoxOp<'a, P>>,
    li: usize,
    ri: usize,
    policy: &'a P,
    hasher: RandomState,
    /// Build-side index keyed by the 64-bit key hash; the key itself lives
    /// only inside `build_rows` (no per-row key clone), so both build and
    /// probe compare candidates against the stored row's key column.
    build: HashMap<u64, Vec<usize>>,
    build_rows: Vec<(Row, P::Tag)>,
}

impl<P: TagPolicy> BatchOp<P> for HashJoinOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch(stats)? {
                stats.intermediate_rows += batch.len() as u64;
                for (row, tag) in batch.rows.into_iter().zip(batch.tags) {
                    let k = &row[self.ri];
                    if k.is_null() {
                        continue;
                    }
                    let h = hash_borrowed_key(&self.hasher, std::iter::once(k));
                    self.build.entry(h).or_default().push(self.build_rows.len());
                    self.build_rows.push((row, tag));
                }
            }
        }
        while let Some(batch) = self.left.next_batch(stats)? {
            stats.intermediate_rows += batch.len() as u64;
            let mut out = Batch::with_capacity(batch.len());
            for (lrow, ltag) in batch.rows.into_iter().zip(batch.tags) {
                let k = &lrow[self.li];
                if k.is_null() {
                    continue;
                }
                let h = hash_borrowed_key(&self.hasher, std::iter::once(k));
                if let Some(candidates) = self.build.get(&h) {
                    for &bi in candidates {
                        let (rrow, rtag) = &self.build_rows[bi];
                        if rrow[self.ri] != *k {
                            continue; // hash collision between distinct keys
                        }
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        let mut tag = ltag.clone();
                        self.policy.merge_tags(&mut tag, rtag);
                        out.push(row, tag);
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

struct NestedLoopCrossOp<'a, P: TagPolicy> {
    left: BoxOp<'a, P>,
    right: Option<BoxOp<'a, P>>,
    policy: &'a P,
    right_rows: Vec<(Row, P::Tag)>,
    pending: std::collections::VecDeque<(Row, P::Tag)>,
    current: Option<(Row, P::Tag)>,
    right_pos: usize,
    left_count: u64,
    done: bool,
}

impl<'a, P: TagPolicy> NestedLoopCrossOp<'a, P> {
    /// Pull the next left row, tracking the cardinality for the stats.
    fn advance_left(&mut self, stats: &mut ExecStats) -> Result<bool, ExecError> {
        // Left rows are pulled one batch at a time but consumed row-by-row:
        // buffer the current batch in `pending`.
        loop {
            if let Some((row, tag)) = self.pending.pop_front() {
                self.current = Some((row, tag));
                self.right_pos = 0;
                self.left_count += 1;
                return Ok(true);
            }
            match self.left.next_batch(stats)? {
                Some(batch) => {
                    self.pending.extend(batch.rows.into_iter().zip(batch.tags));
                }
                None => return Ok(false),
            }
        }
    }
}

impl<P: TagPolicy> BatchOp<P> for NestedLoopCrossOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch(stats)? {
                self.right_rows
                    .extend(batch.rows.into_iter().zip(batch.tags));
            }
        }
        let mut out = Batch::with_capacity(BATCH_SIZE);
        loop {
            if self.current.is_none() && !self.advance_left(stats)? {
                // Count the quadratic blow-up with saturating arithmetic
                // so pathological inputs cannot overflow the counter.
                stats.intermediate_rows = stats
                    .intermediate_rows
                    .saturating_add(self.left_count.saturating_mul(self.right_rows.len() as u64));
                self.done = true;
                break;
            }
            let (lrow, ltag) = self.current.as_ref().expect("set by advance_left");
            while self.right_pos < self.right_rows.len() && out.len() < BATCH_SIZE {
                let (rrow, rtag) = &self.right_rows[self.right_pos];
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                let mut tag = ltag.clone();
                self.policy.merge_tags(&mut tag, rtag);
                out.push(row, tag);
                self.right_pos += 1;
            }
            if self.right_pos >= self.right_rows.len() {
                self.current = None;
            }
            if out.len() >= BATCH_SIZE {
                break;
            }
        }
        Ok((!out.is_empty()).then_some(out))
    }
}

struct SortOp<'a, P: TagPolicy> {
    key_idx: Vec<(usize, bool)>,
    topk_limit: Option<usize>,
    input: Option<BoxOp<'a, P>>,
    out: Emitter<P::Tag>,
}

impl<P: TagPolicy> BatchOp<P> for SortOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if let Some(mut input) = self.input.take() {
            let mut rows: Vec<(Row, P::Tag)> = Vec::new();
            while let Some(batch) = input.next_batch(stats)? {
                rows.extend(batch.rows.into_iter().zip(batch.tags));
            }
            if let Some(limit) = self.topk_limit {
                // `(limit, input_rows)` re-validates top-k sketch safety at
                // runtime (footnote 1, Sec. 5 of the paper).
                stats.topk_inputs.push((limit, rows.len() as u64));
            }
            let key_idx = &self.key_idx;
            rows.sort_by(|(a, _), (b, _)| {
                for &(idx, desc) in key_idx {
                    let ord = a[idx].cmp(&b[idx]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                // Break ties deterministically using the remaining columns
                // (the paper's top-k operator assumes a total order).
                a.cmp(b)
            });
            self.out.fill(rows);
        }
        Ok(self.out.emit())
    }
}

struct DistinctOp<'a, P: TagPolicy> {
    policy: &'a P,
    input: Option<BoxOp<'a, P>>,
    out: Emitter<P::Tag>,
}

impl<P: TagPolicy> BatchOp<P> for DistinctOp<'_, P> {
    fn next_batch(&mut self, stats: &mut ExecStats) -> Result<Option<Batch<P::Tag>>, ExecError> {
        if let Some(mut input) = self.input.take() {
            // Keys are hashed as `Value` rows directly: `Value`'s `Hash` is
            // consistent with its exact `Eq`, so distinct 64-bit integers never
            // conflate even where their `f64` images collide. Each surviving
            // row is stored once (as the map key, with its arrival rank and
            // merged tag as the entry) — first occurrence wins, duplicates
            // only fold their tags in.
            let mut seen: HashMap<Row, (usize, P::Tag)> = HashMap::new();
            while let Some(batch) = input.next_batch(stats)? {
                for (row, tag) in batch.rows.into_iter().zip(batch.tags) {
                    match seen.get_mut(&row) {
                        Some((_, merged)) => self.policy.merge_tags(merged, &tag),
                        None => {
                            let rank = seen.len();
                            seen.insert(row, (rank, tag));
                        }
                    }
                }
            }
            let mut uniques: Vec<(usize, Row, P::Tag)> = seen
                .into_iter()
                .map(|(row, (rank, tag))| (rank, row, tag))
                .collect();
            uniques.sort_unstable_by_key(|(rank, _, _)| *rank);
            self.out.fill(
                uniques
                    .into_iter()
                    .map(|(_, row, tag)| (row, tag))
                    .collect(),
            );
        }
        Ok(self.out.emit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, SortKey};
    use pbds_storage::TableBuilder;

    fn indexed_db() -> Database {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(100).index("id");
        for i in 0..5_000i64 {
            b.push(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn zone_db() -> Database {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(100);
        for i in 0..5_000i64 {
            b.push(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn run(db: &Database, plan: &LogicalPlan, profile: EngineProfile) -> (Relation, ExecStats) {
        let mut stats = ExecStats::default();
        let (rel, _) = execute_logical(db, plan, profile, &NoTag, &mut stats).unwrap();
        (rel, stats)
    }

    #[test]
    fn lowering_pushes_selection_into_index_scan() {
        let db = indexed_db();
        let plan = LogicalPlan::scan("t").filter(col("id").between(lit(10), lit(20)));
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        assert!(
            matches!(physical.op, PhysOp::IndexRangeScan { .. }),
            "got:\n{}",
            physical.display_tree()
        );
    }

    #[test]
    fn lowering_falls_back_to_zone_map_then_seq() {
        let db = zone_db();
        let plan = LogicalPlan::scan("t").filter(col("id").between(lit(10), lit(20)));
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        assert!(matches!(physical.op, PhysOp::ZoneMapScan { .. }));
        // The columnar profile never skips.
        let physical = lower(&db, &plan, EngineProfile::ColumnarScan).unwrap();
        assert!(matches!(
            physical.op,
            PhysOp::SeqScan {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn lowering_splits_topk_into_sort_and_limit() {
        let db = indexed_db();
        let plan = LogicalPlan::scan("t").top_k(vec![SortKey::desc("id")], 3);
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        let PhysOp::Limit { limit, input } = &physical.op else {
            panic!("expected Limit, got:\n{}", physical.display_tree());
        };
        assert_eq!(*limit, 3);
        assert!(matches!(
            input.op,
            PhysOp::Sort {
                topk_limit: Some(3),
                ..
            }
        ));
    }

    #[test]
    fn selection_chain_collapses_into_one_scan() {
        let db = indexed_db();
        let plan = LogicalPlan::scan("t")
            .filter(col("id").ge(lit(100)))
            .filter(col("id").le(lit(110)));
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        assert!(matches!(physical.op, PhysOp::IndexRangeScan { .. }));
        let (rel, stats) = run(&db, &plan, EngineProfile::Indexed);
        assert_eq!(rel.len(), 11);
        assert_eq!(stats.index_scans, 1);
        assert_eq!(stats.rows_scanned, 11);
    }

    #[test]
    fn batches_flow_through_the_pipeline() {
        let db = zone_db();
        let plan = LogicalPlan::scan("t").filter(col("grp").eq(lit(3)));
        let (rel, stats) = run(&db, &plan, EngineProfile::ColumnarScan);
        assert_eq!(rel.len(), 714); // i % 7 == 3 for i in 0..5000
                                    // 5000 input rows = 5 scan batches, filtered in place.
        assert!(stats.batches >= 1);
        assert_eq!(stats.full_scans, 1);
    }

    #[test]
    fn profiles_agree_on_results() {
        let db = indexed_db();
        let db2 = zone_db();
        let plan = LogicalPlan::scan("t")
            .filter(col("id").between(lit(500), lit(1500)))
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
            )
            .top_k(vec![SortKey::desc("cnt")], 3);
        let (a, _) = run(&db, &plan, EngineProfile::Indexed);
        let (b, _) = run(&db, &plan, EngineProfile::ColumnarScan);
        let (c, _) = run(&db2, &plan, EngineProfile::Indexed);
        assert!(a.bag_eq(&b));
        assert!(a.bag_eq(&c));
    }

    #[test]
    fn limit_stops_pulling() {
        let db = zone_db();
        let plan = LogicalPlan::scan("t").top_k(vec![SortKey::asc("id")], 5);
        let (rel, stats) = run(&db, &plan, EngineProfile::Indexed);
        assert_eq!(rel.len(), 5);
        assert_eq!(stats.topk_inputs, vec![(5, 5_000)]);
    }

    #[test]
    fn distinct_merges_on_value_keys() {
        let schema = Schema::from_pairs(&[("v", DataType::Float)]);
        let mut b = TableBuilder::new("m", schema);
        b.push(vec![Value::Int(1)]);
        b.push(vec![Value::Float(1.0)]);
        b.push(vec![Value::Int(2)]);
        let mut db = Database::new();
        db.add_table(b.build());
        let plan = LogicalPlan::scan("m").distinct();
        let (rel, _) = run(&db, &plan, EngineProfile::Indexed);
        // Int(1) and Float(1.0) are equal values, so they deduplicate.
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn hash_operators_distinguish_ints_beyond_f64_precision() {
        // 2^53 and 2^53 + 1 share an f64 image; group-by, distinct and join
        // must still treat them as different keys.
        const BIG: i64 = 1 << 53;
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut b = TableBuilder::new("big", schema);
        b.push(vec![Value::Int(BIG), Value::Int(1)]);
        b.push(vec![Value::Int(BIG + 1), Value::Int(2)]);
        b.push(vec![Value::Int(BIG), Value::Int(3)]);
        let mut db = Database::new();
        db.add_table(b.build());

        let distinct = LogicalPlan::scan("big")
            .project(vec![(col("k"), "k")])
            .distinct();
        let (rel, _) = run(&db, &distinct, EngineProfile::Indexed);
        assert_eq!(rel.len(), 2);

        let grouped = LogicalPlan::scan("big").aggregate(
            vec!["k"],
            vec![AggExpr::new(AggFunc::Count, col("v"), "cnt")],
        );
        let (rel, _) = run(&db, &grouped, EngineProfile::Indexed);
        assert_eq!(rel.len(), 2);

        let join = LogicalPlan::scan("big").join(LogicalPlan::scan("big"), "k", "k");
        let (rel, _) = run(&db, &join, EngineProfile::Indexed);
        // BIG matches its two occurrences (2x2) and BIG+1 matches itself.
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn distinct_is_order_independent_for_mixed_int_float_keys() {
        // Float(2^53) == Int(2^53) but != Int(2^53 + 1): the result must not
        // depend on which row seeds the hash table.
        const BIG: i64 = 1 << 53;
        let variants = [
            [
                Value::Float(BIG as f64),
                Value::Int(BIG),
                Value::Int(BIG + 1),
            ],
            [
                Value::Int(BIG),
                Value::Int(BIG + 1),
                Value::Float(BIG as f64),
            ],
            [
                Value::Int(BIG + 1),
                Value::Float(BIG as f64),
                Value::Int(BIG),
            ],
        ];
        for rows in variants {
            let schema = Schema::from_pairs(&[("k", DataType::Float)]);
            let mut b = TableBuilder::new("m", schema);
            for v in rows.clone() {
                b.push(vec![v]);
            }
            let mut db = Database::new();
            db.add_table(b.build());
            let plan = LogicalPlan::scan("m").distinct();
            let (rel, _) = run(&db, &plan, EngineProfile::Indexed);
            assert_eq!(rel.len(), 2, "order variant {rows:?}");
        }
    }

    #[test]
    fn stale_physical_plan_errors_instead_of_panicking() {
        let db = indexed_db();
        let plan = LogicalPlan::scan("t").filter(col("id").between(lit(10), lit(20)));
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        assert!(matches!(physical.op, PhysOp::IndexRangeScan { .. }));
        // Replace the table with one that lost its index: the lowered plan
        // is now stale and must surface an error, not panic.
        let mut stale_db = Database::new();
        let t = db.table("t").unwrap();
        stale_db.add_table(Table::new("t", t.schema().clone(), t.rows().to_vec()));
        let mut stats = ExecStats::default();
        let err = execute_physical(&stale_db, &physical, &NoTag, &mut stats).unwrap_err();
        assert!(matches!(err, ExecError::Plan(_)), "got {err:?}");
    }

    #[test]
    fn cross_product_counter_saturates_instead_of_overflowing() {
        let mut stats = ExecStats {
            intermediate_rows: u64::MAX - 10,
            ..Default::default()
        };
        let db = zone_db();
        let plan = LogicalPlan::scan("t")
            .filter(col("id").lt(lit(3)))
            .cross(LogicalPlan::scan("t").filter(col("id").lt(lit(4))));
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        let (rel, _) = execute_physical(&db, &physical, &NoTag, &mut stats).unwrap();
        assert_eq!(rel.len(), 12);
        assert_eq!(stats.intermediate_rows, u64::MAX);
    }

    fn run_parallel(
        db: &Database,
        plan: &LogicalPlan,
        profile: EngineProfile,
        workers: usize,
    ) -> (Relation, ExecStats) {
        let mut stats = ExecStats::default();
        let (rel, _) =
            execute_logical_parallel(db, plan, profile, &NoTag, workers, &mut stats).unwrap();
        (rel, stats)
    }

    #[test]
    fn parallel_scan_matches_sequential_results_and_counters() {
        let db = zone_db(); // 5 000 rows > PARALLEL_SCAN_THRESHOLD
        let plans = [
            LogicalPlan::scan("t").filter(col("grp").eq(lit(3))),
            LogicalPlan::scan("t")
                .filter(col("id").between(lit(500), lit(4_200)))
                .aggregate(
                    vec!["grp"],
                    vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
                )
                .top_k(vec![SortKey::desc("cnt")], 3),
            LogicalPlan::scan("t").top_k(vec![SortKey::asc("id")], 7),
        ];
        for plan in &plans {
            let (seq_rel, seq_stats) = run(&db, plan, EngineProfile::ColumnarScan);
            for workers in [2, 4, 8] {
                let (par_rel, par_stats) =
                    run_parallel(&db, plan, EngineProfile::ColumnarScan, workers);
                // Row-for-row identical, not just bag-equal: morsels are
                // concatenated in table order.
                assert_eq!(seq_rel, par_rel, "workers={workers}");
                assert_eq!(seq_stats.rows_scanned, par_stats.rows_scanned);
                assert_eq!(seq_stats.full_scans, par_stats.full_scans);
            }
        }
    }

    #[test]
    fn parallel_zone_map_scan_keeps_skipping_stats() {
        let db = zone_db();
        let plan = LogicalPlan::scan("t").filter(col("id").between(lit(100), lit(4_900)));
        let (seq_rel, seq_stats) = run(&db, &plan, EngineProfile::Indexed);
        let (par_rel, par_stats) = run_parallel(&db, &plan, EngineProfile::Indexed, 4);
        assert_eq!(seq_rel, par_rel);
        assert_eq!(seq_stats.blocks_total, par_stats.blocks_total);
        assert_eq!(seq_stats.blocks_skipped, par_stats.blocks_skipped);
        assert_eq!(seq_stats.rows_scanned, par_stats.rows_scanned);
    }

    #[test]
    fn parallel_scan_declines_small_tables() {
        // A table below the threshold takes the sequential path (same
        // counters as a plain run — notably a single full scan).
        let schema = Schema::from_pairs(&[("v", DataType::Int)]);
        let mut b = TableBuilder::new("small", schema);
        for i in 0..100i64 {
            b.push(vec![Value::Int(i)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        let plan = LogicalPlan::scan("small").filter(col("v").lt(lit(50)));
        let (rel, stats) = run_parallel(&db, &plan, EngineProfile::ColumnarScan, 8);
        assert_eq!(rel.len(), 50);
        assert_eq!(stats.full_scans, 1);
        assert_eq!(stats.rows_scanned, 100);
    }

    #[test]
    fn scan_source_split_preserves_order_and_counts() {
        let src = ScanSource::Segments(vec![(0, 10), (20, 25), (30, 47)]);
        let total = src.row_count();
        let parts = src.split(4);
        assert!(parts.len() <= 4);
        let mut rids = Vec::new();
        let mut per_part = Vec::new();
        for p in parts {
            per_part.push(p.row_count());
            let mut it = p.into_rid_source();
            while let Some(r) = it.next_rid() {
                rids.push(r);
            }
        }
        assert_eq!(rids.len(), total);
        assert!(rids.windows(2).all(|w| w[0] < w[1]));
        // Roughly balanced: every part within the ceiling.
        assert!(per_part.iter().all(|&n| n <= total.div_ceil(4)));
    }

    #[test]
    fn display_tree_shows_access_paths() {
        let db = indexed_db();
        let plan = LogicalPlan::scan("t")
            .filter(col("id").gt(lit(10)))
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Count, col("id"), "cnt")],
            );
        let physical = lower(&db, &plan, EngineProfile::Indexed).unwrap();
        let text = physical.display_tree();
        assert!(text.contains("HashAggregate"));
        assert!(text.contains("IndexRangeScan"));
    }

    /// Execute with explicit options, returning relation + stats.
    fn run_with_opts(
        db: &Database,
        plan: &LogicalPlan,
        profile: EngineProfile,
        opts: ExecOptions,
    ) -> (Relation, ExecStats) {
        let mut stats = ExecStats::default();
        let (rel, _) = execute_logical_with(db, plan, profile, &NoTag, opts, &mut stats).unwrap();
        (rel, stats)
    }

    /// Options pinning the scan path statically (no adaptive re-decision).
    fn pinned(vectorized: bool) -> ExecOptions {
        ExecOptions {
            vectorized,
            adaptive: false,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn agg_pushdown_matches_row_path_on_global_aggregates() {
        let db = zone_db();
        // Pure-int columns + no groups + NoTag: the column-at-a-time path
        // with run shortcuts.
        let plan = LogicalPlan::scan("t")
            .filter(col("id").between(lit(500), lit(4_200)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Count, col("id"), "n"),
                    AggExpr::new(AggFunc::Sum, col("grp"), "total"),
                    AggExpr::new(AggFunc::Min, col("id"), "lo"),
                    AggExpr::new(AggFunc::Max, col("grp"), "hi"),
                ],
            );
        for profile in [EngineProfile::Indexed, EngineProfile::ColumnarScan] {
            let (fast, fast_stats) = run_with_opts(&db, &plan, profile, pinned(true));
            let (oracle, oracle_stats) = run_with_opts(&db, &plan, profile, pinned(false));
            assert_eq!(fast, oracle, "profile {profile:?}");
            assert_eq!(fast_stats.rows_scanned, oracle_stats.rows_scanned);
            assert!(fast_stats.agg_pushdown_blocks > 0);
            assert_eq!(oracle_stats.agg_pushdown_blocks, 0);
            assert_eq!(fast.value(0, "n"), Some(&Value::Int(3_701)));
            assert_eq!(fast.value(0, "lo"), Some(&Value::Int(500)));
            assert_eq!(fast.value(0, "hi"), Some(&Value::Int(6)));
        }
    }

    #[test]
    fn agg_pushdown_handles_index_rid_probes() {
        let db = indexed_db();
        // Under the Indexed profile the filter lowers to an IndexRangeScan:
        // the pushdown aggregates the rid list row-at-a-time, in rid order,
        // re-checking the predicate per row exactly like the generic ScanOp.
        let global = LogicalPlan::scan("t")
            .filter(col("id").between(lit(500), lit(4_200)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Count, col("id"), "n"),
                    AggExpr::new(AggFunc::Sum, col("grp"), "total"),
                ],
            );
        let (fast, fast_stats) = run_with_opts(&db, &global, EngineProfile::Indexed, pinned(true));
        let (oracle, oracle_stats) =
            run_with_opts(&db, &global, EngineProfile::Indexed, pinned(false));
        assert_eq!(fast, oracle);
        assert_eq!(fast.value(0, "n"), Some(&Value::Int(3_701)));
        assert_eq!(fast_stats.index_scans, 1);
        assert_eq!(fast_stats.rows_scanned, oracle_stats.rows_scanned);
        // The whole rid probe counts as one pushdown unit; no bitmap work.
        assert_eq!(fast_stats.agg_pushdown_blocks, 1);
        assert_eq!(fast_stats.vectorized_scans, 0);
        assert_eq!(fast_stats.vectorized_blocks, 0);
        assert_eq!(fast_stats.intermediate_rows, oracle_stats.intermediate_rows);

        // Grouping over a rid probe exercises the shared fold-row path.
        let grouped = LogicalPlan::scan("t")
            .filter(col("id").lt(lit(3_000)))
            .aggregate(
                vec!["grp"],
                vec![AggExpr::new(AggFunc::Avg, col("id"), "avg")],
            );
        let (fast, fast_stats) = run_with_opts(&db, &grouped, EngineProfile::Indexed, pinned(true));
        let (oracle, _) = run_with_opts(&db, &grouped, EngineProfile::Indexed, pinned(false));
        assert_eq!(fast, oracle);
        assert_eq!(fast_stats.intermediate_rows, 3_000);
    }

    #[test]
    fn agg_pushdown_matches_row_path_on_grouped_and_avg_aggregates() {
        let db = zone_db();
        // Group keys and AVG force the row-at-a-time pushdown variant; the
        // output (including group order) must still match the generic pair.
        let plan = LogicalPlan::scan("t")
            .filter(col("id").lt(lit(3_000)))
            .aggregate(
                vec!["grp"],
                vec![
                    AggExpr::new(AggFunc::Sum, col("id"), "total"),
                    AggExpr::new(AggFunc::Avg, col("id"), "avg"),
                ],
            );
        let (fast, fast_stats) =
            run_with_opts(&db, &plan, EngineProfile::ColumnarScan, pinned(true));
        let (oracle, _) = run_with_opts(&db, &plan, EngineProfile::ColumnarScan, pinned(false));
        assert_eq!(fast, oracle);
        assert!(fast_stats.agg_pushdown_blocks > 0);
        // A scan of [0, 3000) over 100-row blocks under a zone map... the
        // ColumnarScan profile always sequential-scans, so every block of the
        // table flows through the pushdown.
        assert_eq!(fast_stats.agg_pushdown_blocks, 50);
        assert_eq!(fast_stats.intermediate_rows, 3_000);
    }

    #[test]
    fn agg_pushdown_handles_unfiltered_scans_and_empty_selections() {
        let db = zone_db();
        let whole = LogicalPlan::scan("t")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("id"), "total")]);
        let (fast, fast_stats) =
            run_with_opts(&db, &whole, EngineProfile::ColumnarScan, pinned(true));
        let (oracle, _) = run_with_opts(&db, &whole, EngineProfile::ColumnarScan, pinned(false));
        assert_eq!(fast, oracle);
        assert_eq!(fast.value(0, "total"), Some(&Value::Int(4_999 * 5_000 / 2)));
        assert!(fast_stats.agg_pushdown_blocks > 0);
        // No pushed-down filter: no bitmap evaluation to count.
        assert_eq!(fast_stats.vectorized_blocks, 0);

        let empty = LogicalPlan::scan("t")
            .filter(col("id").lt(lit(0)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, col("id"), "total")]);
        let (fast, _) = run_with_opts(&db, &empty, EngineProfile::ColumnarScan, pinned(true));
        let (oracle, _) = run_with_opts(&db, &empty, EngineProfile::ColumnarScan, pinned(false));
        assert_eq!(fast, oracle);
        assert_eq!(fast.value(0, "total"), Some(&Value::Null));
        assert_eq!(fast.len(), 1);
    }

    #[test]
    fn agg_pushdown_declines_expression_inputs() {
        let db = zone_db();
        // `id * 2` is not a plain column: the generic operator pair keeps the
        // aggregate, and the result still matches the oracle.
        let plan = LogicalPlan::scan("t")
            .filter(col("id").lt(lit(100)))
            .aggregate(
                vec![],
                vec![AggExpr::new(AggFunc::Sum, col("id").mul(lit(2)), "total")],
            );
        let (fast, fast_stats) =
            run_with_opts(&db, &plan, EngineProfile::ColumnarScan, pinned(true));
        let (oracle, _) = run_with_opts(&db, &plan, EngineProfile::ColumnarScan, pinned(false));
        assert_eq!(fast, oracle);
        assert_eq!(fast_stats.agg_pushdown_blocks, 0);
        assert_eq!(fast.value(0, "total"), Some(&Value::Int(9_900)));
    }

    #[test]
    fn adaptive_lowering_follows_predicted_selectivity() {
        let db = zone_db();
        let opts = ExecOptions::default(); // vectorized + adaptive
        assert!(opts.adaptive);

        // ~2% selectivity: the bitmap path wins and is chosen.
        let narrow_scan = LogicalPlan::scan("t").filter(col("id").lt(lit(100)));
        let (rel, stats) = run_with_opts(&db, &narrow_scan, EngineProfile::ColumnarScan, opts);
        assert_eq!(rel.len(), 100);
        assert_eq!(stats.vectorized_scans, 1);

        // ~100% selectivity: everything materializes anyway; the scan is
        // adaptively lowered to the row loop (same rows, no bitmap pass).
        let full_scan = LogicalPlan::scan("t").filter(col("id").ge(lit(0)));
        let (rel, stats) = run_with_opts(&db, &full_scan, EngineProfile::ColumnarScan, opts);
        assert_eq!(rel.len(), 5_000);
        assert_eq!(stats.vectorized_scans, 0);
        assert_eq!(stats.vectorized_blocks, 0);

        // Observed feedback overrides the static estimate in both directions.
        let observed_high = ExecOptions {
            observed_selectivity: Some(1.0),
            ..ExecOptions::default()
        };
        let (_, stats) = run_with_opts(
            &db,
            &narrow_scan,
            EngineProfile::ColumnarScan,
            observed_high,
        );
        assert_eq!(stats.vectorized_scans, 0);
        let observed_low = ExecOptions {
            observed_selectivity: Some(0.01),
            ..ExecOptions::default()
        };
        let (_, stats) = run_with_opts(&db, &full_scan, EngineProfile::ColumnarScan, observed_low);
        assert_eq!(stats.vectorized_scans, 1);

        // The oracle override: vectorized off is never upgraded.
        let oracle = ExecOptions {
            vectorized: false,
            ..ExecOptions::default()
        };
        let (_, stats) = run_with_opts(&db, &narrow_scan, EngineProfile::ColumnarScan, oracle);
        assert_eq!(stats.vectorized_scans, 0);
    }

    #[test]
    fn adaptive_parallel_scan_matches_sequential_decision() {
        let db = zone_db();
        let full_scan = LogicalPlan::scan("t").filter(col("id").ge(lit(0)));
        let mut stats = ExecStats::default();
        let (rel, _) = execute_logical_parallel_with(
            &db,
            &full_scan,
            EngineProfile::ColumnarScan,
            &NoTag,
            4,
            ExecOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(rel.len(), 5_000);
        // Workers took the compiled row loop, not the chunk path.
        assert_eq!(stats.vectorized_scans, 0);
        assert_eq!(stats.vectorized_blocks, 0);
        assert_eq!(stats.rows_scanned, 5_000);
    }
}
