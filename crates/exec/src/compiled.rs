//! Compiled expressions: column names bound to schema indexes once.
//!
//! [`crate::eval::eval_expr`] re-resolves every column name by string
//! (`Schema::index_of`) *per row per expression node* — on the scan hot path
//! that lookup dominates predicate evaluation. A [`CompiledExpr`] is the same
//! expression with every `Expr::Column` resolved to a positional index once
//! per `(expr, schema)` pair; evaluation is then pure index arithmetic.
//!
//! Error behaviour is **identical** to the interpreter: binding never fails
//! eagerly. Unknown columns and unbound parameters compile to lazy error
//! nodes that only raise when (and if) the interpreter would have evaluated
//! them — short-circuiting `AND`/`OR`/`CASE` skip them exactly like
//! `eval_expr` does. `tests/compiled_expr_equivalence.rs` proves
//! `eval_expr == CompiledExpr::eval` (values *and* errors) by property
//! testing.

use crate::eval::{eval_binary, ExecError};
use pbds_algebra::{BinOp, Expr, RangeLookup};
use pbds_storage::{Row, Schema, Value, ValueRange};

/// A column reference resolved against a schema — or recorded as unknown, to
/// be raised lazily at evaluation time (matching the interpreter).
#[derive(Debug, Clone, PartialEq)]
pub enum ColRef {
    /// Position of the column in the input row.
    Idx(usize),
    /// The schema has no such column; evaluating this node errors.
    Unknown(String),
}

impl ColRef {
    fn bind(schema: &Schema, name: &str) -> ColRef {
        match schema.index_of(name) {
            Some(i) => ColRef::Idx(i),
            None => ColRef::Unknown(name.to_string()),
        }
    }

    #[inline]
    fn get<'r>(&self, row: &'r Row) -> Result<&'r Value, ExecError> {
        match self {
            ColRef::Idx(i) => Ok(&row[*i]),
            ColRef::Unknown(name) => Err(ExecError::UnknownColumn(name.clone())),
        }
    }

    /// The bound index, if the column resolved.
    pub fn index(&self) -> Option<usize> {
        match self {
            ColRef::Idx(i) => Some(*i),
            ColRef::Unknown(_) => None,
        }
    }
}

/// An [`Expr`] with all column references bound to row positions.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Bound column access.
    Column(ColRef),
    /// Constant.
    Literal(Value),
    /// Unbound parameter: errors when evaluated, like the interpreter.
    Param(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<CompiledExpr>,
        /// Right operand.
        right: Box<CompiledExpr>,
    },
    /// Short-circuit conjunction (NULL collapses to `false`).
    And(Vec<CompiledExpr>),
    /// Short-circuit disjunction.
    Or(Vec<CompiledExpr>),
    /// Negation (`NOT NULL`-ish inputs collapse to `false`).
    Not(Box<CompiledExpr>),
    /// NULL test.
    IsNull(Box<CompiledExpr>),
    /// `CASE WHEN … THEN … ELSE …`.
    Case {
        /// `(condition, result)` branches, tested in order.
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        /// Fallback result.
        otherwise: Box<CompiledExpr>,
    },
    /// Range membership on one column (sketch-injected predicate).
    InRanges {
        /// Bound column.
        column: ColRef,
        /// Ordered, non-overlapping ranges.
        ranges: Vec<ValueRange>,
        /// Lookup strategy.
        lookup: RangeLookup,
    },
    /// Sorted-list membership on a composite key.
    InList {
        /// Bound key columns.
        columns: Vec<ColRef>,
        /// Sorted member keys.
        keys: Vec<Vec<Value>>,
    },
}

impl CompiledExpr {
    /// Bind `expr`'s column names against `schema`. Never fails: unknown
    /// columns and parameters become lazy error nodes so evaluation reports
    /// exactly what the interpreter would.
    pub fn compile(expr: &Expr, schema: &Schema) -> CompiledExpr {
        match expr {
            Expr::Column(name) => CompiledExpr::Column(ColRef::bind(schema, name)),
            Expr::Literal(v) => CompiledExpr::Literal(v.clone()),
            Expr::Param(i) => CompiledExpr::Param(*i),
            Expr::Binary { op, left, right } => CompiledExpr::Binary {
                op: *op,
                left: Box::new(Self::compile(left, schema)),
                right: Box::new(Self::compile(right, schema)),
            },
            Expr::And(es) => {
                CompiledExpr::And(es.iter().map(|e| Self::compile(e, schema)).collect())
            }
            Expr::Or(es) => CompiledExpr::Or(es.iter().map(|e| Self::compile(e, schema)).collect()),
            Expr::Not(e) => CompiledExpr::Not(Box::new(Self::compile(e, schema))),
            Expr::IsNull(e) => CompiledExpr::IsNull(Box::new(Self::compile(e, schema))),
            Expr::Case {
                branches,
                otherwise,
            } => CompiledExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (Self::compile(c, schema), Self::compile(r, schema)))
                    .collect(),
                otherwise: Box::new(Self::compile(otherwise, schema)),
            },
            Expr::InRanges {
                column,
                ranges,
                lookup,
            } => CompiledExpr::InRanges {
                column: ColRef::bind(schema, column),
                ranges: ranges.clone(),
                lookup: *lookup,
            },
            Expr::InList { columns, keys } => CompiledExpr::InList {
                columns: columns.iter().map(|c| ColRef::bind(schema, c)).collect(),
                keys: keys.clone(),
            },
        }
    }

    /// Evaluate against one row. Semantics mirror
    /// [`crate::eval::eval_expr`] node for node.
    pub fn eval(&self, row: &Row) -> Result<Value, ExecError> {
        match self {
            CompiledExpr::Column(c) => Ok(c.get(row)?.clone()),
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Param(i) => Err(ExecError::UnboundParameter(*i)),
            CompiledExpr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                Ok(eval_binary(*op, &l, &r))
            }
            CompiledExpr::And(es) => {
                for e in es {
                    match e.eval(row)?.as_bool() {
                        Some(true) => {}
                        _ => return Ok(Value::Bool(false)),
                    }
                }
                Ok(Value::Bool(true))
            }
            CompiledExpr::Or(es) => {
                for e in es {
                    if e.eval(row)?.as_bool() == Some(true) {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            CompiledExpr::Not(e) => {
                let v = e.eval(row)?;
                Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Bool(false),
                })
            }
            CompiledExpr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            CompiledExpr::Case {
                branches,
                otherwise,
            } => {
                for (cond, result) in branches {
                    if cond.eval(row)?.as_bool() == Some(true) {
                        return result.eval(row);
                    }
                }
                otherwise.eval(row)
            }
            CompiledExpr::InRanges {
                column,
                ranges,
                lookup,
            } => {
                let v = column.get(row)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let found = match lookup {
                    RangeLookup::Linear => ranges.iter().any(|r| r.contains(v)),
                    RangeLookup::BinarySearch => {
                        let pos = ranges.partition_point(|r| match &r.hi {
                            Some(hi) => hi < v,
                            None => false,
                        });
                        ranges.get(pos).map(|r| r.contains(v)).unwrap_or(false)
                    }
                };
                Ok(Value::Bool(found))
            }
            CompiledExpr::InList { columns, keys } => {
                let mut key = Vec::with_capacity(columns.len());
                for c in columns {
                    key.push(c.get(row)?.clone());
                }
                Ok(Value::Bool(keys.binary_search(&key).is_ok()))
            }
        }
    }

    /// Evaluate as a predicate: SQL three-valued logic collapses NULL /
    /// unknown to `false` (mirrors [`crate::eval::eval_predicate`]).
    #[inline]
    pub fn matches(&self, row: &Row) -> Result<bool, ExecError> {
        Ok(self.eval(row)?.as_bool() == Some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_expr, eval_predicate};
    use pbds_algebra::{col, lit, param};
    use pbds_storage::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ])
    }

    fn row() -> Row {
        vec![
            Value::Int(6000),
            Value::from("San Diego"),
            Value::from("CA"),
        ]
    }

    #[test]
    fn compiled_matches_interpreter_on_basics() {
        let exprs = vec![
            col("state").eq(lit("CA")).and(col("popden").gt(lit(5000))),
            col("state").eq(lit("NY")).or(col("popden").lt(lit(100))),
            col("popden").mul(lit(2)).add(lit(1)),
            Expr::IsNull(Box::new(col("city"))),
            col("popden").gt(lit(10_000)).not(),
        ];
        let s = schema();
        let r = row();
        for e in exprs {
            let compiled = CompiledExpr::compile(&e, &s);
            assert_eq!(compiled.eval(&r), eval_expr(&e, &s, &r), "expr {e}");
        }
    }

    #[test]
    fn unknown_column_errors_lazily_like_the_interpreter() {
        let s = schema();
        let r = row();
        // The unknown column sits behind a short-circuit: neither path errors.
        let guarded = col("state").eq(lit("NY")).and(col("nope").gt(lit(1)));
        let compiled = CompiledExpr::compile(&guarded, &s);
        assert_eq!(compiled.eval(&r), eval_expr(&guarded, &s, &r));
        assert_eq!(compiled.eval(&r), Ok(Value::Bool(false)));
        // Reached directly: both error identically.
        let direct = col("nope").gt(lit(1));
        let compiled = CompiledExpr::compile(&direct, &s);
        assert_eq!(compiled.eval(&r), eval_expr(&direct, &s, &r));
        assert!(compiled.eval(&r).is_err());
    }

    #[test]
    fn unbound_param_parity() {
        let s = schema();
        let r = row();
        let e = col("popden").gt(param(0));
        let compiled = CompiledExpr::compile(&e, &s);
        assert_eq!(compiled.eval(&r), eval_expr(&e, &s, &r));
        assert_eq!(compiled.eval(&r), Err(ExecError::UnboundParameter(0)));
    }

    #[test]
    fn matches_collapses_null_like_eval_predicate() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]);
        let r: Row = vec![Value::Null];
        let e = col("a").gt(lit(1));
        let compiled = CompiledExpr::compile(&e, &s);
        assert_eq!(
            compiled.matches(&r).unwrap(),
            eval_predicate(&e, &s, &r).unwrap()
        );
        assert!(!compiled.matches(&r).unwrap());
    }
}
