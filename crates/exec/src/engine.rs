//! The query execution engine.
//!
//! A thin facade over the physical operator pipeline: [`Engine::execute`]
//! lowers the logical plan (see [`crate::physical::lower`]) and runs the
//! resulting operator tree without tags. The lowering performs the rewrite
//! PBDS relies on — selections sitting directly above a table scan are pushed
//! into the scan so that range predicates, including the ones PBDS injects
//! from provenance sketches, can be answered through indexes and zone maps.

use crate::eval::ExecError;
use crate::physical::{
    execute_logical_parallel_with, execute_logical_with, execute_physical_analyzed,
    execute_physical_parallel_with, execute_physical_with, lower, ExecOptions, NoTag, PhysicalPlan,
    PlanMetrics,
};
use crate::profile::EngineProfile;
use crate::stats::ExecStats;
use pbds_algebra::LogicalPlan;
use pbds_storage::{Database, Relation};
use pbds_telemetry::clock;

/// Result of executing a query: the output relation plus statistics.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The query result.
    pub relation: Relation,
    /// Execution counters and timing.
    pub stats: ExecStats,
}

/// The execution engine.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    profile: EngineProfile,
    /// Number of scan workers; `0` and `1` both mean sequential.
    parallelism: usize,
    /// Execution switches (vectorized scan path on by default).
    opts: ExecOptions,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineProfile::default())
    }
}

impl Engine {
    /// Create an engine with the given profile (sequential scans,
    /// vectorized scan filters).
    pub fn new(profile: EngineProfile) -> Self {
        Engine {
            profile,
            parallelism: 1,
            opts: ExecOptions::default(),
        }
    }

    /// Toggle the vectorized columnar scan path. With `false`, pushed-down
    /// scan filters run through the row-at-a-time expression interpreter —
    /// the oracle the vectorized path is proven byte-identical against, and
    /// the baseline of the `fig_scan_micro` benchmark. Results are identical
    /// either way; only speed changes.
    pub fn with_vectorization(mut self, on: bool) -> Self {
        self.opts.vectorized = on;
        self
    }

    /// Whether scans take the vectorized columnar path.
    pub fn vectorized(&self) -> bool {
        self.opts.vectorized
    }

    /// Toggle adaptive scan lowering (on by default): each vectorized scan
    /// re-decides between the bitmap path and the row loop from its predicted
    /// selectivity (see [`crate::scan::scan_prefers_vectorized`]). With
    /// `false`, [`Engine::with_vectorization`] is a static A/B switch — the
    /// configuration the `fig_scan_micro` benchmark measures.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.opts.adaptive = on;
        self
    }

    /// Whether scans re-decide their path adaptively.
    pub fn adaptive(&self) -> bool {
        self.opts.adaptive
    }

    /// Feed observed execution statistics back into the adaptive scan
    /// decision: the measured scan selectivity of a previous run of the same
    /// workload ([`ExecStats::observed_scan_selectivity`]) overrides the
    /// static table-stats estimate in subsequent executions.
    pub fn with_observed_stats(mut self, stats: &ExecStats) -> Self {
        self.opts.observed_selectivity = stats.observed_scan_selectivity();
        self
    }

    /// Use morsel-parallel base-table scans with (up to) `workers` threads.
    /// See [`crate::physical::execute_physical_parallel`] — results are
    /// identical to sequential execution; only wall-clock time and the
    /// `elapsed` statistic change.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// The engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Number of scan workers this engine uses (1 = sequential).
    pub fn parallelism(&self) -> usize {
        self.parallelism.max(1)
    }

    /// Execute a logical plan against a database: lower it to a physical
    /// plan, then run the batched operator pipeline without tags.
    pub fn execute(&self, db: &Database, plan: &LogicalPlan) -> Result<QueryOutput, ExecError> {
        let sw = clock::Stopwatch::start();
        let mut stats = ExecStats::default();
        let (relation, _tags) = if self.parallelism() > 1 {
            execute_logical_parallel_with(
                db,
                plan,
                self.profile,
                &NoTag,
                self.parallelism(),
                self.opts,
                &mut stats,
            )?
        } else {
            execute_logical_with(db, plan, self.profile, &NoTag, self.opts, &mut stats)?
        };
        stats.rows_output = relation.len() as u64;
        stats.elapsed = sw.elapsed();
        Ok(QueryOutput { relation, stats })
    }

    /// Lower a logical plan with this engine's profile (exposed so callers
    /// can inspect the chosen access paths, e.g. for `EXPLAIN`-style output).
    pub fn plan(&self, db: &Database, plan: &LogicalPlan) -> Result<PhysicalPlan, ExecError> {
        lower(db, plan, self.profile)
    }

    /// Execute a logical plan with per-operator instrumentation — `EXPLAIN
    /// ANALYZE`. Lowers the plan, runs it through
    /// [`execute_physical_analyzed`], and returns the result together with
    /// the physical plan and its per-operator metrics;
    /// [`AnalyzedQuery::render`] prints the annotated tree. Always runs
    /// sequentially regardless of [`Engine::with_parallelism`] — analyze
    /// output is about per-operator attribution, not peak throughput.
    pub fn explain_analyze(
        &self,
        db: &Database,
        plan: &LogicalPlan,
    ) -> Result<AnalyzedQuery, ExecError> {
        let sw = clock::Stopwatch::start();
        let physical = lower(db, plan, self.profile)?;
        let mut stats = ExecStats::default();
        let (relation, _tags, metrics) =
            execute_physical_analyzed(db, &physical, &NoTag, self.opts, &mut stats)?;
        stats.rows_output = relation.len() as u64;
        stats.elapsed = sw.elapsed();
        Ok(AnalyzedQuery {
            output: QueryOutput { relation, stats },
            physical,
            metrics,
        })
    }

    /// Execute an already-lowered physical plan.
    pub fn execute_physical(
        &self,
        db: &Database,
        plan: &PhysicalPlan,
    ) -> Result<QueryOutput, ExecError> {
        let sw = clock::Stopwatch::start();
        let mut stats = ExecStats::default();
        let (relation, _tags) = if self.parallelism() > 1 {
            execute_physical_parallel_with(
                db,
                plan,
                &NoTag,
                self.parallelism(),
                self.opts,
                &mut stats,
            )?
        } else {
            execute_physical_with(db, plan, &NoTag, self.opts, &mut stats)?
        };
        stats.rows_output = relation.len() as u64;
        stats.elapsed = sw.elapsed();
        Ok(QueryOutput { relation, stats })
    }
}

/// Result of [`Engine::explain_analyze`]: the query output plus the lowered
/// physical plan and its per-operator execution metrics.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The result relation and whole-query statistics.
    pub output: QueryOutput,
    /// The physical plan that ran.
    pub physical: PhysicalPlan,
    /// Per-operator metrics, indexed in the plan's pre-order.
    pub metrics: PlanMetrics,
}

impl AnalyzedQuery {
    /// Render the physical plan tree annotated with per-operator rows,
    /// batches, and elapsed time — the `EXPLAIN ANALYZE` output.
    pub fn render(&self) -> String {
        self.physical.render_analyze(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, AggExpr, AggFunc, SortKey};
    use pbds_storage::{DataType, Schema, TableBuilder, Value};

    /// The running-example `cities` relation from Fig. 1b.
    pub fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        b.block_size(2);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn engine() -> Engine {
        Engine::new(EngineProfile::Indexed)
    }

    #[test]
    fn q1_selection_returns_california_cities() {
        // Q1 from Fig. 1a.
        let plan = LogicalPlan::scan("cities")
            .filter(col("state").eq(lit("CA")))
            .project(vec![(col("city"), "city"), (col("popden"), "popden")]);
        let out = engine().execute(&cities_db(), &plan).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(
            out.relation.value(0, "city"),
            Some(&Value::from("San Diego"))
        );
    }

    #[test]
    fn q2_topk_returns_california() {
        // Q2 from Fig. 1a: state with the highest average popden.
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1);
        let out = engine().execute(&cities_db(), &plan).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.value(0, "state"), Some(&Value::from("CA")));
        assert_eq!(out.relation.value(0, "avgden"), Some(&Value::Float(5500.0)));
        assert_eq!(out.stats.topk_inputs, vec![(1, 4)]);
    }

    #[test]
    fn aggregate_count_sum_min_max() {
        let plan = LogicalPlan::scan("cities").aggregate(
            vec!["state"],
            vec![
                AggExpr::new(AggFunc::Count, col("city"), "cnt"),
                AggExpr::new(AggFunc::Sum, col("popden"), "total"),
                AggExpr::new(AggFunc::Min, col("popden"), "lo"),
                AggExpr::new(AggFunc::Max, col("popden"), "hi"),
            ],
        );
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        let ny = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::from("NY"))
            .unwrap();
        assert_eq!(ny[1], Value::Int(2));
        assert_eq!(ny[2], Value::Int(9000));
        assert_eq!(ny[3], Value::Int(2000));
        assert_eq!(ny[4], Value::Int(7000));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("state").eq(lit("ZZ")))
            .aggregate(
                vec![],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            );
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "cnt"), Some(&Value::Int(0)));
    }

    #[test]
    fn join_matches_on_key() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities").join(LogicalPlan::scan("regions"), "state", "st");
        let out = engine().execute(&db, &plan).unwrap().relation;
        assert_eq!(out.len(), 4); // 2 CA + 2 NY cities
        assert!(out.rows().iter().all(|r| r.len() == 5));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let plan = LogicalPlan::scan("cities")
            .project(vec![(col("state"), "state")])
            .distinct();
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn union_preserves_bag_semantics() {
        let scan = || LogicalPlan::scan("cities").project(vec![(col("state"), "state")]);
        let plan = scan().union(scan());
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 14);
    }

    #[test]
    fn cross_product_multiplies_cardinalities() {
        let small = LogicalPlan::scan("cities").filter(col("state").eq(lit("CA")));
        let plan = small
            .clone()
            .cross(LogicalPlan::scan("cities").filter(col("state").eq(lit("TX"))));
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn nested_aggregation_two_levels() {
        // C-Q2-style query: number of states having total popden > 8000.
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Sum, col("popden"), "total")],
            )
            .filter(col("total").gt(lit(8000)))
            .aggregate(
                vec![],
                vec![AggExpr::new(AggFunc::Count, col("state"), "cnt")],
            );
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        // CA=11000, NY=9000 qualify.
        assert_eq!(out.value(0, "cnt"), Some(&Value::Int(2)));
    }

    #[test]
    fn profiles_produce_identical_results() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(3000)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            );
        let a = Engine::new(EngineProfile::Indexed)
            .execute(&cities_db(), &plan)
            .unwrap()
            .relation;
        let b = Engine::new(EngineProfile::ColumnarScan)
            .execute(&cities_db(), &plan)
            .unwrap()
            .relation;
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn selection_chain_is_pushed_into_scan() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").ge(lit(4000)))
            .filter(col("popden").le(lit(6000)));
        let out = engine().execute(&cities_db(), &plan).unwrap();
        assert_eq!(out.relation.len(), 3);
        // The combined predicate should have been answered by the zone map:
        // blocks were considered for skipping.
        assert!(out.stats.blocks_total > 0);
    }

    #[test]
    fn topk_tie_breaking_is_deterministic() {
        let plan = LogicalPlan::scan("cities").top_k(vec![SortKey::asc("state")], 3);
        let out1 = engine().execute(&cities_db(), &plan).unwrap().relation;
        let out2 = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 3);
    }

    #[test]
    fn explain_analyze_matches_plain_execution_and_renders_rows() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(3000)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .top_k(vec![SortKey::desc("cnt")], 2);
        let e = engine();
        let plain = e.execute(&cities_db(), &plan).unwrap();
        let analyzed = e.explain_analyze(&cities_db(), &plan).unwrap();
        assert!(analyzed.output.relation.bag_eq(&plain.relation));
        assert_eq!(analyzed.metrics.ops.len(), analyzed.physical.node_count());
        // The root operator emitted exactly the result rows.
        let root = &analyzed.metrics.ops[0];
        assert!(root.ran);
        assert_eq!(root.rows_out, plain.relation.len() as u64);
        let rendered = analyzed.render();
        assert!(rendered.contains("rows="), "{rendered}");
        assert!(rendered.contains("elapsed="), "{rendered}");
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let e = engine();
        assert!(matches!(
            e.execute(&cities_db(), &LogicalPlan::scan("missing"))
                .unwrap_err(),
            ExecError::UnknownTable(_)
        ));
        let plan = LogicalPlan::scan("cities").filter(col("nope").gt(lit(1)));
        assert!(matches!(
            e.execute(&cities_db(), &plan).unwrap_err(),
            ExecError::UnknownColumn(_)
        ));
    }
}
