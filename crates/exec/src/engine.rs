//! The query execution engine.
//!
//! A straightforward materializing evaluator over the logical algebra. Its
//! one performance-relevant trick is exactly the one PBDS relies on:
//! selections sitting directly above a table scan are pushed into the scan so
//! that range predicates — including the ones PBDS injects from provenance
//! sketches — can be answered through indexes and zone maps.

use crate::eval::{eval_expr, eval_predicate, ExecError};
use crate::profile::EngineProfile;
use crate::scan::scan_table;
use crate::stats::ExecStats;
use pbds_algebra::{AggExpr, AggFunc, Expr, LogicalPlan, SortKey};
use pbds_storage::{Database, Relation, Row, Schema, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Result of executing a query: the output relation plus statistics.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The query result.
    pub relation: Relation,
    /// Execution counters and timing.
    pub stats: ExecStats,
}

/// The execution engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    profile: EngineProfile,
}

impl Engine {
    /// Create an engine with the given profile.
    pub fn new(profile: EngineProfile) -> Self {
        Engine { profile }
    }

    /// The engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Execute a logical plan against a database.
    pub fn execute(&self, db: &Database, plan: &LogicalPlan) -> Result<QueryOutput, ExecError> {
        let start = Instant::now();
        let mut stats = ExecStats::default();
        let relation = self.exec(db, plan, &mut stats)?;
        stats.rows_output = relation.len() as u64;
        stats.elapsed = start.elapsed();
        Ok(QueryOutput { relation, stats })
    }

    fn exec(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        stats: &mut ExecStats,
    ) -> Result<Relation, ExecError> {
        match plan {
            LogicalPlan::TableScan { table } => {
                let t = db.table(table)?;
                let rows = scan_table(t, None, self.profile, stats)?;
                Ok(Relation::new(t.schema().clone(), rows))
            }
            LogicalPlan::Selection { .. } => self.exec_selection(db, plan, stats),
            LogicalPlan::Projection { exprs, input } => {
                let child = self.exec(db, input, stats)?;
                let in_schema = child.schema().clone();
                let out_schema = plan.schema(db)?;
                let mut out = Relation::empty(out_schema);
                for row in child.rows() {
                    let mut new_row = Vec::with_capacity(exprs.len());
                    for (e, _) in exprs {
                        new_row.push(eval_expr(e, &in_schema, row)?);
                    }
                    out.push(new_row);
                }
                Ok(out)
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => {
                let child = self.exec(db, input, stats)?;
                stats.intermediate_rows += child.len() as u64;
                exec_aggregate(&child, group_by, aggregates, &plan.schema(db)?)
            }
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let l = self.exec(db, left, stats)?;
                let r = self.exec(db, right, stats)?;
                stats.intermediate_rows += (l.len() + r.len()) as u64;
                exec_hash_join(&l, &r, left_col, right_col, &plan.schema(db)?)
            }
            LogicalPlan::CrossProduct { left, right } => {
                let l = self.exec(db, left, stats)?;
                let r = self.exec(db, right, stats)?;
                stats.intermediate_rows += (l.len() * r.len()) as u64;
                let mut out = Relation::empty(plan.schema(db)?);
                for lr in l.rows() {
                    for rr in r.rows() {
                        let mut row = lr.clone();
                        row.extend(rr.iter().cloned());
                        out.push(row);
                    }
                }
                Ok(out)
            }
            LogicalPlan::Distinct { input } => {
                let child = self.exec(db, input, stats)?;
                let mut seen: Vec<Row> = Vec::new();
                let mut set = std::collections::HashSet::new();
                for row in child.rows() {
                    let key: Vec<String> = row.iter().map(|v| format!("{v:?}")).collect();
                    if set.insert(key) {
                        seen.push(row.clone());
                    }
                }
                Ok(Relation::new(child.schema().clone(), seen))
            }
            LogicalPlan::TopK {
                order_by,
                limit,
                input,
            } => {
                let child = self.exec(db, input, stats)?;
                stats.topk_inputs.push((*limit, child.len() as u64));
                exec_top_k(&child, order_by, *limit)
            }
            LogicalPlan::Union { left, right } => {
                let l = self.exec(db, left, stats)?;
                let r = self.exec(db, right, stats)?;
                let mut rows = l.rows().to_vec();
                rows.extend(r.rows().iter().cloned());
                Ok(Relation::new(l.schema().clone(), rows))
            }
        }
    }

    /// Execute a (chain of) selection(s); when the chain bottoms out at a
    /// table scan the combined predicate is pushed into the scan.
    fn exec_selection(
        &self,
        db: &Database,
        plan: &LogicalPlan,
        stats: &mut ExecStats,
    ) -> Result<Relation, ExecError> {
        // Collect the conjunction of predicates down a chain of selections.
        let mut predicates: Vec<Expr> = Vec::new();
        let mut node = plan;
        while let LogicalPlan::Selection { predicate, input } = node {
            predicates.push(predicate.clone());
            node = input;
        }
        let combined = if predicates.len() == 1 {
            predicates[0].clone()
        } else {
            Expr::And(predicates.clone())
        };

        if let LogicalPlan::TableScan { table } = node {
            let t = db.table(table)?;
            let rows = scan_table(t, Some(&combined), self.profile, stats)?;
            return Ok(Relation::new(t.schema().clone(), rows));
        }

        // Generic case: evaluate the child and filter.
        let child = self.exec(db, node, stats)?;
        let schema = child.schema().clone();
        let mut out = Relation::empty(schema.clone());
        for row in child.rows() {
            if eval_predicate(&combined, &schema, row)? {
                out.push(row.clone());
            }
        }
        Ok(out)
    }
}

/// Hash aggregation.
fn exec_aggregate(
    input: &Relation,
    group_by: &[String],
    aggregates: &[AggExpr],
    out_schema: &Schema,
) -> Result<Relation, ExecError> {
    let in_schema = input.schema();
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| {
            in_schema
                .index_of(g)
                .ok_or_else(|| ExecError::UnknownColumn(g.clone()))
        })
        .collect::<Result<_, _>>()?;

    #[derive(Clone)]
    struct Acc {
        count: i64,
        sums: Vec<f64>,
        int_sums: Vec<i64>,
        all_int: Vec<bool>,
        mins: Vec<Option<Value>>,
        maxs: Vec<Option<Value>>,
        non_null: Vec<i64>,
    }

    let new_acc = |n: usize| Acc {
        count: 0,
        sums: vec![0.0; n],
        int_sums: vec![0; n],
        all_int: vec![true; n],
        mins: vec![None; n],
        maxs: vec![None; n],
        non_null: vec![0; n],
    };

    let mut groups: HashMap<Vec<Value>, Acc> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();

    for row in input.rows() {
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let acc = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            new_acc(aggregates.len())
        });
        acc.count += 1;
        for (ai, agg) in aggregates.iter().enumerate() {
            let v = eval_expr(&agg.input, in_schema, row)?;
            if v.is_null() {
                continue;
            }
            acc.non_null[ai] += 1;
            if let Some(f) = v.as_f64() {
                acc.sums[ai] += f;
            }
            match (&v, acc.all_int[ai]) {
                (Value::Int(i), true) => acc.int_sums[ai] += i,
                _ => acc.all_int[ai] = false,
            }
            if acc.mins[ai].as_ref().map_or(true, |m| &v < m) {
                acc.mins[ai] = Some(v.clone());
            }
            if acc.maxs[ai].as_ref().map_or(true, |m| &v > m) {
                acc.maxs[ai] = Some(v.clone());
            }
        }
    }

    let mut out = Relation::empty(out_schema.clone());
    // Global aggregation over an empty input still produces one row
    // (count = 0, other aggregates NULL), matching SQL semantics.
    if order.is_empty() && group_by.is_empty() {
        let mut row: Vec<Value> = Vec::new();
        for agg in aggregates {
            row.push(match agg.func {
                AggFunc::Count => Value::Int(0),
                _ => Value::Null,
            });
        }
        out.push(row);
        return Ok(out);
    }

    for key in order {
        let acc = &groups[&key];
        let mut row = key.clone();
        for (ai, agg) in aggregates.iter().enumerate() {
            let v = match agg.func {
                AggFunc::Count => Value::Int(acc.count),
                AggFunc::Sum => {
                    if acc.non_null[ai] == 0 {
                        Value::Null
                    } else if acc.all_int[ai] {
                        Value::Int(acc.int_sums[ai])
                    } else {
                        Value::Float(acc.sums[ai])
                    }
                }
                AggFunc::Avg => {
                    if acc.non_null[ai] == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sums[ai] / acc.non_null[ai] as f64)
                    }
                }
                AggFunc::Min => acc.mins[ai].clone().unwrap_or(Value::Null),
                AggFunc::Max => acc.maxs[ai].clone().unwrap_or(Value::Null),
            };
            row.push(v);
        }
        out.push(row);
    }
    Ok(out)
}

/// Hash equi-join.
fn exec_hash_join(
    left: &Relation,
    right: &Relation,
    left_col: &str,
    right_col: &str,
    out_schema: &Schema,
) -> Result<Relation, ExecError> {
    let li = left
        .schema()
        .index_of(left_col)
        .ok_or_else(|| ExecError::UnknownColumn(left_col.to_string()))?;
    let ri = right
        .schema()
        .index_of(right_col)
        .ok_or_else(|| ExecError::UnknownColumn(right_col.to_string()))?;

    let mut build: HashMap<Value, Vec<&Row>> = HashMap::new();
    for row in right.rows() {
        let k = &row[ri];
        if k.is_null() {
            continue;
        }
        build.entry(k.clone()).or_default().push(row);
    }

    let mut out = Relation::empty(out_schema.clone());
    for lrow in left.rows() {
        let k = &lrow[li];
        if k.is_null() {
            continue;
        }
        if let Some(matches) = build.get(k) {
            for rrow in matches {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Top-k: sort by the keys and keep the first `limit` rows.
fn exec_top_k(
    input: &Relation,
    order_by: &[SortKey],
    limit: usize,
) -> Result<Relation, ExecError> {
    let schema = input.schema();
    let key_idx: Vec<(usize, bool)> = order_by
        .iter()
        .map(|k| {
            schema
                .index_of(&k.column)
                .map(|i| (i, k.descending))
                .ok_or_else(|| ExecError::UnknownColumn(k.column.clone()))
        })
        .collect::<Result<_, _>>()?;

    let mut rows = input.rows().to_vec();
    rows.sort_by(|a, b| {
        for &(idx, desc) in &key_idx {
            let ord = a[idx].cmp(&b[idx]);
            let ord = if desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        // Break ties deterministically using the remaining columns (the
        // paper's top-k operator assumes a total order).
        a.cmp(b)
    });
    rows.truncate(limit);
    Ok(Relation::new(schema.clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit};
    use pbds_storage::{DataType, TableBuilder};

    /// The running-example `cities` relation from Fig. 1b.
    pub fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        b.block_size(2);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![Value::Int(popden), Value::from(city), Value::from(state)]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn engine() -> Engine {
        Engine::new(EngineProfile::Indexed)
    }

    #[test]
    fn q1_selection_returns_california_cities() {
        // Q1 from Fig. 1a.
        let plan = LogicalPlan::scan("cities")
            .filter(col("state").eq(lit("CA")))
            .project(vec![(col("city"), "city"), (col("popden"), "popden")]);
        let out = engine().execute(&cities_db(), &plan).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.relation.value(0, "city"), Some(&Value::from("San Diego")));
    }

    #[test]
    fn q2_topk_returns_california() {
        // Q2 from Fig. 1a: state with the highest average popden.
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1);
        let out = engine().execute(&cities_db(), &plan).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.value(0, "state"), Some(&Value::from("CA")));
        assert_eq!(out.relation.value(0, "avgden"), Some(&Value::Float(5500.0)));
        assert_eq!(out.stats.topk_inputs, vec![(1, 4)]);
    }

    #[test]
    fn aggregate_count_sum_min_max() {
        let plan = LogicalPlan::scan("cities").aggregate(
            vec!["state"],
            vec![
                AggExpr::new(AggFunc::Count, col("city"), "cnt"),
                AggExpr::new(AggFunc::Sum, col("popden"), "total"),
                AggExpr::new(AggFunc::Min, col("popden"), "lo"),
                AggExpr::new(AggFunc::Max, col("popden"), "hi"),
            ],
        );
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        let ny = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::from("NY"))
            .unwrap();
        assert_eq!(ny[1], Value::Int(2));
        assert_eq!(ny[2], Value::Int(9000));
        assert_eq!(ny[3], Value::Int(2000));
        assert_eq!(ny[4], Value::Int(7000));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("state").eq(lit("ZZ")))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")]);
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, "cnt"), Some(&Value::Int(0)));
    }

    #[test]
    fn join_matches_on_key() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities").join(LogicalPlan::scan("regions"), "state", "st");
        let out = engine().execute(&db, &plan).unwrap().relation;
        assert_eq!(out.len(), 4); // 2 CA + 2 NY cities
        assert!(out.rows().iter().all(|r| r.len() == 5));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let plan = LogicalPlan::scan("cities")
            .project(vec![(col("state"), "state")])
            .distinct();
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn union_preserves_bag_semantics() {
        let scan = || LogicalPlan::scan("cities").project(vec![(col("state"), "state")]);
        let plan = scan().union(scan());
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 14);
    }

    #[test]
    fn cross_product_multiplies_cardinalities() {
        let small = LogicalPlan::scan("cities").filter(col("state").eq(lit("CA")));
        let plan = small
            .clone()
            .cross(LogicalPlan::scan("cities").filter(col("state").eq(lit("TX"))));
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn nested_aggregation_two_levels() {
        // C-Q2-style query: number of states having total popden > 8000.
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Sum, col("popden"), "total")],
            )
            .filter(col("total").gt(lit(8000)))
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, col("state"), "cnt")]);
        let out = engine().execute(&cities_db(), &plan).unwrap().relation;
        // CA=11000, NY=9000 qualify.
        assert_eq!(out.value(0, "cnt"), Some(&Value::Int(2)));
    }

    #[test]
    fn profiles_produce_identical_results() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(lit(3000)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            );
        let a = Engine::new(EngineProfile::Indexed)
            .execute(&cities_db(), &plan)
            .unwrap()
            .relation;
        let b = Engine::new(EngineProfile::ColumnarScan)
            .execute(&cities_db(), &plan)
            .unwrap()
            .relation;
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn selection_chain_is_pushed_into_scan() {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").ge(lit(4000)))
            .filter(col("popden").le(lit(6000)));
        let out = engine().execute(&cities_db(), &plan).unwrap();
        assert_eq!(out.relation.len(), 3);
        // The combined predicate should have been answered by the zone map:
        // blocks were considered for skipping.
        assert!(out.stats.blocks_total > 0);
    }

    #[test]
    fn topk_tie_breaking_is_deterministic() {
        let plan = LogicalPlan::scan("cities").top_k(vec![SortKey::asc("state")], 3);
        let out1 = engine().execute(&cities_db(), &plan).unwrap().relation;
        let out2 = engine().execute(&cities_db(), &plan).unwrap().relation;
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 3);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let e = engine();
        assert!(matches!(
            e.execute(&cities_db(), &LogicalPlan::scan("missing")).unwrap_err(),
            ExecError::UnknownTable(_)
        ));
        let plan = LogicalPlan::scan("cities").filter(col("nope").gt(lit(1)));
        assert!(matches!(
            e.execute(&cities_db(), &plan).unwrap_err(),
            ExecError::UnknownColumn(_)
        ));
    }
}
