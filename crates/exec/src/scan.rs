//! Table scans with access-path selection.
//!
//! This is where PBDS's benefit materializes: when the predicate above a scan
//! constrains a column to a set of value ranges (either because the original
//! query had such a condition, or because PBDS injected the range condition
//! derived from a provenance sketch, Sec. 8), the scan can answer it through
//! an ordered index or skip zone-map blocks instead of reading every row.

use crate::eval::ExecError;
use crate::profile::EngineProfile;
use crate::stats::ExecStats;
use pbds_algebra::{BinOp, Expr};
use pbds_storage::{Row, Table, Value};

/// Inclusive value range used for probing indexes and zone maps.
pub type InclusiveRange = (Option<Value>, Option<Value>);

/// Ranges on a single column extracted from a predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRanges {
    /// The constrained column.
    pub column: String,
    /// Union of inclusive ranges the column must fall into.
    pub ranges: Vec<InclusiveRange>,
    /// True when the ranges came from a PBDS sketch predicate
    /// ([`Expr::InRanges`]); such ranges are preferred for access-path
    /// selection because they are typically the most selective.
    pub from_sketch: bool,
}

fn cmp_to_range(op: BinOp, v: &Value) -> Option<InclusiveRange> {
    match op {
        BinOp::Eq => Some((Some(v.clone()), Some(v.clone()))),
        BinOp::Lt | BinOp::Le => Some((None, Some(v.clone()))),
        BinOp::Gt | BinOp::Ge => Some((Some(v.clone()), None)),
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Intersect two inclusive ranges.
fn intersect(a: &InclusiveRange, b: &InclusiveRange) -> InclusiveRange {
    let lo = match (&a.0, &b.0) {
        (Some(x), Some(y)) => Some(x.clone().max(y.clone())),
        (Some(x), None) | (None, Some(x)) => Some(x.clone()),
        (None, None) => None,
    };
    let hi = match (&a.1, &b.1) {
        (Some(x), Some(y)) => Some(x.clone().min(y.clone())),
        (Some(x), None) | (None, Some(x)) => Some(x.clone()),
        (None, None) => None,
    };
    (lo, hi)
}

/// Ranges implied by a *single conjunct* for a single column, if any.
fn conjunct_ranges(e: &Expr) -> Option<ColumnRanges> {
    match e {
        Expr::InRanges { column, ranges, .. } => Some(ColumnRanges {
            column: column.clone(),
            ranges: ranges.iter().map(|r| r.inclusive_bounds()).collect(),
            from_sketch: true,
        }),
        // A single-column membership list (composite/PSMIX sketch over one
        // attribute) is a union of point ranges.
        Expr::InList { columns, keys } if columns.len() == 1 => Some(ColumnRanges {
            column: columns[0].clone(),
            ranges: keys
                .iter()
                .map(|k| (Some(k[0].clone()), Some(k[0].clone())))
                .collect(),
            from_sketch: true,
        }),
        Expr::Binary { op, left, right } if op.is_comparison() => match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) => cmp_to_range(*op, v).map(|r| ColumnRanges {
                column: c.clone(),
                ranges: vec![r],
                from_sketch: false,
            }),
            (Expr::Literal(v), Expr::Column(c)) => {
                cmp_to_range(flip(*op), v).map(|r| ColumnRanges {
                    column: c.clone(),
                    ranges: vec![r],
                    from_sketch: false,
                })
            }
            _ => None,
        },
        Expr::And(es) => {
            // A conjunction constraining one column (e.g. BETWEEN) intersects
            // into a single range.
            let mut acc: Option<ColumnRanges> = None;
            for part in es {
                let cr = conjunct_ranges(part)?;
                if cr.ranges.len() != 1 {
                    return None;
                }
                match &mut acc {
                    None => acc = Some(cr),
                    Some(prev) => {
                        if prev.column != cr.column {
                            return None;
                        }
                        prev.ranges[0] = intersect(&prev.ranges[0], &cr.ranges[0]);
                        prev.from_sketch |= cr.from_sketch;
                    }
                }
            }
            acc
        }
        Expr::Or(es) => {
            // A disjunction of range conditions on the same column unions the
            // ranges (this is the "OR of BETWEENs" form of a sketch filter).
            let mut column: Option<String> = None;
            let mut ranges = Vec::new();
            let mut from_sketch = false;
            for part in es {
                let cr = conjunct_ranges(part)?;
                match &column {
                    None => column = Some(cr.column.clone()),
                    Some(c) if *c != cr.column => return None,
                    _ => {}
                }
                ranges.extend(cr.ranges);
                from_sketch |= cr.from_sketch;
            }
            column.map(|column| ColumnRanges {
                column,
                ranges,
                from_sketch,
            })
        }
        _ => None,
    }
}

/// Extract, from a (possibly conjunctive) predicate, the column-range
/// constraint the scan should use for skipping. When several columns are
/// constrained, sketch-derived constraints win, then constraints with both
/// bounds, then anything else.
pub fn extract_skip_ranges(pred: &Expr) -> Option<ColumnRanges> {
    let mut per_column: Vec<ColumnRanges> = Vec::new();
    for conjunct in pred.conjuncts() {
        if let Some(cr) = conjunct_ranges(conjunct) {
            if let Some(existing) = per_column.iter_mut().find(|c| c.column == cr.column) {
                // Multiple conjuncts on the same column: if both are single
                // ranges, intersect; otherwise keep the more specific (sketch)
                // one.
                if existing.ranges.len() == 1 && cr.ranges.len() == 1 {
                    existing.ranges[0] = intersect(&existing.ranges[0], &cr.ranges[0]);
                    existing.from_sketch |= cr.from_sketch;
                } else if cr.from_sketch && !existing.from_sketch {
                    *existing = cr;
                }
            } else {
                per_column.push(cr);
            }
        }
    }
    per_column.sort_by_key(|cr| {
        let bounded = cr
            .ranges
            .iter()
            .all(|(lo, hi)| lo.is_some() && hi.is_some());
        // Lower key = preferred.
        (
            if cr.from_sketch { 0 } else { 1 },
            if bounded { 0 } else { 1 },
        )
    });
    per_column.into_iter().next()
}

/// Selectivity above which the adaptive lowering prefers the row loop over
/// the vectorized bitmap path: when (almost) every row survives the filter,
/// the bitmap pass is pure overhead — everything gets materialized anyway.
pub const VECTORIZED_SELECTIVITY_CUTOFF: f64 = 0.95;

/// The adaptive scan-lowering decision: take the vectorized chunk path
/// unless the predicted selectivity says nearly every row survives
/// ([`VECTORIZED_SELECTIVITY_CUTOFF`]). An unknown selectivity (`None`)
/// keeps the vectorized default.
pub fn scan_prefers_vectorized(predicted_selectivity: Option<f64>) -> bool {
    predicted_selectivity.is_none_or(|s| s < VECTORIZED_SELECTIVITY_CUTOFF)
}

/// Cheap static selectivity estimate for a pushed-down scan predicate, used
/// by the adaptive lowering when no observed feedback is available.
///
/// Takes the column-range constraint the scan would skip with
/// ([`extract_skip_ranges`]) and sizes it against the column's statistics:
/// point ranges estimate `1 / distinct`, bounded ranges the overlapped
/// fraction of the `[min, max]` domain (assuming a uniform distribution —
/// this feeds a binary path decision, not a cost model). `None` when the
/// predicate yields no range constraint or the column's stats are unusable
/// (non-numeric bounds, empty column).
pub fn estimate_scan_selectivity(table: &Table, pred: &Expr) -> Option<f64> {
    let cr = extract_skip_ranges(pred)?;
    let stats = table.stats();
    let col = stats.column(&cr.column)?;
    let (min, max) = match (&col.min, &col.max) {
        (Some(min), Some(max)) => (min.as_f64()?, max.as_f64()?),
        _ => return None,
    };
    let width = max - min;
    let mut fraction = 0.0;
    for (lo, hi) in &cr.ranges {
        let lo_f = match lo {
            Some(v) => v.as_f64()?,
            None => min,
        };
        let hi_f = match hi {
            Some(v) => v.as_f64()?,
            None => max,
        };
        if hi_f < lo_f {
            continue;
        }
        fraction += if lo_f == hi_f {
            // Point range: one value out of the distinct ones.
            1.0 / col.distinct.max(1) as f64
        } else if width <= 0.0 {
            // Single-valued domain: the range either covers it or not.
            if lo_f <= min && max <= hi_f {
                1.0
            } else {
                0.0
            }
        } else {
            (hi_f.min(max) - lo_f.max(min)).max(0.0) / width
        };
    }
    Some(fraction.clamp(0.0, 1.0))
}

/// Scan a base table with an optional pushed-down predicate, using the most
/// appropriate access path allowed by the engine profile. The full predicate
/// is always re-checked per row, so the access path only affects performance
/// and the recorded statistics, never correctness.
///
/// This is a convenience wrapper over the physical scan operators: it lowers
/// the access (see [`crate::physical::lower_scan`]) and drains the resulting
/// operator, so standalone scans and pipeline scans share one code path.
pub fn scan_table(
    table: &Table,
    predicate: Option<&Expr>,
    profile: EngineProfile,
    stats: &mut ExecStats,
) -> Result<Vec<Row>, ExecError> {
    use crate::physical::{lower_scan, make_scan_op, ExecOptions, NoTag};
    let plan = lower_scan(table, predicate.cloned(), profile);
    let mut op = make_scan_op(table, &plan.op, &NoTag, ExecOptions::default(), stats)?;
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch(stats)? {
        rows.extend(batch.rows);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, RangeLookup};
    use pbds_storage::{DataType, Schema, TableBuilder, ValueRange};

    fn table(indexed: bool) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.block_size(100);
        if indexed {
            b.index("id");
        }
        for i in 0..10_000i64 {
            b.push(vec![Value::Int(i), Value::Int(i % 13)]);
        }
        b.build()
    }

    #[test]
    fn extract_single_comparison() {
        let cr = extract_skip_ranges(&col("id").gt(lit(50))).unwrap();
        assert_eq!(cr.column, "id");
        assert_eq!(cr.ranges, vec![(Some(Value::Int(50)), None)]);
    }

    #[test]
    fn extract_between_intersects_bounds() {
        let cr = extract_skip_ranges(&col("id").between(lit(10), lit(20))).unwrap();
        assert_eq!(
            cr.ranges,
            vec![(Some(Value::Int(10)), Some(Value::Int(20)))]
        );
    }

    #[test]
    fn extract_prefers_sketch_ranges() {
        let sketch = Expr::InRanges {
            column: "grp".into(),
            ranges: vec![ValueRange {
                lo: None,
                hi: Some(Value::Int(3)),
            }],
            lookup: RangeLookup::BinarySearch,
        };
        let pred = col("id").gt(lit(0)).and(sketch);
        let cr = extract_skip_ranges(&pred).unwrap();
        assert_eq!(cr.column, "grp");
        assert!(cr.from_sketch);
    }

    #[test]
    fn extract_or_of_ranges_on_same_column() {
        let pred = col("id")
            .between(lit(1), lit(5))
            .or(col("id").between(lit(100), lit(200)));
        let cr = extract_skip_ranges(&pred).unwrap();
        assert_eq!(cr.ranges.len(), 2);
    }

    #[test]
    fn extract_rejects_or_over_different_columns() {
        let pred = col("id").gt(lit(1)).or(col("grp").lt(lit(5)));
        assert!(extract_skip_ranges(&pred).is_none());
    }

    #[test]
    fn index_scan_reads_fewer_rows() {
        let t = table(true);
        let pred = col("id").between(lit(100), lit(199));
        let mut stats = ExecStats::default();
        let rows = scan_table(&t, Some(&pred), EngineProfile::Indexed, &mut stats).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(stats.index_scans, 1);
        assert_eq!(stats.rows_scanned, 100);
    }

    #[test]
    fn zone_map_scan_skips_blocks() {
        let t = table(false);
        let pred = col("id").between(lit(100), lit(199));
        let mut stats = ExecStats::default();
        let rows = scan_table(&t, Some(&pred), EngineProfile::Indexed, &mut stats).unwrap();
        assert_eq!(rows.len(), 100);
        assert!(
            stats.blocks_skipped >= 98,
            "skipped {} blocks",
            stats.blocks_skipped
        );
        assert!(stats.rows_scanned < 10_000);
    }

    #[test]
    fn columnar_profile_always_full_scans() {
        let t = table(true);
        let pred = col("id").between(lit(100), lit(199));
        let mut stats = ExecStats::default();
        let rows = scan_table(&t, Some(&pred), EngineProfile::ColumnarScan, &mut stats).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(stats.full_scans, 1);
        assert_eq!(stats.rows_scanned, 10_000);
    }

    #[test]
    fn scan_without_predicate_returns_everything() {
        let t = table(true);
        let mut stats = ExecStats::default();
        let rows = scan_table(&t, None, EngineProfile::Indexed, &mut stats).unwrap();
        assert_eq!(rows.len(), 10_000);
    }

    #[test]
    fn selectivity_estimate_tracks_range_width() {
        let t = table(true); // id: 0..10_000 sequential
        let half = estimate_scan_selectivity(&t, &col("id").lt(lit(5_000))).unwrap();
        assert!((half - 0.5).abs() < 0.01, "got {half}");
        assert!(scan_prefers_vectorized(Some(half)));

        let all = estimate_scan_selectivity(&t, &col("id").le(lit(9_999))).unwrap();
        assert!(all > VECTORIZED_SELECTIVITY_CUTOFF, "got {all}");
        assert!(!scan_prefers_vectorized(Some(all)));

        // Point predicates fall back to 1/distinct.
        let point = estimate_scan_selectivity(&t, &col("id").eq(lit(5))).unwrap();
        assert!((point - 1.0 / 10_000.0).abs() < 1e-9, "got {point}");

        // Out-of-domain ranges estimate (near) zero but stay clamped.
        let none = estimate_scan_selectivity(&t, &col("id").gt(lit(1_000_000))).unwrap();
        assert!(none < 0.01, "got {none}");
    }

    #[test]
    fn selectivity_estimate_unavailable_keeps_vectorized() {
        let t = table(true);
        // No single-column range structure: nothing to estimate from.
        assert!(estimate_scan_selectivity(&t, &col("id").gt(col("grp"))).is_none());
        assert!(scan_prefers_vectorized(None));
    }

    #[test]
    fn access_paths_agree_on_results() {
        let t_idx = table(true);
        let t_zm = table(false);
        let pred = col("id")
            .between(lit(500), lit(777))
            .and(col("grp").eq(lit(3)));
        let mut s1 = ExecStats::default();
        let mut s2 = ExecStats::default();
        let mut s3 = ExecStats::default();
        let r1 = scan_table(&t_idx, Some(&pred), EngineProfile::Indexed, &mut s1).unwrap();
        let r2 = scan_table(&t_zm, Some(&pred), EngineProfile::Indexed, &mut s2).unwrap();
        let r3 = scan_table(&t_idx, Some(&pred), EngineProfile::ColumnarScan, &mut s3).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
    }
}
