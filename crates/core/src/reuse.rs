//! Reusing provenance sketches across instances of a parameterized query
//! (Sec. 6 of the paper).
//!
//! Given a template `T`, an instance `Q` (for which a safe sketch was
//! captured) and a new instance `Q'`, the checker decides whether the sketch
//! of `Q` can answer `Q'`. It builds the condition `ge(Q', Q)` of Fig. 4 and
//! the condition `uconds(Q', Q)`, both discharged through the
//! linear-arithmetic solver; when both hold, `P(Q', D) ⊆ P(Q, D)` on every
//! database, so the (safe) sketch of `Q` is safe for `Q'` (Theorem 3).

use crate::encode::{
    attr_var, eq_primed, to_formula, to_linexpr, EncodedPred, StringEncoder, PRIME_SUFFIX,
};
use pbds_algebra::{AggFunc, LogicalPlan, QueryTemplate};
use pbds_solver::{is_valid, CmpOp, Formula, LinExpr};
use pbds_storage::{Database, Value};

/// Outcome of a reuse check.
#[derive(Debug, Clone)]
pub struct ReuseResult {
    /// True when the captured sketch can answer the new instance.
    pub reusable: bool,
    /// Human-readable trace of the obligations checked.
    pub details: Vec<String>,
}

/// Per-node state for the reuse analysis. Unprimed variables refer to the
/// captured instance `Q`, primed variables to the new instance `Q'`.
struct NodeInfo {
    schema_names: Vec<String>,
    /// Conjuncts of `pred(Q)` (unprimed).
    pred_q: Vec<Formula>,
    /// Conjuncts of `pred(Q')` (primed).
    pred_qp: Vec<Formula>,
    /// Whether every conjunct of `pred(Q)` could be encoded.
    pred_q_complete: bool,
    expr_q: EncodedPred,
    expr_qp: EncodedPred,
    psi: Formula,
    ge: bool,
}

impl NodeInfo {
    fn conds_q(&self) -> Formula {
        Formula::and_all(
            self.pred_q
                .iter()
                .cloned()
                .chain(std::iter::once(self.expr_q.formula.clone()))
                .collect(),
        )
    }
    fn conds_qp(&self) -> Formula {
        Formula::and_all(
            self.pred_qp
                .iter()
                .cloned()
                .chain(std::iter::once(self.expr_qp.formula.clone()))
                .collect(),
        )
    }
    fn premise(&self) -> Formula {
        Formula::and_all(vec![self.psi.clone(), self.conds_q(), self.conds_qp()])
    }
}

/// The sketch-reuse checker.
#[derive(Debug, Clone)]
pub struct ReuseChecker<'a> {
    db: &'a Database,
}

impl<'a> ReuseChecker<'a> {
    /// Create a checker over a database (only statistics are consulted).
    pub fn new(db: &'a Database) -> Self {
        ReuseChecker { db }
    }

    /// Can a sketch captured for `template(captured)` be used to answer
    /// `template(new_binding)`?
    pub fn can_reuse(
        &self,
        template: &QueryTemplate,
        captured: &[Value],
        new_binding: &[Value],
    ) -> ReuseResult {
        if captured == new_binding {
            return ReuseResult {
                reusable: true,
                details: vec!["identical parameter bindings".to_string()],
            };
        }
        let q = template.instantiate(captured);
        let qp = template.instantiate(new_binding);
        let strings = StringEncoder::from_plans(&[&q, &qp]);
        let mut details = Vec::new();
        let info = self.analyze(
            template.plan(),
            captured,
            new_binding,
            &strings,
            &mut details,
        );

        if !info.ge {
            return ReuseResult {
                reusable: false,
                details,
            };
        }
        // uconds(Q', Q): Ψ ∧ pred(Q') ∧ expr(Q') ∧ expr(Q) → pred(Q)
        if !info.pred_q_complete {
            details.push("pred(Q) contains unencodable atoms; cannot prove containment".into());
            return ReuseResult {
                reusable: false,
                details,
            };
        }
        let premise = Formula::and_all(vec![
            info.psi.clone(),
            Formula::and_all(info.pred_qp.clone()),
            info.expr_qp.formula.clone(),
            info.expr_q.formula.clone(),
        ]);
        let conclusion = Formula::and_all(info.pred_q.clone());
        let ok = is_valid(&Formula::implies(premise, conclusion));
        details.push(format!(
            "uconds(Q', Q): {}",
            if ok { "holds" } else { "FAILS" }
        ));
        ReuseResult {
            reusable: ok,
            details,
        }
    }

    fn analyze(
        &self,
        plan: &LogicalPlan,
        captured: &[Value],
        new_binding: &[Value],
        strings: &StringEncoder,
        details: &mut Vec<String>,
    ) -> NodeInfo {
        match plan {
            LogicalPlan::TableScan { table } => {
                let names = self
                    .db
                    .table(table)
                    .map(|t| {
                        t.schema()
                            .names()
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                let psi = Formula::and_all(names.iter().map(|n| eq_primed(n)).collect());
                NodeInfo {
                    schema_names: names,
                    pred_q: Vec::new(),
                    pred_qp: Vec::new(),
                    pred_q_complete: true,
                    expr_q: EncodedPred::truth(),
                    expr_qp: EncodedPred::truth(),
                    psi,
                    ge: true,
                }
            }
            LogicalPlan::Selection { predicate, input } => {
                let mut child = self.analyze(input, captured, new_binding, strings, details);
                let theta_q = to_formula(&predicate.bind_params(captured), false, strings);
                let theta_qp = to_formula(&predicate.bind_params(new_binding), true, strings);
                child.pred_q_complete &= theta_q.complete;
                child.pred_q.push(theta_q.formula);
                child.pred_qp.push(theta_qp.formula);
                child
            }
            LogicalPlan::Projection { exprs, input } => {
                let mut child = self.analyze(input, captured, new_binding, strings, details);
                let mut q_parts = vec![child.expr_q.formula.clone()];
                let mut qp_parts = vec![child.expr_qp.formula.clone()];
                for (e, name) in exprs {
                    if let Some(lin) = to_linexpr(&e.bind_params(captured), false, strings) {
                        q_parts.push(Formula::cmp(
                            lin,
                            CmpOp::Eq,
                            LinExpr::var(attr_var(name, false)),
                        ));
                    }
                    if let Some(lin) = to_linexpr(&e.bind_params(new_binding), true, strings) {
                        qp_parts.push(Formula::cmp(
                            lin,
                            CmpOp::Eq,
                            LinExpr::var(attr_var(name, true)),
                        ));
                    }
                }
                child.expr_q = EncodedPred {
                    formula: Formula::and_all(q_parts),
                    complete: child.expr_q.complete,
                };
                child.expr_qp = EncodedPred {
                    formula: Formula::and_all(qp_parts),
                    complete: child.expr_qp.complete,
                };
                child.schema_names = exprs.iter().map(|(_, n)| n.clone()).collect();
                child
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => {
                let child = self.analyze(input, captured, new_binding, strings, details);
                // ge obligation: group-by attributes agree.
                let mut ge = child.ge;
                if ge {
                    for g in group_by {
                        let ob = Formula::implies(child.premise(), eq_primed(g));
                        let valid = is_valid(&ob);
                        details.push(format!(
                            "reuse aggregate group-by [{g}]: equality {}",
                            if valid { "holds" } else { "FAILS" }
                        ));
                        if !valid {
                            ge = false;
                            break;
                        }
                    }
                }
                // Ψ for aggregate outputs (Fig. 4b).
                // non-grp-pred(Q): drop the conjuncts that only restrict
                // group-by attributes (Sec. 6).
                let non_grp = |conjuncts: &[Formula]| -> Formula {
                    Formula::and_all(
                        conjuncts
                            .iter()
                            .filter(|f| {
                                !f.variables().iter().all(|v| {
                                    let base = v.strip_suffix(PRIME_SUFFIX).unwrap_or(v);
                                    group_by.iter().any(|g| g == base) || v.starts_with("__param_")
                                }) || f.variables().is_empty()
                            })
                            .cloned()
                            .collect(),
                    )
                };
                let ngp_q = non_grp(&child.pred_q);
                let ngp_qp = non_grp(&child.pred_qp);
                let cond1 = is_valid(&Formula::implies(
                    Formula::and_all(vec![
                        child.psi.clone(),
                        ngp_q.clone(),
                        child.expr_q.formula.clone(),
                        child.expr_qp.formula.clone(),
                    ]),
                    ngp_qp.clone(),
                ));
                let cond2 = is_valid(&Formula::implies(
                    Formula::and_all(vec![
                        child.psi.clone(),
                        ngp_qp.clone(),
                        child.expr_qp.formula.clone(),
                        child.expr_q.formula.clone(),
                    ]),
                    ngp_q.clone(),
                ));
                let mut psi_parts = vec![child.psi.clone()];
                for agg in aggregates {
                    let b = &agg.alias;
                    let relation = if cond1 && cond2 {
                        Some(CmpOp::Eq)
                    } else if cond2 {
                        // The new query's groups contain subsets of the
                        // captured query's groups.
                        let arg = to_linexpr(&agg.input.bind_params(captured), false, strings);
                        let sign = |op: CmpOp| {
                            arg.clone()
                                .map(|lin| {
                                    is_valid(&Formula::implies(
                                        child.conds_q(),
                                        Formula::cmp(lin, op, LinExpr::constant(0.0)),
                                    ))
                                })
                                .unwrap_or(false)
                        };
                        match agg.func {
                            AggFunc::Count => Some(CmpOp::Ge),
                            AggFunc::Sum | AggFunc::Max if sign(CmpOp::Gt) => Some(CmpOp::Ge),
                            AggFunc::Sum | AggFunc::Min if sign(CmpOp::Lt) => Some(CmpOp::Le),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if let Some(op) = relation {
                        psi_parts.push(Formula::var_cmp_var(
                            &attr_var(b, false),
                            op,
                            &attr_var(b, true),
                        ));
                    }
                    details.push(format!(
                        "reuse aggregate {}({}) AS {b}: ① {} ② {}",
                        agg.func,
                        agg.input,
                        if cond1 { "holds" } else { "fails" },
                        if cond2 { "holds" } else { "fails" },
                    ));
                }
                let mut names = group_by.clone();
                names.extend(aggregates.iter().map(|a| a.alias.clone()));
                NodeInfo {
                    schema_names: names,
                    pred_q: child.pred_q,
                    pred_qp: child.pred_qp,
                    pred_q_complete: child.pred_q_complete,
                    expr_q: child.expr_q,
                    expr_qp: child.expr_qp,
                    psi: Formula::and_all(psi_parts),
                    ge,
                }
            }
            LogicalPlan::Distinct { input } => {
                let child = self.analyze(input, captured, new_binding, strings, details);
                let mut ge = child.ge;
                if ge {
                    for col in &child.schema_names {
                        if !is_valid(&Formula::implies(child.premise(), eq_primed(col))) {
                            details.push(format!("reuse distinct: column {col} may differ"));
                            ge = false;
                            break;
                        }
                    }
                }
                NodeInfo { ge, ..child }
            }
            LogicalPlan::TopK { input, .. } => {
                // Fig. 4 does not define a rule for top-k; a sketch captured
                // for one instance is only reused when the parameters that
                // influence the top-k input are bound identically, which makes
                // the two subqueries syntactically equal.
                let child = self.analyze(input, captured, new_binding, strings, details);
                let params_below = input.params();
                let identical = params_below
                    .iter()
                    .all(|&i| captured.get(i) == new_binding.get(i));
                if !identical {
                    details.push(
                        "reuse top-k: parameters below the top-k differ; not reusable".to_string(),
                    );
                }
                NodeInfo {
                    ge: child.ge && identical,
                    ..child
                }
            }
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let l = self.analyze(left, captured, new_binding, strings, details);
                let r = self.analyze(right, captured, new_binding, strings, details);
                let mut ge = l.ge && r.ge;
                if ge {
                    let ob_l = Formula::implies(l.premise(), eq_primed(left_col));
                    let ob_r = Formula::implies(r.premise(), eq_primed(right_col));
                    ge = is_valid(&ob_l) && is_valid(&ob_r);
                    if !ge {
                        details.push(format!(
                            "reuse join [{left_col} = {right_col}]: key equality FAILS"
                        ));
                    }
                }
                let mut schema_names = l.schema_names.clone();
                schema_names.extend(r.schema_names.clone());
                NodeInfo {
                    schema_names,
                    pred_q: l.pred_q.into_iter().chain(r.pred_q).collect(),
                    pred_qp: l.pred_qp.into_iter().chain(r.pred_qp).collect(),
                    pred_q_complete: l.pred_q_complete && r.pred_q_complete,
                    expr_q: l.expr_q.and(r.expr_q),
                    expr_qp: l.expr_qp.and(r.expr_qp),
                    psi: Formula::and_all(vec![l.psi, r.psi]),
                    ge,
                }
            }
            LogicalPlan::CrossProduct { left, right } => {
                let l = self.analyze(left, captured, new_binding, strings, details);
                let r = self.analyze(right, captured, new_binding, strings, details);
                let mut schema_names = l.schema_names.clone();
                schema_names.extend(r.schema_names.clone());
                NodeInfo {
                    schema_names,
                    pred_q: l.pred_q.into_iter().chain(r.pred_q).collect(),
                    pred_qp: l.pred_qp.into_iter().chain(r.pred_qp).collect(),
                    pred_q_complete: l.pred_q_complete && r.pred_q_complete,
                    expr_q: l.expr_q.and(r.expr_q),
                    expr_qp: l.expr_qp.and(r.expr_qp),
                    psi: Formula::and_all(vec![l.psi, r.psi]),
                    ge: l.ge && r.ge,
                }
            }
            LogicalPlan::Union { left, right } => {
                let l = self.analyze(left, captured, new_binding, strings, details);
                let r = self.analyze(right, captured, new_binding, strings, details);
                let psi = if l.psi == r.psi {
                    l.psi.clone()
                } else {
                    Formula::True
                };
                NodeInfo {
                    schema_names: l.schema_names.clone(),
                    pred_q: vec![Formula::or_all(vec![
                        Formula::and_all(l.pred_q.clone()),
                        Formula::and_all(r.pred_q.clone()),
                    ])],
                    pred_qp: vec![Formula::or_all(vec![
                        Formula::and_all(l.pred_qp.clone()),
                        Formula::and_all(r.pred_qp.clone()),
                    ])],
                    pred_q_complete: l.pred_q_complete && r.pred_q_complete,
                    expr_q: EncodedPred {
                        formula: Formula::or_all(vec![
                            l.expr_q.formula.clone(),
                            r.expr_q.formula.clone(),
                        ]),
                        complete: l.expr_q.complete && r.expr_q.complete,
                    },
                    expr_qp: EncodedPred {
                        formula: Formula::or_all(vec![
                            l.expr_qp.formula.clone(),
                            r.expr_qp.formula.clone(),
                        ]),
                        complete: l.expr_qp.complete && r.expr_qp.complete,
                    },
                    psi,
                    ge: l.ge && r.ge,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, param, AggExpr, SortKey};
    use pbds_storage::{DataType, Schema, TableBuilder};

    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    /// The parameterized query of Fig. 5: states with more than $2 cities of
    /// at least $1 inhabitants.
    fn fig5_template() -> QueryTemplate {
        let plan = LogicalPlan::scan("cities")
            .filter(col("popden").gt(param(0)))
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cntcity")],
            )
            .filter(col("cntcity").gt(param(1)));
        QueryTemplate::new("fig5", plan)
    }

    #[test]
    fn fig5_example7_reuse_holds() {
        // Q: ($1=100, $2=10); Q': ($1=100, $2=15). The paper shows PS can be
        // reused for Q' (Ex. 7).
        let db = cities_db();
        let checker = ReuseChecker::new(&db);
        let res = checker.can_reuse(
            &fig5_template(),
            &[Value::Int(100), Value::Int(10)],
            &[Value::Int(100), Value::Int(15)],
        );
        assert!(res.reusable, "{:?}", res.details);
    }

    #[test]
    fn fig5_reverse_direction_not_reusable() {
        // A sketch for the MORE selective instance cannot answer the less
        // selective one.
        let db = cities_db();
        let checker = ReuseChecker::new(&db);
        let res = checker.can_reuse(
            &fig5_template(),
            &[Value::Int(100), Value::Int(15)],
            &[Value::Int(100), Value::Int(10)],
        );
        assert!(!res.reusable, "{:?}", res.details);
    }

    #[test]
    fn changing_the_popden_filter_blocks_reuse_when_weaker() {
        let db = cities_db();
        let checker = ReuseChecker::new(&db);
        // Captured with popden > 100; new instance wants popden > 50: the new
        // provenance may include rows the sketch never saw.
        let res = checker.can_reuse(
            &fig5_template(),
            &[Value::Int(100), Value::Int(10)],
            &[Value::Int(50), Value::Int(10)],
        );
        assert!(!res.reusable, "{:?}", res.details);
        // Tightening it is fine... but note the tighter popden filter changes
        // the groups feeding the count, so condition ① fails and reuse falls
        // back on b >= b' which is what the HAVING lower bound needs.
        let res2 = checker.can_reuse(
            &fig5_template(),
            &[Value::Int(100), Value::Int(10)],
            &[Value::Int(200), Value::Int(10)],
        );
        assert!(res2.reusable, "{:?}", res2.details);
    }

    #[test]
    fn identical_bindings_are_trivially_reusable() {
        let db = cities_db();
        let checker = ReuseChecker::new(&db);
        let res = checker.can_reuse(
            &fig5_template(),
            &[Value::Int(100), Value::Int(10)],
            &[Value::Int(100), Value::Int(10)],
        );
        assert!(res.reusable);
    }

    #[test]
    fn topk_templates_require_identical_upstream_parameters() {
        let db = cities_db();
        let template = QueryTemplate::new(
            "topk",
            LogicalPlan::scan("cities")
                .filter(col("popden").gt(param(0)))
                .aggregate(
                    vec!["state"],
                    vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
                )
                .top_k(vec![SortKey::desc("avgden")], 1),
        );
        let checker = ReuseChecker::new(&db);
        let same = checker.can_reuse(&template, &[Value::Int(100)], &[Value::Int(100)]);
        assert!(same.reusable);
        let diff = checker.can_reuse(&template, &[Value::Int(100)], &[Value::Int(200)]);
        assert!(!diff.reusable, "{:?}", diff.details);
    }

    #[test]
    fn having_upper_bound_reuse_direction() {
        // Template: HAVING cnt < $0 — reuse works when the new bound is
        // LOWER (more selective), not when it is higher.
        let db = cities_db();
        let template = QueryTemplate::new(
            "upper",
            LogicalPlan::scan("cities")
                .aggregate(
                    vec!["state"],
                    vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
                )
                .filter(col("cnt").lt(param(0))),
        );
        let checker = ReuseChecker::new(&db);
        let tighter = checker.can_reuse(&template, &[Value::Int(10)], &[Value::Int(5)]);
        assert!(tighter.reusable, "{:?}", tighter.details);
        let looser = checker.can_reuse(&template, &[Value::Int(5)], &[Value::Int(10)]);
        assert!(!looser.reusable, "{:?}", looser.details);
    }
}
