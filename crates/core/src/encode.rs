//! Encoding of relational expressions into solver formulas.
//!
//! The safety (Sec. 5) and reuse (Sec. 6) checks translate query predicates
//! and projection expressions into linear-arithmetic formulas over attribute
//! variables, with a primed copy (`a'`) of every attribute standing for the
//! query evaluated over the full database while the unprimed copy stands for
//! the query evaluated over the sketch instance (or, for reuse, for the
//! other query instance).
//!
//! String constants are mapped to integer codes that preserve their ordering,
//! which keeps comparisons over string attributes (e.g. `state >= 'AL'`)
//! within linear arithmetic.

use pbds_algebra::{BinOp, Expr, LogicalPlan};
use pbds_solver::{CmpOp, Formula, LinExpr};
use pbds_storage::Value;
use std::collections::BTreeSet;

/// Suffix used to form the primed copy of an attribute variable.
pub const PRIME_SUFFIX: &str = "__p";

/// Maps string constants to order-preserving numeric codes.
#[derive(Debug, Clone, Default)]
pub struct StringEncoder {
    strings: Vec<String>,
}

impl StringEncoder {
    /// Collect every string literal appearing in a plan (so codes are stable
    /// across premise and conclusion of one check).
    pub fn from_plans(plans: &[&LogicalPlan]) -> Self {
        let mut set = BTreeSet::new();
        for plan in plans {
            plan.visit_exprs(&mut |e| collect_strings(e, &mut set));
        }
        StringEncoder {
            strings: set.into_iter().collect(),
        }
    }

    /// Register additional string values (e.g. from table statistics).
    pub fn register(&mut self, s: &str) {
        if let Err(pos) = self.strings.binary_search_by(|x| x.as_str().cmp(s)) {
            self.strings.insert(pos, s.to_string());
        }
    }

    /// Order-preserving code of a string (strings between two registered
    /// constants get interleaved codes, which is sound for the comparisons
    /// the formulas contain because only registered constants appear in them).
    pub fn encode(&self, s: &str) -> f64 {
        match self.strings.binary_search_by(|x| x.as_str().cmp(s)) {
            Ok(pos) => pos as f64 * 10.0,
            Err(pos) => pos as f64 * 10.0 - 5.0,
        }
    }

    /// Encode any value as a solver constant.
    pub fn encode_value(&self, v: &Value) -> Option<f64> {
        match v {
            Value::Str(s) => Some(self.encode(s)),
            Value::Null => None,
            other => other.as_f64(),
        }
    }
}

fn collect_strings(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Literal(Value::Str(s)) => {
            out.insert(s.clone());
        }
        Expr::Binary { left, right, .. } => {
            collect_strings(left, out);
            collect_strings(right, out);
        }
        Expr::And(es) | Expr::Or(es) => {
            for x in es {
                collect_strings(x, out);
            }
        }
        Expr::Not(x) | Expr::IsNull(x) => collect_strings(x, out),
        Expr::Case {
            branches,
            otherwise,
        } => {
            for (c, r) in branches {
                collect_strings(c, out);
                collect_strings(r, out);
            }
            collect_strings(otherwise, out);
        }
        _ => {}
    }
}

/// Variable name of an attribute, optionally primed.
pub fn attr_var(name: &str, primed: bool) -> String {
    if primed {
        format!("{name}{PRIME_SUFFIX}")
    } else {
        name.to_string()
    }
}

/// Translate a scalar expression to a linear expression over attribute
/// variables, if possible.
pub fn to_linexpr(e: &Expr, primed: bool, strings: &StringEncoder) -> Option<LinExpr> {
    match e {
        Expr::Column(c) => Some(LinExpr::var(attr_var(c, primed))),
        Expr::Literal(v) => strings.encode_value(v).map(LinExpr::constant),
        // Parameters are shared between the primed and unprimed copy of the
        // same query instance, so they are never primed.
        Expr::Param(i) => Some(LinExpr::var(format!("__param_{i}"))),
        Expr::Binary { op, left, right } => {
            let l = to_linexpr(left, primed, strings)?;
            let r = to_linexpr(right, primed, strings)?;
            match op {
                BinOp::Add => Some(l.add(&r)),
                BinOp::Sub => Some(l.sub(&r)),
                BinOp::Mul => {
                    // Only linear products (one side constant) are encodable.
                    if l.is_constant() {
                        Some(r.scale(l.constant_part()))
                    } else if r.is_constant() {
                        Some(l.scale(r.constant_part()))
                    } else {
                        None
                    }
                }
                BinOp::Div => {
                    if r.is_constant() && r.constant_part() != 0.0 {
                        Some(l.scale(1.0 / r.constant_part()))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Result of encoding a predicate: the formula plus a flag recording whether
/// every atom could be encoded. Callers that place the predicate in the
/// *conclusion* of an implication must refuse to proceed when `complete` is
/// false (dropping conclusion atoms would be unsound); premises may always be
/// weakened.
#[derive(Debug, Clone)]
pub struct EncodedPred {
    /// The (possibly weakened) formula.
    pub formula: Formula,
    /// True when no atom was dropped.
    pub complete: bool,
}

impl EncodedPred {
    /// A trivially true, complete predicate.
    pub fn truth() -> Self {
        EncodedPred {
            formula: Formula::True,
            complete: true,
        }
    }

    /// Conjoin two encoded predicates.
    pub fn and(self, other: EncodedPred) -> EncodedPred {
        EncodedPred {
            formula: Formula::and_all(vec![self.formula, other.formula]),
            complete: self.complete && other.complete,
        }
    }
}

/// Translate a boolean predicate to a formula over attribute variables.
/// Atoms that cannot be encoded are replaced by `True` and flagged.
pub fn to_formula(e: &Expr, primed: bool, strings: &StringEncoder) -> EncodedPred {
    match e {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            let l = to_linexpr(left, primed, strings);
            let r = to_linexpr(right, primed, strings);
            match (l, r) {
                (Some(l), Some(r)) => {
                    let cmp = match op {
                        BinOp::Eq => CmpOp::Eq,
                        BinOp::Ne => CmpOp::Ne,
                        BinOp::Lt => CmpOp::Lt,
                        BinOp::Le => CmpOp::Le,
                        BinOp::Gt => CmpOp::Gt,
                        BinOp::Ge => CmpOp::Ge,
                        _ => unreachable!(),
                    };
                    EncodedPred {
                        formula: Formula::cmp(l, cmp, r),
                        complete: true,
                    }
                }
                _ => EncodedPred {
                    formula: Formula::True,
                    complete: false,
                },
            }
        }
        Expr::And(es) => es
            .iter()
            .map(|x| to_formula(x, primed, strings))
            .fold(EncodedPred::truth(), EncodedPred::and),
        Expr::Or(es) => {
            let parts: Vec<EncodedPred> =
                es.iter().map(|x| to_formula(x, primed, strings)).collect();
            let complete = parts.iter().all(|p| p.complete);
            if !complete {
                // A disjunction with a dropped disjunct cannot be weakened
                // soundly (weakening a disjunct strengthens nothing); treat
                // the whole disjunction as unencodable.
                return EncodedPred {
                    formula: Formula::True,
                    complete: false,
                };
            }
            EncodedPred {
                formula: Formula::or_all(parts.into_iter().map(|p| p.formula).collect()),
                complete: true,
            }
        }
        Expr::Not(x) => {
            let inner = to_formula(x, primed, strings);
            if inner.complete {
                EncodedPred {
                    formula: Formula::not(inner.formula),
                    complete: true,
                }
            } else {
                EncodedPred {
                    formula: Formula::True,
                    complete: false,
                }
            }
        }
        _ => EncodedPred {
            formula: Formula::True,
            complete: false,
        },
    }
}

/// Equality of an attribute with its primed copy: `a = a'`.
pub fn eq_primed(attr: &str) -> Formula {
    Formula::var_cmp_var(&attr_var(attr, false), CmpOp::Eq, &attr_var(attr, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param};
    use pbds_solver::is_valid;

    #[test]
    fn string_codes_preserve_order() {
        let mut enc = StringEncoder::default();
        enc.register("AL");
        enc.register("DE");
        enc.register("NY");
        assert!(enc.encode("AL") < enc.encode("DE"));
        assert!(enc.encode("DE") < enc.encode("NY"));
        // Unregistered strings interleave without colliding.
        assert!(enc.encode("CA") > enc.encode("AL"));
        assert!(enc.encode("CA") < enc.encode("DE"));
    }

    #[test]
    fn simple_comparison_encodes_completely() {
        let enc = StringEncoder::default();
        let p = to_formula(&col("popden").gt(lit(100)), false, &enc);
        assert!(p.complete);
        assert_eq!(p.formula.to_string(), "popden > 100");
        let primed = to_formula(&col("popden").gt(lit(100)), true, &enc);
        assert!(primed.formula.to_string().contains("popden__p"));
    }

    #[test]
    fn params_are_shared_between_primed_copies() {
        let enc = StringEncoder::default();
        let plain = to_formula(&col("a").gt(param(0)), false, &enc);
        let primed = to_formula(&col("a").gt(param(0)), true, &enc);
        // a = a' and a > $0 implies a' > $0 because the parameter variable is
        // the same on both sides.
        let f = Formula::implies(
            Formula::and_all(vec![eq_primed("a"), plain.formula]),
            primed.formula,
        );
        assert!(is_valid(&f));
    }

    #[test]
    fn arithmetic_projection_expressions_encode() {
        let enc = StringEncoder::default();
        let e = col("a").add(col("b")).mul(lit(2));
        let lin = to_linexpr(&e, false, &enc).unwrap();
        assert_eq!(lin.coeff("a"), 2.0);
        assert_eq!(lin.coeff("b"), 2.0);
        // Products of two attributes are not linear.
        assert!(to_linexpr(&col("a").mul(col("b")), false, &enc).is_none());
    }

    #[test]
    fn unencodable_atoms_are_flagged() {
        let enc = StringEncoder::default();
        let p = to_formula(&col("a").mul(col("b")).gt(lit(0)), false, &enc);
        assert!(!p.complete);
        assert_eq!(p.formula, Formula::True);
    }

    #[test]
    fn string_comparison_reasoning_works_end_to_end() {
        let plan = pbds_algebra::LogicalPlan::scan("cities")
            .filter(col("state").ge(lit("AL")).and(col("state").le(lit("DE"))));
        let enc = StringEncoder::from_plans(&[&plan]);
        // state >= 'AL' AND state <= 'DE' implies state <= 'DE'.
        let pred = to_formula(
            &col("state").ge(lit("AL")).and(col("state").le(lit("DE"))),
            false,
            &enc,
        );
        let conclusion = to_formula(&col("state").le(lit("DE")), false, &enc);
        assert!(is_valid(&Formula::implies(
            pred.formula,
            conclusion.formula
        )));
    }
}
