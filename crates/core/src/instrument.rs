//! Using provenance sketches: instrumenting queries to skip data (Sec. 8).
//!
//! `Q[P]` is obtained from `Q` by adding, above every table access covered by
//! a sketch, a selection that keeps only the rows belonging to the sketch's
//! fragments. For range-partition sketches the selection is a set of value
//! ranges (adjacent fragments merged, Sec. 8.1), which the execution engine
//! answers through ordered indexes or zone maps; for composite (PSMIX)
//! sketches it is a membership test on the composite key.

use pbds_algebra::{col, lit, Expr, LogicalPlan, RangeLookup};
use pbds_provenance::ProvenanceSketch;
use pbds_storage::ValueRange;

/// How range-sketch filters are rendered (Fig. 11a vs Fig. 11c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UsePredicateStyle {
    /// A single membership predicate answered by binary search over the
    /// ordered ranges (the paper's `BS` method — default).
    #[default]
    BinarySearch,
    /// An explicit disjunction of `BETWEEN` conditions (the paper's `OR`
    /// method, preferable for very selective sketches).
    OrConditions,
}

/// Build the filter predicate for one sketch, or `None` when the sketch
/// covers every fragment (filtering would be pure overhead).
pub fn sketch_predicate(sketch: &ProvenanceSketch, style: UsePredicateStyle) -> Option<Expr> {
    if sketch.num_selected() == sketch.num_fragments() {
        return None;
    }
    if let Some(ranges) = sketch.to_ranges() {
        let attr = sketch.attrs().into_iter().next()?;
        if ranges.is_empty() {
            // An empty sketch selects nothing.
            return Some(lit(1).eq(lit(0)));
        }
        return Some(match style {
            UsePredicateStyle::BinarySearch => Expr::InRanges {
                column: attr,
                ranges,
                lookup: RangeLookup::BinarySearch,
            },
            UsePredicateStyle::OrConditions => {
                let parts: Vec<Expr> = ranges.iter().map(|r| range_condition(&attr, r)).collect();
                if parts.len() == 1 {
                    parts.into_iter().next().expect("non-empty")
                } else {
                    Expr::Or(parts)
                }
            }
        });
    }
    if let Some(mut keys) = sketch.to_keys() {
        // Sorted keys let the evaluator use binary search and keep the
        // predicate deterministic.
        keys.sort();
        return Some(Expr::InList {
            columns: sketch.attrs(),
            keys,
        });
    }
    None
}

/// Render one value range as an explicit condition on `attr`.
fn range_condition(attr: &str, range: &ValueRange) -> Expr {
    match (&range.lo, &range.hi) {
        (Some(lo), Some(hi)) => col(attr)
            .gt(Expr::Literal(lo.clone()))
            .and(col(attr).le(Expr::Literal(hi.clone()))),
        (None, Some(hi)) => col(attr).le(Expr::Literal(hi.clone())),
        (Some(lo), None) => col(attr).gt(Expr::Literal(lo.clone())),
        (None, None) => lit(1).eq(lit(1)),
    }
}

/// Instrument a query with a set of sketches: `Q[PS]`.
///
/// Every scan of a sketched table gets the sketch filter pushed directly on
/// top of it; scans of other tables are untouched. Applying an unsafe sketch
/// changes query results — callers are expected to have verified safety
/// (Sec. 5) and, for parameterized queries, reusability (Sec. 6) first.
pub fn apply_sketches(
    plan: &LogicalPlan,
    sketches: &[ProvenanceSketch],
    style: UsePredicateStyle,
) -> LogicalPlan {
    plan.rewrite_scans(&|table| {
        let sketch = sketches.iter().find(|s| s.table() == table)?;
        let predicate = sketch_predicate(sketch, style)?;
        Some(LogicalPlan::scan(table).filter(predicate))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{AggExpr, AggFunc, SortKey};
    use pbds_exec::{Engine, EngineProfile};
    use pbds_provenance::{capture_sketches, CaptureConfig};
    use pbds_storage::{
        CompositePartition, DataType, Database, Partition, RangePartition, Schema, TableBuilder,
        Value,
    };
    use std::sync::Arc;

    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        b.block_size(2).index("state");
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    fn state_sketch(db: &Database) -> ProvenanceSketch {
        let part = Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE"), Value::from("MI"), Value::from("OK")],
        )));
        capture_sketches(db, &q2(), &[part], &CaptureConfig::optimized())
            .unwrap()
            .sketches
            .remove(0)
    }

    #[test]
    fn instrumented_q2_matches_paper_rewrite_and_result() {
        // Q2[P_state] returns the same answer as Q2 (Fig. 1a / 1d).
        let db = cities_db();
        let sketch = state_sketch(&db);
        let engine = Engine::new(EngineProfile::Indexed);
        for style in [
            UsePredicateStyle::BinarySearch,
            UsePredicateStyle::OrConditions,
        ] {
            let instrumented = apply_sketches(&q2(), std::slice::from_ref(&sketch), style);
            let plain = engine.execute(&db, &q2()).unwrap();
            let skipped = engine.execute(&db, &instrumented).unwrap();
            assert!(plain.relation.bag_eq(&skipped.relation), "style {style:?}");
            // And it touches fewer rows.
            assert!(skipped.stats.rows_scanned < plain.stats.rows_scanned);
        }
    }

    #[test]
    fn predicate_is_omitted_when_sketch_covers_everything() {
        let part = Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE")],
        )));
        // A sketch with every fragment selected.
        let mut sketch = pbds_provenance::ProvenanceSketch::empty(part);
        sketch.add_fragment(0);
        sketch.add_fragment(1);
        assert!(sketch_predicate(&sketch, UsePredicateStyle::BinarySearch).is_none());
        let instrumented = apply_sketches(&q2(), &[sketch], UsePredicateStyle::BinarySearch);
        assert_eq!(instrumented, q2());
    }

    #[test]
    fn empty_sketch_filters_out_all_rows() {
        let db = cities_db();
        let part = Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE")],
        )));
        let sketch = pbds_provenance::ProvenanceSketch::empty(part);
        let pred = sketch_predicate(&sketch, UsePredicateStyle::OrConditions).unwrap();
        let plan = LogicalPlan::scan("cities").filter(pred);
        let out = Engine::new(EngineProfile::Indexed)
            .execute(&db, &plan)
            .unwrap();
        assert!(out.relation.is_empty());
    }

    #[test]
    fn composite_sketch_uses_in_list_predicate() {
        let db = cities_db();
        let table = db.table("cities").unwrap();
        let comp =
            CompositePartition::build("cities", table.schema(), table.rows(), &["state"]).unwrap();
        let part = Arc::new(Partition::Composite(comp));
        let res = capture_sketches(&db, &q2(), &[part], &CaptureConfig::optimized()).unwrap();
        let sketch = &res.sketches[0];
        let pred = sketch_predicate(sketch, UsePredicateStyle::BinarySearch).unwrap();
        assert!(matches!(pred, Expr::InList { .. }));
        let engine = Engine::new(EngineProfile::Indexed);
        let instrumented = apply_sketches(
            &q2(),
            std::slice::from_ref(sketch),
            UsePredicateStyle::BinarySearch,
        );
        let plain = engine.execute(&db, &q2()).unwrap().relation;
        let skipped = engine.execute(&db, &instrumented).unwrap().relation;
        assert!(plain.bag_eq(&skipped));
    }

    #[test]
    fn only_matching_tables_are_rewritten() {
        let db = cities_db();
        let sketch = state_sketch(&db);
        let plan = LogicalPlan::scan("other").union(LogicalPlan::scan("cities"));
        let rewritten = apply_sketches(&plan, &[sketch], UsePredicateStyle::BinarySearch);
        match rewritten {
            LogicalPlan::Union { left, right } => {
                assert!(matches!(*left, LogicalPlan::TableScan { .. }));
                assert!(matches!(*right, LogicalPlan::Selection { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn or_conditions_render_merged_adjacent_ranges() {
        let db = cities_db();
        // Build a sketch selecting fragments 0 and 1 (adjacent) of a
        // 3-fragment partition: a single BETWEEN should remain.
        let part = Arc::new(Partition::Range(RangePartition::from_uppers(
            "cities",
            "state",
            vec![Value::from("DE"), Value::from("MI")],
        )));
        let mut sketch = pbds_provenance::ProvenanceSketch::empty(part);
        sketch.add_fragment(0);
        sketch.add_fragment(1);
        let pred = sketch_predicate(&sketch, UsePredicateStyle::OrConditions).unwrap();
        // Merged: state <= 'MI' (single condition, no OR).
        assert!(
            !matches!(pred, Expr::Or(_)),
            "expected merged range, got {pred}"
        );
        let plan = LogicalPlan::scan("cities").filter(pred);
        let out = Engine::new(EngineProfile::Indexed)
            .execute(&db, &plan)
            .unwrap();
        assert_eq!(out.relation.len(), 3); // AK + 2×CA
    }
}
