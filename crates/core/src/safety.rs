//! Static sketch-safety checking (Sec. 5 of the paper).
//!
//! Given a query `Q` and a set of partition attributes `X`, the checker
//! builds the condition `gc(Q, X)` of Fig. 3 bottom-up over the plan,
//! discharging every proof obligation with the linear-arithmetic solver.
//! When `gc(Q, X)` is proven valid, *every* provenance sketch built on range
//! partitions of `X` is safe for `Q` on *any* database instance (Theorem 2).
//! The check is sound but not complete (Theorem 1 shows completeness is
//! impossible without looking at the data), so a negative answer only means
//! "could not prove safe".

use crate::encode::{attr_var, eq_primed, to_formula, to_linexpr, EncodedPred, StringEncoder};
use pbds_algebra::{AggFunc, Expr, LogicalPlan};
use pbds_solver::{is_valid, CmpOp, Formula, LinExpr};
use pbds_storage::{DataType, Database, Schema};

/// A partition attribute: `(table, column)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PartitionAttr {
    /// Base table the attribute belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl PartitionAttr {
    /// Convenience constructor.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        PartitionAttr {
            table: table.into(),
            column: column.into(),
        }
    }
}

/// Outcome of a safety check.
#[derive(Debug, Clone)]
pub struct SafetyResult {
    /// True when `gc(Q, X)` was proven valid: sketches over `X` are safe.
    pub safe: bool,
    /// True when the query contains a top-k operator, in which case the
    /// static result must be re-validated at runtime by checking that the
    /// operator's input had at least `k` rows (footnote 1 of Sec. 5).
    pub requires_topk_revalidation: bool,
    /// Human-readable trace of the per-operator obligations.
    pub details: Vec<String>,
}

/// Per-node analysis state built bottom-up (mirrors `pred`, `expr`, Ψ and
/// `gc` of Fig. 3).
struct NodeInfo {
    schema: Schema,
    /// `pred(Q)` over unprimed attributes.
    pred_plain: EncodedPred,
    /// `pred(Q)` over primed attributes.
    pred_primed: EncodedPred,
    /// `expr(Q)` over unprimed / primed attributes.
    expr_plain: EncodedPred,
    expr_primed: EncodedPred,
    /// Ψ_{Q,X}
    psi: Formula,
    /// Whether `gc(Q, X)` holds so far.
    gc: bool,
    /// Attributes of `X` contained in relations accessed by this subquery.
    x_here: Vec<String>,
}

impl NodeInfo {
    /// `conds(Q) = pred(Q) ∧ expr(Q)` (unprimed).
    fn conds_plain(&self) -> Formula {
        Formula::and_all(vec![
            self.pred_plain.formula.clone(),
            self.expr_plain.formula.clone(),
        ])
    }
    /// `conds(Q') = pred(Q') ∧ expr(Q')` (primed).
    fn conds_primed(&self) -> Formula {
        Formula::and_all(vec![
            self.pred_primed.formula.clone(),
            self.expr_primed.formula.clone(),
        ])
    }
    /// The standard premise `Ψ ∧ conds(Q') ∧ conds(Q)` used by the rules.
    fn premise(&self) -> Formula {
        Formula::and_all(vec![
            self.psi.clone(),
            self.conds_primed(),
            self.conds_plain(),
        ])
    }
}

/// The safety checker.
#[derive(Debug, Clone)]
pub struct SafetyChecker<'a> {
    db: &'a Database,
}

impl<'a> SafetyChecker<'a> {
    /// Create a checker over a database (used only for its statistics — the
    /// check itself never looks at the data, as required by the paper).
    pub fn new(db: &'a Database) -> Self {
        SafetyChecker { db }
    }

    /// Check whether the attribute set `attrs` is safe for `plan`.
    pub fn check(&self, plan: &LogicalPlan, attrs: &[PartitionAttr]) -> SafetyResult {
        let mut strings = StringEncoder::from_plans(&[plan]);
        // Register string min/max statistics so bound constraints stay
        // order-consistent with the literals of the query.
        for table in plan.tables() {
            if let Ok(t) = self.db.table(&table) {
                for col in t.schema().columns() {
                    if col.dtype == DataType::Str {
                        if let Some(stats) = t.stats().column(&col.name) {
                            if let Some(pbds_storage::Value::Str(s)) = &stats.min {
                                strings.register(s);
                            }
                            if let Some(pbds_storage::Value::Str(s)) = &stats.max {
                                strings.register(s);
                            }
                        }
                    }
                }
            }
        }
        let mut details = Vec::new();
        let info = self.analyze(plan, attrs, &strings, &mut details);
        SafetyResult {
            safe: info.gc,
            requires_topk_revalidation: plan.contains_top_k(),
            details,
        }
    }

    /// Candidate partition attributes for a query: the group-by attributes of
    /// its aggregations that are base-table columns (the fallback the paper
    /// uses when the primary key is unsafe, Sec. 9.3), ordered outermost
    /// first.
    pub fn candidate_attributes(&self, plan: &LogicalPlan) -> Vec<PartitionAttr> {
        let mut out = Vec::new();
        let tables = plan.tables();
        collect_group_by(plan, &mut |col: &str| {
            for t in &tables {
                if let Ok(table) = self.db.table(t) {
                    if table.schema().contains(col) {
                        let cand = PartitionAttr::new(t.clone(), col.to_string());
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        });
        out
    }

    /// Pick, for each candidate, the first safe attribute set (testing the
    /// caller-preferred attributes first, then the group-by candidates).
    pub fn choose_safe_attributes(
        &self,
        plan: &LogicalPlan,
        preferred: &[PartitionAttr],
    ) -> Option<Vec<PartitionAttr>> {
        for cand in preferred
            .iter()
            .chain(self.candidate_attributes(plan).iter())
        {
            let set = vec![cand.clone()];
            if self.check(plan, &set).safe {
                return Some(set);
            }
        }
        None
    }

    fn analyze(
        &self,
        plan: &LogicalPlan,
        attrs: &[PartitionAttr],
        strings: &StringEncoder,
        details: &mut Vec<String>,
    ) -> NodeInfo {
        match plan {
            LogicalPlan::TableScan { table } => self.analyze_scan(table, attrs, strings),
            LogicalPlan::Selection { predicate, input } => {
                let child = self.analyze(input, attrs, strings, details);
                let theta = to_formula(predicate, false, strings);
                let theta_primed = to_formula(predicate, true, strings);
                // gc: Ψ ∧ conds(Q') ∧ conds(Q) ∧ θ → θ'
                let mut ok = child.gc;
                if ok && !child.x_here.is_empty() {
                    if !theta_primed.complete {
                        ok = false;
                        details.push(format!(
                            "selection [{predicate}]: predicate not encodable, assuming unsafe"
                        ));
                    } else {
                        let obligation = Formula::implies(
                            Formula::and_all(vec![child.premise(), theta.formula.clone()]),
                            theta_primed.formula.clone(),
                        );
                        let valid = is_valid(&obligation);
                        details.push(format!(
                            "selection [{predicate}]: implication {}",
                            if valid { "holds" } else { "FAILS" }
                        ));
                        ok = valid;
                    }
                }
                NodeInfo {
                    schema: child.schema.clone(),
                    pred_plain: child.pred_plain.clone().and(theta),
                    pred_primed: child.pred_primed.clone().and(theta_primed),
                    expr_plain: child.expr_plain.clone(),
                    expr_primed: child.expr_primed.clone(),
                    psi: child.psi.clone(),
                    gc: ok,
                    x_here: child.x_here,
                }
            }
            LogicalPlan::Projection { exprs, input } => {
                let child = self.analyze(input, attrs, strings, details);
                // expr(Q): e_i = b_i for every encodable projection expression.
                let mut plain_parts = vec![child.expr_plain.formula.clone()];
                let mut primed_parts = vec![child.expr_primed.formula.clone()];
                for (e, name) in exprs {
                    if let Some(lin) = to_linexpr(e, false, strings) {
                        plain_parts.push(Formula::cmp(
                            lin,
                            CmpOp::Eq,
                            LinExpr::var(attr_var(name, false)),
                        ));
                    }
                    if let Some(lin) = to_linexpr(e, true, strings) {
                        primed_parts.push(Formula::cmp(
                            lin,
                            CmpOp::Eq,
                            LinExpr::var(attr_var(name, true)),
                        ));
                    }
                }
                NodeInfo {
                    schema: plan
                        .schema(self.db)
                        .unwrap_or_else(|_| child.schema.clone()),
                    pred_plain: child.pred_plain,
                    pred_primed: child.pred_primed,
                    expr_plain: EncodedPred {
                        formula: Formula::and_all(plain_parts),
                        complete: child.expr_plain.complete,
                    },
                    expr_primed: EncodedPred {
                        formula: Formula::and_all(primed_parts),
                        complete: child.expr_primed.complete,
                    },
                    psi: child.psi,
                    gc: child.gc,
                    x_here: child.x_here,
                }
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => self.analyze_aggregate(plan, group_by, aggregates, input, attrs, strings, details),
            LogicalPlan::Distinct { input } => {
                let child = self.analyze(input, attrs, strings, details);
                let mut ok = child.gc;
                if ok && !child.x_here.is_empty() {
                    for col in child.schema.names() {
                        let obligation = Formula::implies(child.premise(), eq_primed(col));
                        if !is_valid(&obligation) {
                            details.push(format!("distinct: column {col} may differ, unsafe"));
                            ok = false;
                            break;
                        }
                    }
                }
                NodeInfo { gc: ok, ..child }
            }
            LogicalPlan::TopK {
                order_by, input, ..
            } => {
                let child = self.analyze(input, attrs, strings, details);
                let mut ok = child.gc;
                if ok && !child.x_here.is_empty() {
                    for key in order_by {
                        let obligation = Formula::implies(child.premise(), eq_primed(&key.column));
                        let valid = is_valid(&obligation);
                        details.push(format!(
                            "top-k order-by [{}]: equality {}",
                            key.column,
                            if valid { "holds" } else { "FAILS" }
                        ));
                        if !valid {
                            ok = false;
                            break;
                        }
                    }
                }
                NodeInfo { gc: ok, ..child }
            }
            LogicalPlan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let l = self.analyze(left, attrs, strings, details);
                let r = self.analyze(right, attrs, strings, details);
                let mut ok = l.gc && r.gc;
                let x_here: Vec<String> = l.x_here.iter().chain(r.x_here.iter()).cloned().collect();
                if ok && !x_here.is_empty() {
                    let left_ob = Formula::implies(l.premise(), eq_primed(left_col));
                    let right_ob = Formula::implies(r.premise(), eq_primed(right_col));
                    let valid = is_valid(&left_ob) && is_valid(&right_ob);
                    details.push(format!(
                        "join [{left_col} = {right_col}]: key equality {}",
                        if valid { "holds" } else { "FAILS" }
                    ));
                    ok = valid;
                }
                NodeInfo {
                    schema: l.schema.concat(&r.schema),
                    pred_plain: l.pred_plain.and(r.pred_plain).and(EncodedPred {
                        formula: Formula::var_cmp_var(
                            &attr_var(left_col, false),
                            CmpOp::Eq,
                            &attr_var(right_col, false),
                        ),
                        complete: true,
                    }),
                    pred_primed: l.pred_primed.and(r.pred_primed).and(EncodedPred {
                        formula: Formula::var_cmp_var(
                            &attr_var(left_col, true),
                            CmpOp::Eq,
                            &attr_var(right_col, true),
                        ),
                        complete: true,
                    }),
                    expr_plain: l.expr_plain.and(r.expr_plain),
                    expr_primed: l.expr_primed.and(r.expr_primed),
                    psi: Formula::and_all(vec![l.psi, r.psi]),
                    gc: ok,
                    x_here,
                }
            }
            LogicalPlan::CrossProduct { left, right } => {
                let l = self.analyze(left, attrs, strings, details);
                let r = self.analyze(right, attrs, strings, details);
                let x_here: Vec<String> = l.x_here.iter().chain(r.x_here.iter()).cloned().collect();
                NodeInfo {
                    schema: l.schema.concat(&r.schema),
                    pred_plain: l.pred_plain.and(r.pred_plain),
                    pred_primed: l.pred_primed.and(r.pred_primed),
                    expr_plain: l.expr_plain.and(r.expr_plain),
                    expr_primed: l.expr_primed.and(r.expr_primed),
                    psi: Formula::and_all(vec![l.psi, r.psi]),
                    gc: l.gc && r.gc,
                    x_here,
                }
            }
            LogicalPlan::Union { left, right } => {
                let l = self.analyze(left, attrs, strings, details);
                let r = self.analyze(right, attrs, strings, details);
                let x_here: Vec<String> = l.x_here.iter().chain(r.x_here.iter()).cloned().collect();
                // Ψ for union: keep only constraints common to both inputs
                // (conservatively, the weaker of the two when they differ).
                let psi = if l.psi == r.psi {
                    l.psi.clone()
                } else {
                    Formula::True
                };
                NodeInfo {
                    schema: l.schema.clone(),
                    pred_plain: EncodedPred {
                        formula: Formula::or_all(vec![
                            l.pred_plain.formula.clone(),
                            r.pred_plain.formula.clone(),
                        ]),
                        complete: l.pred_plain.complete && r.pred_plain.complete,
                    },
                    pred_primed: EncodedPred {
                        formula: Formula::or_all(vec![
                            l.pred_primed.formula.clone(),
                            r.pred_primed.formula.clone(),
                        ]),
                        complete: l.pred_primed.complete && r.pred_primed.complete,
                    },
                    expr_plain: EncodedPred {
                        formula: Formula::or_all(vec![
                            l.expr_plain.formula.clone(),
                            r.expr_plain.formula.clone(),
                        ]),
                        complete: l.expr_plain.complete && r.expr_plain.complete,
                    },
                    expr_primed: EncodedPred {
                        formula: Formula::or_all(vec![
                            l.expr_primed.formula.clone(),
                            r.expr_primed.formula.clone(),
                        ]),
                        complete: l.expr_primed.complete && r.expr_primed.complete,
                    },
                    psi,
                    gc: l.gc && r.gc,
                    x_here,
                }
            }
        }
    }

    fn analyze_scan(
        &self,
        table: &str,
        attrs: &[PartitionAttr],
        strings: &StringEncoder,
    ) -> NodeInfo {
        let (schema, pred_plain, pred_primed) = match self.db.table(table) {
            Ok(t) => {
                let mut plain = Vec::new();
                let mut primed = Vec::new();
                for col in t.schema().columns() {
                    if let Some(stats) = t.stats().column(&col.name) {
                        let bounds = [
                            (CmpOp::Ge, stats.min.as_ref()),
                            (CmpOp::Le, stats.max.as_ref()),
                        ];
                        for (op, v) in bounds {
                            if let Some(v) = v {
                                if let Some(c) = strings.encode_value(v) {
                                    plain.push(Formula::cmp(
                                        LinExpr::var(attr_var(&col.name, false)),
                                        op,
                                        LinExpr::constant(c),
                                    ));
                                    primed.push(Formula::cmp(
                                        LinExpr::var(attr_var(&col.name, true)),
                                        op,
                                        LinExpr::constant(c),
                                    ));
                                }
                            }
                        }
                    }
                }
                (
                    t.schema().clone(),
                    EncodedPred {
                        formula: Formula::and_all(plain),
                        complete: true,
                    },
                    EncodedPred {
                        formula: Formula::and_all(primed),
                        complete: true,
                    },
                )
            }
            Err(_) => (
                Schema::default(),
                EncodedPred::truth(),
                EncodedPred::truth(),
            ),
        };
        // Ψ_R: equality on all attributes of R (D_PS ⊆ D).
        let psi = Formula::and_all(schema.names().iter().map(|n| eq_primed(n)).collect());
        let x_here: Vec<String> = attrs
            .iter()
            .filter(|a| a.table == table)
            .map(|a| a.column.clone())
            .collect();
        NodeInfo {
            schema,
            pred_plain,
            pred_primed,
            expr_plain: EncodedPred::truth(),
            expr_primed: EncodedPred::truth(),
            psi,
            gc: true,
            x_here,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn analyze_aggregate(
        &self,
        plan: &LogicalPlan,
        group_by: &[String],
        aggregates: &[pbds_algebra::AggExpr],
        input: &LogicalPlan,
        attrs: &[PartitionAttr],
        strings: &StringEncoder,
        details: &mut Vec<String>,
    ) -> NodeInfo {
        let child = self.analyze(input, attrs, strings, details);
        let out_schema = plan
            .schema(self.db)
            .unwrap_or_else(|_| child.schema.clone());

        if child.x_here.is_empty() {
            // X = ∅: the subquery sees only un-sketched relations, results are
            // identical and all output attributes (incl. aggregates) equal.
            let psi = Formula::and_all(out_schema.names().iter().map(|n| eq_primed(n)).collect());
            return NodeInfo {
                schema: out_schema,
                psi,
                ..child
            };
        }

        // gc obligation: every group-by attribute must agree between the
        // sketch-instance run and the full run.
        let mut ok = child.gc;
        if ok {
            for g in group_by {
                let obligation = Formula::implies(child.premise(), eq_primed(g));
                let valid = is_valid(&obligation);
                details.push(format!(
                    "aggregate group-by [{g}]: equality {}",
                    if valid { "holds" } else { "FAILS" }
                ));
                if !valid {
                    ok = false;
                    break;
                }
            }
        }

        // Ψ for the aggregate outputs (Fig. 3b).
        // CASE 1: every partition attribute below is (provably equal to) a
        // group-by attribute — whole groups are kept or dropped together, so
        // aggregate values are equal.
        let case1 = child.x_here.iter().all(|x| {
            group_by.iter().any(|g| {
                g == x
                    || is_valid(&Formula::implies(
                        child.conds_plain(),
                        Formula::var_cmp_var(&attr_var(x, false), CmpOp::Eq, &attr_var(g, false)),
                    ))
            })
        });
        let exists_non_group_x = child
            .x_here
            .iter()
            .any(|x| !group_by.iter().any(|g| g == x));

        let mut psi_parts = vec![child.psi.clone()];
        for agg in aggregates {
            let b = &agg.alias;
            let relation = if case1 {
                Some(CmpOp::Eq)
            } else if exists_non_group_x {
                let arg_nonneg = || {
                    to_linexpr(&agg.input, false, strings).map(|lin| {
                        is_valid(&Formula::implies(
                            child.conds_plain(),
                            Formula::cmp(lin, CmpOp::Ge, LinExpr::constant(0.0)),
                        ))
                    }) == Some(true)
                };
                let arg_nonpos = || {
                    to_linexpr(&agg.input, false, strings).map(|lin| {
                        is_valid(&Formula::implies(
                            child.conds_plain(),
                            Formula::cmp(lin, CmpOp::Le, LinExpr::constant(0.0)),
                        ))
                    }) == Some(true)
                };
                match agg.func {
                    AggFunc::Count => Some(CmpOp::Le),
                    AggFunc::Sum | AggFunc::Max if arg_nonneg() => Some(CmpOp::Le),
                    AggFunc::Sum | AggFunc::Min if arg_nonpos() => Some(CmpOp::Ge),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(op) = relation {
                psi_parts.push(Formula::var_cmp_var(
                    &attr_var(b, false),
                    op,
                    &attr_var(b, true),
                ));
                details.push(format!(
                    "aggregate {}({}) AS {b}: Ψ gets {b} {} {b}'",
                    agg.func,
                    agg.input,
                    match op {
                        CmpOp::Eq => "=",
                        CmpOp::Le => "<=",
                        CmpOp::Ge => ">=",
                        _ => "?",
                    }
                ));
            } else {
                details.push(format!(
                    "aggregate {}({}) AS {b}: relationship between {b} and {b}' unknown",
                    agg.func, agg.input
                ));
            }
        }

        NodeInfo {
            schema: out_schema,
            pred_plain: child.pred_plain,
            pred_primed: child.pred_primed,
            expr_plain: child.expr_plain,
            expr_primed: child.expr_primed,
            psi: Formula::and_all(psi_parts),
            gc: ok,
            x_here: child.x_here,
        }
    }
}

fn collect_group_by(plan: &LogicalPlan, f: &mut impl FnMut(&str)) {
    if let LogicalPlan::Aggregate { group_by, .. } = plan {
        for g in group_by {
            f(g);
        }
    }
    for c in plan.children() {
        collect_group_by(c, f);
    }
}

/// Convenience: the attribute expression `e` used by the safety rules when
/// checking sign conditions of aggregation arguments (re-exported for tests).
pub fn agg_argument_sign_known(db: &Database, plan: &LogicalPlan, agg_input: &Expr) -> bool {
    let checker = SafetyChecker::new(db);
    let strings = StringEncoder::from_plans(&[plan]);
    let mut details = Vec::new();
    let info = checker.analyze(plan, &[], &strings, &mut details);
    to_linexpr(agg_input, false, &strings)
        .map(|lin| {
            is_valid(&Formula::implies(
                info.conds_plain(),
                Formula::cmp(lin.clone(), CmpOp::Ge, LinExpr::constant(0.0)),
            )) || is_valid(&Formula::implies(
                info.conds_plain(),
                Formula::cmp(lin, CmpOp::Le, LinExpr::constant(0.0)),
            ))
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbds_algebra::{col, lit, param, AggExpr, SortKey};
    use pbds_storage::{TableBuilder, Value};

    fn cities_db() -> Database {
        let schema = Schema::from_pairs(&[
            ("popden", DataType::Int),
            ("city", DataType::Str),
            ("state", DataType::Str),
        ]);
        let mut b = TableBuilder::new("cities", schema);
        for (popden, city, state) in [
            (4200, "Anchorage", "AK"),
            (6000, "San Diego", "CA"),
            (5000, "Sacramento", "CA"),
            (7000, "New York", "NY"),
            (2000, "Buffalo", "NY"),
            (3700, "Austin", "TX"),
            (2500, "Houston", "TX"),
        ] {
            b.push(vec![
                Value::Int(popden),
                Value::from(city),
                Value::from(state),
            ]);
        }
        let mut db = Database::new();
        db.add_table(b.build());
        db
    }

    fn q2() -> LogicalPlan {
        LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1)
    }

    #[test]
    fn q2_state_is_safe_popden_is_not() {
        let db = cities_db();
        let checker = SafetyChecker::new(&db);
        let safe = checker.check(&q2(), &[PartitionAttr::new("cities", "state")]);
        assert!(safe.safe, "{:?}", safe.details);
        assert!(safe.requires_topk_revalidation);
        let unsafe_res = checker.check(&q2(), &[PartitionAttr::new("cities", "popden")]);
        assert!(!unsafe_res.safe, "{:?}", unsafe_res.details);
    }

    #[test]
    fn example6_sum_having_popden_unsafe() {
        // Q_popState = σ_{totden < 7000}(γ_{state; sum(popden)→totden}(cities));
        // partitioning on popden is (correctly) not provably safe.
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Sum, col("popden"), "totden")],
            )
            .filter(col("totden").lt(lit(7000)));
        let checker = SafetyChecker::new(&db);
        assert!(
            !checker
                .check(&plan, &[PartitionAttr::new("cities", "popden")])
                .safe
        );
        // Partitioning on the group-by attribute is safe.
        assert!(
            checker
                .check(&plan, &[PartitionAttr::new("cities", "state")])
                .safe
        );
    }

    #[test]
    fn having_bounds_direction_matters_for_monotone_aggregates() {
        // σ_{cnt > $1}(γ_{state; count(*)→cnt}): partitioning on popden (a
        // non-group-by attribute) gives cnt <= cnt', which is enough for a
        // *lower*-bound HAVING (cnt <= cnt' ∧ cnt > $1 ⇒ cnt' > $1) but not
        // for an *upper*-bound one — exactly the asymmetry of Ex. 6.
        let db = cities_db();
        let agg = LogicalPlan::scan("cities").aggregate(
            vec!["state"],
            vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
        );
        let lower = agg.clone().filter(col("cnt").gt(param(0)));
        let upper = agg.filter(col("cnt").lt(param(0)));
        let checker = SafetyChecker::new(&db);
        assert!(
            checker
                .check(&lower, &[PartitionAttr::new("cities", "state")])
                .safe
        );
        assert!(
            checker
                .check(&lower, &[PartitionAttr::new("cities", "popden")])
                .safe
        );
        assert!(
            checker
                .check(&upper, &[PartitionAttr::new("cities", "state")])
                .safe
        );
        assert!(
            !checker
                .check(&upper, &[PartitionAttr::new("cities", "popden")])
                .safe
        );
    }

    #[test]
    fn plain_selection_query_is_safe_on_any_attribute() {
        let db = cities_db();
        let plan = LogicalPlan::scan("cities").filter(col("state").eq(lit("CA")));
        let checker = SafetyChecker::new(&db);
        for attr in ["state", "popden", "city"] {
            let res = checker.check(&plan, &[PartitionAttr::new("cities", attr)]);
            assert!(res.safe, "attr {attr}: {:?}", res.details);
            assert!(!res.requires_topk_revalidation);
        }
    }

    #[test]
    fn two_level_aggregation_group_by_attr_is_safe() {
        // C-Q2 shape: count the groups whose count exceeds a threshold.
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Count, col("city"), "cnt")],
            )
            .filter(col("cnt").gt(lit(1)))
            .aggregate(
                vec![],
                vec![AggExpr::new(AggFunc::Count, col("state"), "nstates")],
            );
        let checker = SafetyChecker::new(&db);
        let res = checker.check(&plan, &[PartitionAttr::new("cities", "state")]);
        assert!(res.safe, "{:?}", res.details);
    }

    #[test]
    fn join_on_partition_attribute_is_safe() {
        let mut db = cities_db();
        let schema = Schema::from_pairs(&[("st", DataType::Str), ("region", DataType::Str)]);
        let mut b = TableBuilder::new("regions", schema);
        b.push(vec![Value::from("CA"), Value::from("West")]);
        b.push(vec![Value::from("NY"), Value::from("East")]);
        db.add_table(b.build());
        let plan = LogicalPlan::scan("cities")
            .join(LogicalPlan::scan("regions"), "state", "st")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Avg, col("popden"), "avgden")],
            )
            .top_k(vec![SortKey::desc("avgden")], 1);
        let checker = SafetyChecker::new(&db);
        let res = checker.check(&plan, &[PartitionAttr::new("cities", "state")]);
        assert!(res.safe, "{:?}", res.details);
    }

    #[test]
    fn candidate_attributes_come_from_group_by() {
        let db = cities_db();
        let checker = SafetyChecker::new(&db);
        let cands = checker.candidate_attributes(&q2());
        assert_eq!(cands, vec![PartitionAttr::new("cities", "state")]);
    }

    #[test]
    fn choose_safe_attributes_prefers_caller_preference_when_safe() {
        let db = cities_db();
        let checker = SafetyChecker::new(&db);
        // Prefer popden (unsafe) — should fall back to group-by attr state.
        let chosen = checker
            .choose_safe_attributes(&q2(), &[PartitionAttr::new("cities", "popden")])
            .unwrap();
        assert_eq!(chosen, vec![PartitionAttr::new("cities", "state")]);
        // Prefer state (safe) — kept.
        let chosen = checker
            .choose_safe_attributes(&q2(), &[PartitionAttr::new("cities", "state")])
            .unwrap();
        assert_eq!(chosen, vec![PartitionAttr::new("cities", "state")]);
    }

    #[test]
    fn min_aggregate_with_topk_is_unsafe_on_non_group_attr() {
        // top-1 by min(popden): min can only shrink... over a subset min can
        // only grow, so ordering may change → unsafe for popden partitions.
        let db = cities_db();
        let plan = LogicalPlan::scan("cities")
            .aggregate(
                vec!["state"],
                vec![AggExpr::new(AggFunc::Min, col("popden"), "m")],
            )
            .top_k(vec![SortKey::asc("m")], 1);
        let checker = SafetyChecker::new(&db);
        assert!(
            !checker
                .check(&plan, &[PartitionAttr::new("cities", "popden")])
                .safe
        );
        assert!(
            checker
                .check(&plan, &[PartitionAttr::new("cities", "state")])
                .safe
        );
    }
}
